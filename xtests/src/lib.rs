//! Integration-test anchor crate; see repository-root tests/.
