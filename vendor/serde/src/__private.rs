//! Support machinery shared by the derive macros and data formats.
//!
//! Not a stable API — the derive-generated code and `serde_json` are the
//! only intended consumers.

use crate::de::{self, Deserialize};
use crate::ser::{self, Serialize, Serializer};
use std::fmt;
use std::marker::PhantomData;

/// The single self-describing value tree everything funnels through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// A serializer whose output *is* the content tree.
pub struct ContentSerializer<E> {
    marker: PhantomData<E>,
}

impl<E: ser::Error> Serializer for ContentSerializer<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_content(self, content: Content) -> Result<Content, E> {
        Ok(content)
    }
}

/// Serializes any value to a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized, E: ser::Error>(value: &T) -> Result<Content, E> {
    value.serialize(ContentSerializer {
        marker: PhantomData,
    })
}

/// A deserializer that reads back from a [`Content`] tree.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps `content` for deserialization.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> crate::de::Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;
    fn take_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserializes any value from a [`Content`] tree.
pub fn from_content<'de, T: Deserialize<'de>, E: de::Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::new(content))
}

/// Field-by-field reader over a `Content::Map`, used by derived
/// `Deserialize` impls for structs.
pub struct MapReader<E> {
    entries: Vec<(String, Content)>,
    marker: PhantomData<E>,
}

impl<E: de::Error> MapReader<E> {
    /// Requires `content` to be a map.
    pub fn new(content: Content) -> Result<Self, E> {
        match content {
            Content::Map(entries) => Ok(MapReader {
                entries,
                marker: PhantomData,
            }),
            other => Err(E::custom(format_args!(
                "invalid type: expected map, found {}",
                other.kind()
            ))),
        }
    }

    fn take(&mut self, name: &str) -> Option<Content> {
        let position = self.entries.iter().position(|(key, _)| key == name)?;
        Some(self.entries.remove(position).1)
    }

    /// A required field.
    pub fn field<'de, T: Deserialize<'de>>(&mut self, name: &str) -> Result<T, E> {
        match self.take(name) {
            Some(content) => from_content(content),
            None => Err(E::custom(format_args!("missing field `{name}`"))),
        }
    }

    /// An optional field (`#[serde(default)]`).
    pub fn opt_field<'de, T: Deserialize<'de>>(&mut self, name: &str) -> Result<Option<T>, E> {
        match self.take(name) {
            Some(content) => from_content(content).map(Some),
            None => Ok(None),
        }
    }
}

/// Shared error rendering for unknown enum variants.
pub fn unknown_variant<E: de::Error>(variant: &str, of: &'static str) -> E {
    E::custom(format_args!("unknown variant `{variant}` of `{of}`"))
}

/// Shared error rendering for enum content that is neither a string nor
/// a single-key map.
pub fn invalid_enum<E: de::Error>(content: &Content, of: &'static str) -> E {
    E::custom(format_args!(
        "invalid type for enum `{of}`: found {}",
        content.kind()
    ))
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind())
    }
}
