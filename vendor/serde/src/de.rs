//! Deserialization half of the simplified data model.

use crate::__private::{from_content, Content};
use std::fmt::Display;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// An error carrying a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can produce a [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Deserialization failure.
    type Error: Error;

    /// Produces the whole value tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

fn type_error<E: Error>(expected: &str, found: &Content) -> E {
    E::custom(format_args!(
        "invalid type: expected {expected}, found {}",
        found.kind()
    ))
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::U64(v) => Ok(v),
            Content::I64(v) if v >= 0 => Ok(v as u64),
            other => Err(type_error("u64", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for i64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::I64(v) => Ok(v),
            Content::U64(v) => i64::try_from(v)
                .map_err(|_| D::Error::custom(format_args!("integer {v} overflows i64"))),
            other => Err(type_error("i64", &other)),
        }
    }
}

macro_rules! impl_deserialize_via_u64 {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let wide = u64::deserialize(deserializer)?;
                <$t>::try_from(wide).map_err(|_| {
                    D::Error::custom(format_args!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_deserialize_via_i64 {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let wide = i64::deserialize(deserializer)?;
                <$t>::try_from(wide).map_err(|_| {
                    D::Error::custom(format_args!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_deserialize_via_u64!(u8, u16, u32, usize);
impl_deserialize_via_i64!(i8, i16, i32, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(type_error("f64", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(type_error("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(v) => Ok(v),
            other => Err(type_error("string", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(None),
            content => from_content(content).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(type_error("sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}
