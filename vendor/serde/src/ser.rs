//! Serialization half of the simplified data model.

use crate::__private::{to_content, Content};
use std::fmt::Display;

/// Errors produced while serializing.
pub trait Error: Sized + std::error::Error {
    /// An error carrying a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can consume the [`Content`] tree.
///
/// Unlike real serde there is exactly one required method; the
/// per-primitive methods exist so manual impls written against the real
/// API (e.g. `serializer.serialize_str(...)`) keep compiling.
pub trait Serializer: Sized {
    /// Successful-serialization output.
    type Ok;
    /// Serialization failure.
    type Error: Error;

    /// Consumes a whole value tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_owned()))
    }

    /// Serializes a bool.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v))
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }

    /// Serializes a unit/null value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
}

/// A value that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::I64(*self as i64))
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => value.serialize(serializer),
            None => serializer.serialize_content(Content::Null),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_content(item)?);
        }
        serializer.serialize_content(Content::Seq(items))
    }
}

impl<K: Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (key, value) in self {
            entries.push((key.to_string(), to_content(value)?));
        }
        serializer.serialize_content(Content::Map(entries))
    }
}
