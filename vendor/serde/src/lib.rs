//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a simplified serde: instead of the visitor-based zero-copy
//! data model, every value funnels through one owned, self-describing
//! tree ([`__private::Content`]). Serializers consume a `Content`;
//! deserializers produce one. This costs allocations but preserves the
//! public trait shapes the workspace relies on — `Serialize`,
//! `Deserialize<'de>`, `Serializer`, `Deserializer<'de>`,
//! `ser::Error::custom` / `de::Error::custom` — and the derive macros
//! (re-exported from the vendored `serde_derive`), including
//! `#[serde(transparent)]` and field-level `#[serde(default)]`.

pub mod de;
pub mod ser;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
