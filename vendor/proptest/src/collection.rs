//! Collection strategies (`prop::collection::{vec, btree_map}`).

use crate::{BTreeMapStrategy, SizeRange, Strategy, VecStrategy};

/// A `Vec` of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// A `BTreeMap` of `size` entries with keys from `key` and values from
/// `value` (key collisions re-draw).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}
