//! String strategies from a small regex subset.
//!
//! Supported patterns are sequences of character-class atoms, each
//! with an optional `{m}` / `{m,n}` repeat: `[a-z][a-z0-9]{0,8}`,
//! `[ -~]{0,120}`, `[\PC]{0,80}`. Inside a class: literal characters,
//! `lo-hi` ranges, a trailing literal `-`, and `\PC` (any printable,
//! non-control character — sampled from a fixed set of assigned
//! Unicode ranges).

use crate::{Strategy, TestRng};

/// Compiles `pattern` into a string strategy, or reports why the
/// pattern falls outside the supported subset.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    Pattern::parse(pattern)
        .map(|pattern| RegexGeneratorStrategy { pattern })
        .map_err(Error)
}

/// Unsupported-pattern error from [`string_regex`].
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// See [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    pattern: Pattern,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.pattern.generate(rng)
    }
}

/// A parsed pattern: atoms with repeat counts.
#[derive(Debug, Clone)]
pub(crate) struct Pattern {
    atoms: Vec<Atom>,
}

#[derive(Debug, Clone)]
struct Atom {
    class: Class,
    min: usize,
    max: usize,
}

/// A character class as sampleable codepoint ranges (inclusive).
#[derive(Debug, Clone)]
struct Class {
    ranges: Vec<(u32, u32)>,
    /// Total codepoints across `ranges` (for uniform sampling).
    total: u64,
}

/// `\PC` stand-in: printable characters drawn from assigned ranges
/// across several scripts (ASCII, Latin-1/Extended, Greek, Cyrillic,
/// CJK, emoji) — enough to exercise Unicode handling in round-trips.
const PRINTABLE_RANGES: &[(u32, u32)] = &[
    (0x0020, 0x007E),
    (0x00A1, 0x017F),
    (0x0391, 0x03C9),
    (0x0410, 0x044F),
    (0x4E00, 0x4E8C),
    (0x1F300, 0x1F320),
];

impl Class {
    fn from_ranges(ranges: Vec<(u32, u32)>) -> Self {
        let total = ranges
            .iter()
            .map(|(lo, hi)| u64::from(hi - lo) + 1)
            .sum::<u64>();
        Class { ranges, total }
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let mut index = rng.below(self.total);
        for &(lo, hi) in &self.ranges {
            let span = u64::from(hi - lo) + 1;
            if index < span {
                // Ranges only contain valid, non-surrogate scalars.
                return char::from_u32(lo + index as u32).expect("valid scalar in class range");
            }
            index -= span;
        }
        unreachable!("class sampling index within total")
    }
}

impl Pattern {
    pub(crate) fn parse(pattern: &str) -> Result<Pattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let mut atoms = Vec::new();
        while pos < chars.len() {
            if chars[pos] != '[' {
                return Err(format!(
                    "expected `[` at offset {pos} (only class atoms are supported)"
                ));
            }
            pos += 1;
            let class = parse_class(&chars, &mut pos)?;
            let (min, max) = parse_repeat(&chars, &mut pos)?;
            atoms.push(Atom { class, min, max });
        }
        if atoms.is_empty() {
            return Err("empty pattern".to_string());
        }
        Ok(Pattern { atoms })
    }

    pub(crate) fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = rng.int_in(atom.min as i128, atom.max as i128) as usize;
            for _ in 0..count {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

/// Parses the body of a `[...]` class; `pos` starts just past `[` and
/// ends just past `]`.
fn parse_class(chars: &[char], pos: &mut usize) -> Result<Class, String> {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    loop {
        let ch = *chars
            .get(*pos)
            .ok_or_else(|| "unterminated character class".to_string())?;
        *pos += 1;
        match ch {
            ']' => break,
            '\\' => {
                let escaped = *chars
                    .get(*pos)
                    .ok_or_else(|| "dangling `\\` in class".to_string())?;
                *pos += 1;
                match escaped {
                    'P' => {
                        let category = *chars
                            .get(*pos)
                            .ok_or_else(|| "truncated \\P escape".to_string())?;
                        *pos += 1;
                        if category != 'C' {
                            return Err(format!("unsupported category \\P{category}"));
                        }
                        ranges.extend_from_slice(PRINTABLE_RANGES);
                    }
                    '\\' | '-' | ']' | '[' => ranges.push((escaped as u32, escaped as u32)),
                    other => return Err(format!("unsupported class escape \\{other}")),
                }
            }
            lo => {
                // `lo-hi` range unless `-` is the class's last member.
                if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|c| *c != ']') {
                    let hi = chars[*pos + 1];
                    *pos += 2;
                    if (hi as u32) < (lo as u32) {
                        return Err(format!("inverted range {lo}-{hi}"));
                    }
                    ranges.push((lo as u32, hi as u32));
                } else {
                    ranges.push((lo as u32, lo as u32));
                }
            }
        }
    }
    if ranges.is_empty() {
        return Err("empty character class".to_string());
    }
    Ok(Class::from_ranges(ranges))
}

/// Parses an optional `{m}` / `{m,n}` repeat; absent means exactly 1.
fn parse_repeat(chars: &[char], pos: &mut usize) -> Result<(usize, usize), String> {
    if chars.get(*pos) != Some(&'{') {
        return Ok((1, 1));
    }
    *pos += 1;
    let mut body = String::new();
    loop {
        let ch = *chars
            .get(*pos)
            .ok_or_else(|| "unterminated repeat".to_string())?;
        *pos += 1;
        if ch == '}' {
            break;
        }
        body.push(ch);
    }
    let parse_count = |s: &str| {
        s.parse::<usize>()
            .map_err(|_| format!("invalid repeat count `{s}`"))
    };
    let (min, max) = match body.split_once(',') {
        Some((min, max)) => (parse_count(min)?, parse_count(max)?),
        None => {
            let n = parse_count(&body)?;
            (n, n)
        }
    };
    if min > max {
        return Err(format!("inverted repeat {{{min},{max}}}"));
    }
    Ok((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_used_patterns() {
        for pattern in ["[a-z][a-z0-9]{0,8}", "[a-z0-9/]{0,12}", "[ -~]{0,120}", "[\\PC]{0,80}"] {
            string_regex(pattern).unwrap_or_else(|e| panic!("{pattern}: {e}"));
        }
    }

    #[test]
    fn generated_strings_match_class() {
        let strategy = string_regex("[ -~]{3,7}").unwrap();
        let mut rng = TestRng::for_case("class", 0);
        for _ in 0..100 {
            let s = strategy.generate(&mut rng);
            let n = s.chars().count();
            assert!((3..=7).contains(&n), "bad length {n}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(string_regex("abc").is_err());
        assert!(string_regex("[a-z").is_err());
        assert!(string_regex("").is_err());
    }
}
