//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the subset of proptest the workspace's property
//! tests use: [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter`, `any::<T>()`, `Just`, integer-range strategies,
//! tuple strategies, `prop::collection::{vec, btree_map}`,
//! `prop::sample::select`, `prop::string::string_regex` (a small
//! `[class]{m,n}` regex subset, including `\PC`), [`ProptestConfig`],
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing input is reported as
//! generated (each case is derived deterministically from the test
//! name and case index, so failures reproduce exactly on re-run).

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;
pub mod string;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------
// Deterministic per-case RNG (xoshiro256**, seeded from the test name)
// ---------------------------------------------------------------------

/// The generator handed to strategies (one per test case).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Derives the RNG for one `(test, case)` pair. FNV-1a over the
    /// test path keeps distinct tests on distinct streams.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut state = hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)` (fixed-point multiply, n > 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` over a wide signed domain.
    pub(crate) fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u128;
        let draw = (u128::from(self.next_u64()) * span) >> 64;
        lo + draw as i128
    }

    pub(crate) fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `predicate` (re-draws; gives up
    /// with a panic after a bounded number of rejections).
    fn prop_filter<R, F: Fn(&Self::Value) -> bool>(self, _whence: R, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            predicate,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter rejected 10000 candidates in a row");
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- primitive strategies -------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    #[doc(hidden)]
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random_bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps `any::<char>()` debuggable.
        char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ASCII")
    }
}

/// The canonical strategy for `T` (uniform over the domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals are regex strategies (`"[a-z]{1,8}"` etc.).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------
// Size ranges for collections
// ---------------------------------------------------------------------

/// Element-count bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.int_in(self.lo as i128, self.hi_inclusive as i128) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// See [`collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`collection::btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Key collisions re-draw; bail out if the key space is too
        // small to ever reach the target.
        let mut attempts = 0usize;
        while map.len() < target && attempts < target * 50 + 100 {
            attempts += 1;
            let key = self.key.generate(rng);
            if let std::collections::btree_map::Entry::Vacant(slot) = map.entry(key) {
                slot.insert(self.value.generate(rng));
            }
        }
        map
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests. Each case binds the patterns from fresh
/// strategy draws and runs the body; the body runs inside a closure so
/// `prop_assume!`'s early `return` skips just that case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        #[test]
        fn $name:ident( $($pattern:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pattern = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                #[allow(unused_mut)]
                let mut __case_body = || -> () { $body };
                __case_body();
            }
        }
    )*};
}

/// Asserts inside a property test (no shrinking, so plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The conventional glob import: strategies, config, macros, and the
/// whole crate under the name `prop` (for `prop::collection::vec` etc.).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (1u32..10, 5usize..=6), flag in any::<bool>()) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b == 5 || b == 6);
            let _ = flag;
        }

        #[test]
        fn collections(v in prop::collection::vec(any::<u8>(), 2..5),
                       m in prop::collection::btree_map(1u64..50, 0u32..3, 1..12)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..12).contains(&m.len()));
        }

        #[test]
        fn regex_strategies(s in "[a-z][a-z0-9]{0,8}", t in "[\\PC]{0,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 9);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(t.chars().count() <= 20);
            prop_assert!(t.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }
    }

    #[test]
    fn determinism_per_case() {
        let s = crate::collection::vec(any::<u64>(), 3..10);
        let a = s.generate(&mut TestRng::for_case("x", 7));
        let b = s.generate(&mut TestRng::for_case("x", 7));
        let c = s.generate(&mut TestRng::for_case("x", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn select_and_filter() {
        let mut rng = TestRng::for_case("select", 0);
        let s = crate::sample::select(vec!["a", "b"]);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!(v == "a" || v == "b");
        }
        let f = (0u32..100).prop_filter("even", |n| n % 2 == 0);
        for _ in 0..20 {
            assert_eq!(f.generate(&mut rng) % 2, 0);
        }
    }
}
