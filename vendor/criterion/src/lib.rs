//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`Criterion`, `benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock harness: per benchmark it warms up once, then collects up
//! to `sample_size` timed samples (bounded by a total time budget) and
//! prints min/mean/max. No statistics beyond that — the workspace uses
//! the numbers for relative comparisons, which min/mean/max support.

use std::time::{Duration, Instant};

/// Total measurement budget per benchmark function.
const TIME_BUDGET: Duration = Duration::from_secs(5);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 100, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting samples until the sample count or the
    /// time budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes lazy fixtures); its timing seeds the budget.
        let start = Instant::now();
        std::hint::black_box(routine());
        let warmup = start.elapsed();

        let deadline = Instant::now() + TIME_BUDGET.saturating_sub(warmup);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
        if self.samples.is_empty() {
            self.samples.push(warmup);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let n = bencher.samples.len() as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    println!(
        "{name:<50} time: [{} {} {}] ({n} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. `--bench`); this
            // harness takes no options, so they are ignored.
            $( $group(); )+
        }
    };
}
