//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`Criterion`, `benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock harness: per benchmark it warms up once, then collects up
//! to `sample_size` timed samples (bounded by a total time budget) and
//! prints min/mean/max. No statistics beyond that — the workspace uses
//! the numbers for relative comparisons, which min/mean/max support.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Total measurement budget per benchmark function.
const TIME_BUDGET: Duration = Duration::from_secs(5);

/// Schema tag stamped into every baseline JSON document this harness
/// emits (see [`write_json_if_requested`]). Bump on layout changes so
/// downstream tooling can reject documents it does not understand.
pub const BASELINE_SCHEMA: &str = "borges-bench-baseline/v1";

/// One finished benchmark's timing summary, kept for JSON emission.
struct BenchRecord {
    name: String,
    samples: u32,
    min_ns: u128,
    mean_ns: u128,
    max_ns: u128,
}

/// Every benchmark this process has completed, in execution order.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Logical CPUs available to this process — recorded in every baseline
/// document so numbers are interpretable before comparing across
/// machines (a 1-CPU host cannot show fan-out wins, only overlap wins).
pub fn cpus_online() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the collected timings as a schema-tagged JSON baseline to the
/// path named by `BORGES_BENCH_JSON`, if set. Called by
/// [`criterion_main!`] after all groups finish; a no-op without the env
/// var, so plain `cargo bench` behaves exactly as before.
pub fn write_json_if_requested() {
    let Some(path) = std::env::var_os("BORGES_BENCH_JSON") else {
        return;
    };
    let records = RECORDS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BASELINE_SCHEMA}\",\n"));
    out.push_str(&format!("  \"cpus_online\": {},\n", cpus_online()));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}}}{comma}\n",
            json_escape(&r.name),
            r.samples,
            r.min_ns,
            r.mean_ns,
            r.max_ns,
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: cannot write {}: {e}", path.to_string_lossy());
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 100, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting samples until the sample count or the
    /// time budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes lazy fixtures); its timing seeds the budget.
        let start = Instant::now();
        std::hint::black_box(routine());
        let warmup = start.elapsed();

        let deadline = Instant::now() + TIME_BUDGET.saturating_sub(warmup);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
        if self.samples.is_empty() {
            self.samples.push(warmup);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let n = bencher.samples.len() as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    RECORDS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchRecord {
            name: name.to_string(),
            samples: n,
            min_ns: min.as_nanos(),
            mean_ns: mean.as_nanos(),
            max_ns: max.as_nanos(),
        });
    println!(
        "{name:<50} time: [{} {} {}] ({n} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. `--bench`); this
            // harness takes no options, so they are ignored.
            $( $group(); )+
            $crate::write_json_if_requested();
        }
    };
}
