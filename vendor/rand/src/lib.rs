//! Offline stand-in for the `rand` 0.9 crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the exact API subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `random`, `random_bool` and `random_range`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic, fast, and
//! statistically strong enough for the synthetic-world generators and
//! calibration tests in this workspace. Streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`, which is fine: every consumer seeds
//! explicitly and only relies on determinism, not on a specific stream.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::random`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiplies a uniform `u64` into `[0, span)` without modulo bias
/// (fixed-point multiply; the bias of this method is < 2^-64 per draw,
/// far below anything the calibration tests can observe).
fn widening_sample<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    (u128::from(rng.next_u64()) * span) >> 64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + widening_sample(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + widening_sample(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// A uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // SplitMix64 cannot emit four zeros in a row, but be explicit:
            // xoshiro's state must not be all-zero.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }
}
