//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the API subset the workspace uses — `from_str`,
//! `to_string`, `to_string_pretty`, [`Value`] (with indexing, `as_*`
//! accessors and the `json!` macro) and [`Error`] — on top of the
//! vendored serde's `Content` data model. The writer is deterministic
//! (field order = declaration order; pretty mode uses two-space
//! indentation), which is what the snapshot round-trip tests rely on.

mod read;
mod value;
mod write;

pub use value::{Number, Value};

use serde::__private::{from_content, to_content, Content};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization failure.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Deserializes a value from JSON text.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let content = read::parse(text)?;
    from_content(content)
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content: Content = to_content(value)?;
    Ok(write::write(&content, false))
}

/// Serializes a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content: Content = to_content(value)?;
    Ok(write::write(&content, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>(r#""a\nb""#).unwrap(), "a\nb");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string("a\"b").unwrap(), r#""a\"b""#);
    }

    #[test]
    fn roundtrip_unicode_and_escapes() {
        let source = "emoji \u{1F300} / quote \" / control \u{0007} / ñandú 中文";
        let json = to_string(&source.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), source);
        // \u-escapes (including surrogate pairs) parse too.
        assert_eq!(from_str::<String>(r#""🌀""#).unwrap(), "\u{1F300}");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }

    #[test]
    fn value_indexing() {
        let v = json!({"a": [1, 2], "b": {"c": "x"}});
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["b"]["c"], "x");
        assert!(v["missing"].is_null());
        assert_eq!(v["a"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_shape() {
        let text = to_string_pretty(&json!({"k": [1], "e": {}})).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ],\n  \"e\": {}\n}");
    }
}
