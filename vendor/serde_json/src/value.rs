//! The dynamically-typed [`Value`] tree and the `json!` macro.

use crate::Error;
use serde::__private::Content;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A JSON number: exact integers where possible, floats otherwise.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A parsed JSON value.
///
/// Objects preserve insertion order (like serde_json with its default
/// feature set disabled — i.e. *not* sorted), which keeps writer output
/// byte-stable under round-trips.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered key–value pairs).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member access: `value.get("key")` or `value.get(3)`. Returns
    /// `None` on kind mismatch or missing member.
    pub fn get<I: JsonIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` if this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` if this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Serializes any `Serialize` value by reference (the `json!`
    /// macro routes interpolated expressions here, matching upstream's
    /// by-reference semantics so field accesses are not moved).
    #[doc(hidden)]
    pub fn from_serialize<T: serde::Serialize + ?Sized>(value: &T) -> Value {
        let content = serde::__private::to_content::<T, crate::Error>(value)
            .expect("serialization into Value is infallible");
        Value::from_content(content)
    }

    fn from_content(content: Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::U64(v) => Value::Number(Number::PosInt(v)),
            Content::I64(v) if v >= 0 => Value::Number(Number::PosInt(v as u64)),
            Content::I64(v) => Value::Number(Number::NegInt(v)),
            Content::F64(v) => Value::Number(Number::Float(v)),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::PosInt(v)) => Content::U64(*v),
            Value::Number(Number::NegInt(v)) => Content::I64(*v),
            Value::Number(Number::Float(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.to_content())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Value::from_content(deserializer.take_content()?))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::write::write(&self.to_content(), false))
    }
}

impl std::str::FromStr for Value {
    type Err = Error;
    fn from_str(text: &str) -> Result<Self, Error> {
        crate::from_str(text)
    }
}

/// Types usable with [`Value::get`] and `value[...]`.
pub trait JsonIndex {
    /// Looks `self` up in `value`.
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value>;
}

impl JsonIndex for usize {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        value.as_array()?.get(*self)
    }
}

impl JsonIndex for str {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .find(|(key, _)| key == self)
                .map(|(_, v)| v),
            _ => None,
        }
    }
}

impl JsonIndex for String {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(value)
    }
}

impl<I: JsonIndex + ?Sized> JsonIndex for &I {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        (**self).index_into(value)
    }
}

impl<I: JsonIndex> std::ops::Index<I> for Value {
    type Output = Value;
    /// Missing members index to `Value::Null` (like serde_json).
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

// --- equality against plain Rust values (for assert_eq! ergonomics) ---

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_eq_number {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_f64() == *other as f64,
                    _ => false,
                }
            }
        }
    )*};
}

impl_eq_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// --- conversions used by the json! macro ---

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(f64::from(v)))
    }
}

/// Builds a [`Value`] from JSON-looking syntax with expression
/// interpolation, e.g. `json!({"model": model, "choices": [{"index": 0}]})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => { $crate::json_object_internal!([] $($body)+) };
    ([ $($body:tt)+ ]) => { $crate::json_array_internal!([] $($body)+) };
    ($other:expr) => { $crate::Value::from_serialize(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    // All pairs accumulated.
    ([$($done:tt)*]) => { $crate::Value::Object(::std::vec![$($done)*]) };
    // Start of a `"key": value` entry — hand off to the value muncher.
    ([$($done:tt)*] $key:literal : $($rest:tt)+) => {
        $crate::json_value_internal!([$($done)*] $key [] $($rest)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_value_internal {
    // Value tokens complete at a top-level comma.
    ([$($done:tt)*] $key:literal [$($val:tt)+] , $($rest:tt)*) => {
        $crate::json_object_internal!(
            [$($done)* (::std::string::String::from($key), $crate::json!($($val)+)),]
            $($rest)*
        )
    };
    // Value tokens complete at end of input.
    ([$($done:tt)*] $key:literal [$($val:tt)+]) => {
        $crate::json_object_internal!(
            [$($done)* (::std::string::String::from($key), $crate::json!($($val)+)),]
        )
    };
    // Munch one more value token.
    ([$($done:tt)*] $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_value_internal!([$($done)*] $key [$($val)* $next] $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // All elements accumulated.
    ([$($done:tt)*]) => { $crate::Value::Array(::std::vec![$($done)*]) };
    // Start munching the next element.
    ([$($done:tt)*] $($rest:tt)+) => {
        $crate::json_element_internal!([$($done)*] [] $($rest)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_element_internal {
    ([$($done:tt)*] [$($val:tt)+] , $($rest:tt)*) => {
        $crate::json_array_internal!([$($done)* $crate::json!($($val)+),] $($rest)*)
    };
    ([$($done:tt)*] [$($val:tt)+]) => {
        $crate::json_array_internal!([$($done)* $crate::json!($($val)+),])
    };
    ([$($done:tt)*] [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_element_internal!([$($done)*] [$($val)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use crate::{json, Value};

    #[test]
    fn literals_and_interpolation() {
        let name = String::from("borges");
        let count: u64 = 3;
        let v = json!({
            "name": name,
            "temperature": 0.0,
            "count": count,
            "nested": {"flag": true, "nothing": null},
            "list": [1, "two", {"three": 3}],
            "trailing": "comma",
        });
        assert_eq!(v["name"], "borges");
        assert_eq!(v["temperature"], 0.0);
        assert_eq!(v["count"], 3);
        assert_eq!(v["nested"]["flag"], true);
        assert!(v["nested"]["nothing"].is_null());
        assert_eq!(v["list"][1], "two");
        assert_eq!(v["list"][2]["three"], 3);
        assert_eq!(v["trailing"], "comma");
    }

    #[test]
    fn method_call_values() {
        struct Wrap(u64);
        impl Wrap {
            fn total(&self) -> u64 {
                self.0 * 2
            }
        }
        let w = Wrap(21);
        let v = json!({"total": w.total(), "formatted": format!("n={}", w.0)});
        assert_eq!(v["total"], 42);
        assert_eq!(v["formatted"], "n=21");
    }

    #[test]
    fn empty_containers() {
        assert!(json!({}).is_object());
        assert!(json!([]).is_array());
        assert_eq!(json!({"a": [], "b": {}})["a"], json!([]));
    }
}
