//! Deterministic JSON writer (compact and 2-space pretty modes).

use serde::__private::Content;

pub fn write(content: &Content, pretty: bool) -> String {
    let mut out = String::new();
    emit(content, pretty, 0, &mut out);
    out
}

fn emit(content: &Content, pretty: bool, indent: usize, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => emit_f64(*v, out),
        Content::Str(s) => emit_str(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, indent + 1, out);
                emit(item, pretty, indent + 1, out);
            }
            newline_indent(pretty, indent, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(pretty, indent + 1, out);
                emit_str(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                emit(value, pretty, indent + 1, out);
            }
            newline_indent(pretty, indent, out);
            out.push('}');
        }
    }
}

fn newline_indent(pretty: bool, indent: usize, out: &mut String) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn emit_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display; integral floats print
        // without a fraction and read back as integers, which the
        // numeric deserializers accept for float targets.
        out.push_str(&v.to_string());
    } else {
        // JSON has no Infinity/NaN; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
