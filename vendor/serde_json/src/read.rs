//! A strict recursive-descent JSON parser producing `Content` trees.

use crate::Error;
use serde::__private::Content;

pub fn parse(text: &str) -> Result<Content, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting depth guard (stack safety on adversarial inputs).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') => self.literal("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Content::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Content::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let slice = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u16::from_str_radix(slice, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: require \uXXXX low half.
                                self.literal("\\u")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let combined = 0x10000
                                    + ((u32::from(high) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&high) {
                                return Err(self.error("unpaired surrogate"));
                            } else {
                                char::from_u32(u32::from(high))
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                            // hex4 advanced past the digits; skip the
                            // shared `pos += 1` below by continuing.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so this is safe).
                    let start = self.pos;
                    let text = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..]) };
                    let ch = text.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error("invalid number"))
    }
}
