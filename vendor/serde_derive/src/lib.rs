//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro hand-parses the item's `TokenStream` and
//! emits impl code as a string. It supports exactly the shapes this
//! workspace derives:
//!
//! - named structs (with optional generic type parameters and
//!   field-level `#[serde(default)]`),
//! - `#[serde(transparent)]` newtype structs,
//! - enums with unit, newtype and struct variants (externally tagged:
//!   unit variants serialize as `"Name"`, payload variants as
//!   `{"Name": …}` — the same representation as real serde).
//!
//! Generated `Deserialize` code leans on type inference (`MapReader::
//! field` returns whatever the struct field needs), so field *types*
//! never have to be parsed — only identifiers.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => {
            if serialize {
                generate_serialize(&item)
            } else {
                generate_deserialize(&item)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive generated invalid Rust")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// Generic type-parameter idents (no bounds supported or needed).
    generics: Vec<String>,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    /// Named fields with their `#[serde(default)]` flags.
    NamedStruct(Vec<Field>),
    /// Tuple struct with N fields (only N == 1 is supported, as
    /// `#[serde(transparent)]`-style newtype).
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        token
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.at_punct(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    default: bool,
}

/// Consumes leading `#[...]` attributes, accumulating serde flags.
fn parse_attrs(cursor: &mut Cursor) -> SerdeAttrs {
    let mut flags = SerdeAttrs::default();
    while cursor.at_punct('#') {
        cursor.bump();
        let Some(TokenTree::Group(group)) = cursor.bump() else {
            break;
        };
        let mut inner = Cursor::new(group.stream());
        if inner.at_ident("serde") {
            inner.bump();
            if let Some(TokenTree::Group(args)) = inner.bump() {
                for token in args.stream() {
                    if let TokenTree::Ident(word) = token {
                        match word.to_string().as_str() {
                            "transparent" => flags.transparent = true,
                            "default" => flags.default = true,
                            _ => {}
                        }
                    }
                }
            }
        }
    }
    flags
}

fn skip_visibility(cursor: &mut Cursor) {
    if cursor.at_ident("pub") {
        cursor.bump();
        if matches!(cursor.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            cursor.bump();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    let attrs = parse_attrs(&mut cursor);
    skip_visibility(&mut cursor);

    let keyword = cursor.expect_ident()?;
    let name = cursor.expect_ident()?;
    let mut generics = Vec::new();
    if cursor.eat_punct('<') {
        let mut depth = 1usize;
        let mut after_quote = false;
        while depth > 0 {
            match cursor.bump() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => after_quote = true,
                Some(TokenTree::Ident(i)) => {
                    if depth == 1 && !after_quote {
                        generics.push(i.to_string());
                    }
                    after_quote = false;
                }
                Some(_) => after_quote = false,
                None => return Err("unclosed generics".to_string()),
            }
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match cursor.bump() {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(body.stream())?)
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(body.stream()))
            }
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match cursor.bump() {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(body.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Item {
        name,
        generics,
        transparent: attrs.transparent,
        kind,
    })
}

/// Skips one field type: everything up to a comma at angle-bracket
/// depth zero (field types here never contain function pointers or
/// other comma-bearing constructs outside `<...>`).
fn skip_type(cursor: &mut Cursor) {
    let mut angle = 0usize;
    loop {
        match cursor.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                cursor.bump();
                return;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                angle += 1;
                cursor.bump();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                angle = angle.saturating_sub(1);
                cursor.bump();
            }
            Some(_) => {
                cursor.bump();
            }
            None => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while cursor.peek().is_some() {
        let attrs = parse_attrs(&mut cursor);
        if cursor.peek().is_none() {
            break;
        }
        skip_visibility(&mut cursor);
        let name = cursor.expect_ident()?;
        if !cursor.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        skip_type(&mut cursor);
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cursor = Cursor::new(stream);
    if cursor.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0usize;
    while let Some(token) = cursor.bump() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if cursor.peek().is_some() {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while cursor.peek().is_some() {
        parse_attrs(&mut cursor);
        if cursor.peek().is_none() {
            break;
        }
        let name = cursor.expect_ident()?;
        let shape = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                cursor.bump();
                if count != 1 {
                    return Err(format!(
                        "variant `{name}`: only single-field tuple variants are supported"
                    ));
                }
                Shape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cursor.bump();
                Shape::Struct(fields.into_iter().map(|f| f.name).collect())
            }
            _ => Shape::Unit,
        };
        cursor.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn impl_header_serialize(item: &Item) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::Serialize for {}", item.name)
    } else {
        let bounds: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::Serialize"))
            .collect();
        format!(
            "impl<{}> ::serde::Serialize for {}<{}>",
            bounds.join(", "),
            item.name,
            item.generics.join(", ")
        )
    }
}

fn impl_header_deserialize(item: &Item) -> String {
    let mut params = vec!["'de".to_string()];
    params.extend(
        item.generics
            .iter()
            .map(|g| format!("{g}: ::serde::Deserialize<'de>")),
    );
    let ty_args = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    format!(
        "impl<{}> ::serde::Deserialize<'de> for {}{}",
        params.join(", "),
        item.name,
        ty_args
    )
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::TupleStruct(1) => {
            "::serde::Serialize::serialize(&self.0, __serializer)".to_string()
        }
        Kind::TupleStruct(_) => {
            return format!(
                "compile_error!(\"derive(Serialize): `{name}`: only newtype tuple structs are supported\");"
            );
        }
        Kind::NamedStruct(fields) if item.transparent => {
            let field = &fields[0].name;
            format!("::serde::Serialize::serialize(&self.{field}, __serializer)")
        }
        Kind::NamedStruct(fields) => {
            let mut lines = vec![format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::__private::Content)> = ::std::vec::Vec::with_capacity({});",
                fields.len()
            )];
            for field in fields {
                lines.push(format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), ::serde::__private::to_content(&self.{0})?));",
                    field.name
                ));
            }
            lines.push(
                "__serializer.serialize_content(::serde::__private::Content::Map(__fields))"
                    .to_string(),
            );
            lines.join("\n")
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.shape {
                    Shape::Unit => arms.push(format!(
                        "{name}::{v} => __serializer.serialize_content(::serde::__private::Content::Str(::std::string::String::from(\"{v}\"))),"
                    )),
                    Shape::Newtype => arms.push(format!(
                        "{name}::{v}(__field) => __serializer.serialize_content(::serde::__private::Content::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::__private::to_content(__field)?)])),"
                    )),
                    Shape::Struct(fields) => {
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "__inner.push((::std::string::String::from(\"{f}\"), ::serde::__private::to_content({f})?));\n"
                            ));
                        }
                        arms.push(format!(
                            "{name}::{v} {{ {pattern} }} => {{\nlet mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::__private::Content)> = ::std::vec::Vec::with_capacity({cap});\n{pushes}__serializer.serialize_content(::serde::__private::Content::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::__private::Content::Map(__inner))]))\n}},",
                            pattern = fields.join(", "),
                            cap = fields.len(),
                        ));
                    }
                }
            }
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_mut)]\n{header} {{\n    fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n    }}\n}}",
        header = impl_header_serialize(item),
    )
}

fn named_struct_constructor(name: &str, fields: &[Field]) -> String {
    let mut inits = Vec::new();
    for field in fields {
        if field.default {
            inits.push(format!(
                "{0}: __map.opt_field(\"{0}\")?.unwrap_or_default(),",
                field.name
            ));
        } else {
            inits.push(format!("{0}: __map.field(\"{0}\")?,", field.name));
        }
    }
    format!("{name} {{\n{}\n}}", inits.join("\n"))
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__deserializer)?))"
        ),
        Kind::TupleStruct(_) => {
            return format!(
                "compile_error!(\"derive(Deserialize): `{name}`: only newtype tuple structs are supported\");"
            );
        }
        Kind::NamedStruct(fields) if item.transparent => {
            let field = &fields[0].name;
            format!(
                "::std::result::Result::Ok({name} {{ {field}: ::serde::Deserialize::deserialize(__deserializer)? }})"
            )
        }
        Kind::NamedStruct(fields) => format!(
            "let mut __map = ::serde::__private::MapReader::<__D::Error>::new(::serde::Deserializer::take_content(__deserializer)?)?;\n::std::result::Result::Ok({})",
            named_struct_constructor(name, fields)
        ),
        Kind::Enum(variants) => {
            let has_unit = variants.iter().any(|v| matches!(v.shape, Shape::Unit));
            let has_payload = variants.iter().any(|v| !matches!(v.shape, Shape::Unit));
            let mut arms = Vec::new();
            if has_unit {
                let mut unit_arms = Vec::new();
                for variant in variants {
                    if matches!(variant.shape, Shape::Unit) {
                        let v = &variant.name;
                        unit_arms
                            .push(format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"));
                    }
                }
                arms.push(format!(
                    "::serde::__private::Content::Str(__variant) => match __variant.as_str() {{\n{}\n__other => ::std::result::Result::Err(::serde::__private::unknown_variant::<__D::Error>(__other, \"{name}\")),\n}},",
                    unit_arms.join("\n")
                ));
            }
            if has_payload {
                let mut payload_arms = Vec::new();
                for variant in variants {
                    let v = &variant.name;
                    match &variant.shape {
                        Shape::Unit => {}
                        Shape::Newtype => payload_arms.push(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::__private::from_content::<_, __D::Error>(__value)?)),"
                        )),
                        Shape::Struct(fields) => {
                            let field_structs: Vec<Field> = fields
                                .iter()
                                .map(|f| Field {
                                    name: f.clone(),
                                    default: false,
                                })
                                .collect();
                            payload_arms.push(format!(
                                "\"{v}\" => {{\nlet mut __map = ::serde::__private::MapReader::<__D::Error>::new(__value)?;\n::std::result::Result::Ok({})\n}},",
                                named_struct_constructor(&format!("{name}::{v}"), &field_structs)
                            ));
                        }
                    }
                }
                arms.push(format!(
                    "::serde::__private::Content::Map(mut __entries) => {{\nif __entries.len() != 1 {{\nreturn ::std::result::Result::Err(::serde::de::Error::custom(\"expected a single-key map for enum {name}\"));\n}}\nlet (__variant, __value) = __entries.pop().expect(\"length checked\");\nmatch __variant.as_str() {{\n{}\n__other => ::std::result::Result::Err(::serde::__private::unknown_variant::<__D::Error>(__other, \"{name}\")),\n}}\n}},",
                    payload_arms.join("\n")
                ));
            }
            arms.push(format!(
                "__other => ::std::result::Result::Err(::serde::__private::invalid_enum::<__D::Error>(&__other, \"{name}\")),"
            ));
            format!(
                "match ::serde::Deserializer::take_content(__deserializer)? {{\n{}\n}}",
                arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_mut)]\n{header} {{\n    fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) -> ::std::result::Result<Self, __D::Error> {{\n{body}\n    }}\n}}",
        header = impl_header_deserialize(item),
    )
}
