//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of the `parking_lot` API it uses —
//! a `Mutex` whose `lock()` returns the guard directly (no poison
//! `Result`). Backed by `std::sync::Mutex`; a poisoned lock panics,
//! which matches `parking_lot`'s absence of poisoning closely enough
//! for this workspace (a panic while holding a lock is already fatal
//! to the test or bench run that caused it).

use std::sync::MutexGuard as StdGuard;

/// A mutual-exclusion primitive with an infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }
}
