//! Quickstart: generate a small synthetic Internet, run the full Borges
//! pipeline over it, and compare the resulting AS-to-Organization mapping
//! against the AS2Org baseline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use borges_baselines::as2org;
use borges_core::orgfactor::organization_factor;
use borges_core::pipeline::{Borges, Feature};
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_types::Asn;
use borges_websim::SimWebClient;

fn main() {
    // 1. A world to map. `GeneratorConfig::paper(..)` reproduces the
    //    paper's scale (~112k ASNs); `tiny` keeps this example instant.
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(42));
    println!(
        "world: {} ASNs in WHOIS, {} networks in PeeringDB, {} hosts on the web",
        world.whois.asn_count(),
        world.pdb.net_count(),
        world.web.host_count(),
    );

    // 2. The model. `SimLlm::new(seed)` simulates GPT-4o-mini with the
    //    paper's measured error rates; any `ChatModel` implementation
    //    works here (see examples/custom_llm.rs).
    let llm = SimLlm::new(42);

    // 3. Run every stage once: organization keys, LLM extraction over
    //    notes/aka, the web crawl, final-URL matching, favicon grouping.
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );

    // 4. Materialize mappings and compare.
    let baseline = as2org(&world.whois);
    let full = borges.full();
    let n = borges.universe().len();
    println!(
        "\nAS2Org:  {} organizations, θ = {:.4}",
        baseline.org_count(),
        organization_factor(&baseline, n)
    );
    println!(
        "Borges:  {} organizations, θ = {:.4}",
        full.org_count(),
        organization_factor(&full, n)
    );

    // 5. What each feature contributed (Table 3 of the paper).
    println!("\nfeature contributions:");
    for feature in Feature::ALL {
        let c = borges.contribution(feature);
        println!(
            "  {:<14} {:>6} ASes → {:>6} orgs",
            feature.label(),
            c.ases,
            c.orgs
        );
    }

    // 6. Ask the mapping a question the paper's Fig. 3 poses: does the
    //    method know that Level3 (AS3356) and CenturyLink (AS209) are the
    //    same company today?
    let (l3, ctl) = (Asn::new(3356), Asn::new(209));
    println!(
        "\nAS2Org thinks Level3/CenturyLink are the same org: {}",
        baseline.same_org(l3, ctl)
    );
    println!(
        "Borges thinks Level3/CenturyLink are the same org: {}",
        full.same_org(l3, ctl)
    );
    println!("ground truth: {}", world.truth.are_siblings(l3, ctl));
}
