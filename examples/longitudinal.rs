//! Longitudinal analysis: tracking organizational change across
//! snapshots — the capability §7 of the paper wishes existed.
//!
//! We generate a world, apply a year of corporate events (an acquisition,
//! a rebranding, a spinoff), re-run Borges on both snapshots, and diff
//! the two mapping releases: the acquisition surfaces as a merge, the
//! spinoff as a split, the rebrand as no structural change at all —
//! exactly the signatures an analyst would look for.
//!
//! ```sh
//! cargo run --example longitudinal
//! ```

use borges_core::diff::diff;
use borges_core::pipeline::Borges;
use borges_llm::SimLlm;
use borges_synthnet::{EvolutionEvent, GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;

fn map(world: &SyntheticInternet, seed: u64) -> borges_core::AsOrgMapping {
    let llm = SimLlm::new(seed);
    Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    )
    .full()
}

fn main() {
    let before_world = SyntheticInternet::generate(&GeneratorConfig::tiny(42));
    println!(
        "snapshot t₀: {} organizations (truth)",
        before_world.truth.org_count()
    );

    let events = vec![
        EvolutionEvent::Acquisition {
            acquirer: "cogent".into(),
            target: "orange".into(),
        },
        EvolutionEvent::Rebrand {
            brand: "telekom".into(),
            new_brand: "magenta".into(),
        },
        EvolutionEvent::Spinoff {
            brand: "digicel".into(),
            countries: vec!["KE".into(), "NG".into(), "ZA".into()],
            new_brand: "sahelwave".into(),
        },
    ];
    println!("\nevents between snapshots:");
    for e in &events {
        println!("  {e:?}");
    }
    let after_world = before_world
        .evolve(&events, 43)
        .expect("events apply cleanly");
    println!(
        "snapshot t₁: {} organizations (truth)",
        after_world.truth.org_count()
    );

    println!("\nrunning Borges on both snapshots…");
    let before = map(&before_world, 42);
    let after = map(&after_world, 42);

    let d = diff(&before, &after);
    println!("\nmapping release diff (t₀ → t₁):");
    println!("  merges:           {}", d.merges.len());
    println!("  splits:           {}", d.splits.len());
    println!("  unchanged orgs:   {}", d.unchanged_clusters);

    // The acquisition signature: Cogent's cluster absorbed Orange's.
    let cogent = borges_types::Asn::new(174);
    let orange = borges_types::Asn::new(3215);
    println!(
        "\nCogent ~ Orange before: {}   after: {}   (the acquisition signature)",
        before.same_org(cogent, orange),
        after.same_org(cogent, orange)
    );

    // The spinoff signature: Digicel Kenya left the Digicel cluster.
    let digicel_jm = borges_types::Asn::new(23520);
    let digicel_ke = borges_types::Asn::new(36926);
    println!(
        "Digicel JM ~ Digicel KE before: {}   after: {}   (the spinoff signature)",
        before.same_org(digicel_jm, digicel_ke),
        after.same_org(digicel_jm, digicel_ke)
    );

    // The rebrand signature: structure unchanged, only names moved.
    let dt = borges_types::Asn::new(3320);
    let magyar = borges_types::Asn::new(5483);
    println!(
        "Deutsche Telekom ~ Magyar Telekom before: {}   after: {}   (rebrand: no structural change)",
        before.same_org(dt, magyar),
        after.same_org(dt, magyar)
    );
}
