//! Figure 3 walkthrough: the Lumen / CenturyLink case.
//!
//! WHOIS still assigns Level3 (AS3356, with Global Crossing AS3549) and
//! CenturyLink (AS209) to different organizations a decade after their
//! merger; PeeringDB's operator-maintained records group them. This
//! example inspects both registries and shows how Borges's organization
//! keys (§4.1) reconcile the partially overlapping clusters.
//!
//! ```sh
//! cargo run --example lumen_centurylink
//! ```

use borges_core::orgkeys::{oid_p_mapping, oid_w_mapping};
use borges_core::UnionFind;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_types::Asn;

fn main() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(42));
    let (level3, gblx, centurylink) = (Asn::new(3356), Asn::new(3549), Asn::new(209));

    println!("== WHOIS view (what CAIDA AS2Org sees) ==");
    for asn in [level3, gblx, centurylink] {
        let org = world.whois.org_of(asn).expect("allocated");
        println!("  {asn}: org {} ({})", org.id, org.name);
    }
    let whois_map = oid_w_mapping(&world.whois);
    println!(
        "  → same organization? {}   (the Fig. 3 blind spot)",
        whois_map.same_org(level3, centurylink)
    );

    println!("\n== PeeringDB view (operator-maintained) ==");
    for asn in [level3, centurylink] {
        match world.pdb.org_of_asn(asn) {
            Some(org) => println!("  {asn}: org {} ({})", org.id, org.name),
            None => println!("  {asn}: not registered in PeeringDB"),
        }
    }
    let pdb_map = oid_p_mapping(&world.pdb);
    println!(
        "  → same organization? {}",
        pdb_map.same_org(level3, centurylink)
    );

    println!("\n== Borges: consolidating partially overlapping clusters (§4.1) ==");
    let mut uf = UnionFind::new();
    for (_, members) in whois_map.clusters() {
        uf.union_group(members);
    }
    for (_, members) in pdb_map.clusters() {
        uf.union_group(members);
    }
    println!("  WHOIS brings {{AS3356, AS3549}}; PeeringDB brings {{AS3356, AS209}};");
    println!(
        "  union-find closes the triangle: AS3549 ~ AS209? {}",
        uf.same_set(gblx, centurylink)
    );
    println!(
        "  ground truth agrees: {}",
        world.truth.are_siblings(gblx, centurylink)
    );
}
