//! Figure 1: the Level3 merger/acquisition/rebranding timeline, and why
//! redirect chains encode corporate history.
//!
//! The first half prints the scripted timeline the paper's Figure 1
//! illustrates. The second half shows the *observable consequences* of
//! such histories in the synthetic world: websites of acquired brands
//! redirecting, hop by hop, to their current owners — exactly the signal
//! Borges's R&R module (§4.3.2) mines.
//!
//! ```sh
//! cargo run --example ma_timeline
//! ```

use borges_synthnet::{level3_timeline, GeneratorConfig, SyntheticInternet};
use borges_websim::{SimWebClient, WebClient};

fn main() {
    println!("== Figure 1: Level3's corporate history ==");
    for event in level3_timeline() {
        println!("  {event}");
    }

    println!("\n== What those histories look like on the web ==");
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(42));
    let client = SimWebClient::browser(&world.web);

    for (label, start) in [
        (
            "Clearwire (acquired by Sprint 2012, then T-Mobile 2020)",
            "www.clearwire.com",
        ),
        (
            "Sprint fiber backbone (sold to Cogent 2023)",
            "www.sprint.com",
        ),
        (
            "Limelight (merged with Edgecast into Edgio 2022)",
            "www.limelight.com",
        ),
        ("CenturyLink (rebranded Lumen 2020)", "www.centurylink.com"),
    ] {
        let url = format!("http://{start}").parse().expect("valid url");
        let fetched = client.fetch(&url).unwrap();
        print!("  {label}:\n    ");
        for (i, hop) in fetched.chain.iter().enumerate() {
            if i > 0 {
                print!(" → ");
            }
            print!("{}", hop.host());
        }
        println!();
    }

    println!(
        "\nA plain HTTP client (no JavaScript) misses some of those hops — the\n\
reason the paper scrapes with a headless browser (§4.3.1):"
    );
    let plain = SimWebClient::plain_http(&world.web);
    let url = "http://www.sprint.com".parse().expect("valid url");
    let with_js = client.fetch(&url).unwrap();
    let without_js = plain.fetch(&url).unwrap();
    println!(
        "  headless browser lands on: {}",
        with_js
            .final_url
            .map(|u| u.host().to_string())
            .unwrap_or_default()
    );
    println!(
        "  plain HTTP client stops at: {}",
        without_js
            .final_url
            .map(|u| u.host().to_string())
            .unwrap_or_default()
    );
}
