//! Plugging your own model into Borges.
//!
//! The pipeline is generic over [`ChatModel`] — a production deployment
//! implements it with an HTTP call to OpenAI/Anthropic/a local model;
//! here we implement it with a deliberately crude keyword heuristic and
//! measure, against ground truth, how much worse it is than the
//! simulated GPT-4o-mini. This is also exactly how the paper's future
//! work ("exploration with … Meta's Llama and DeepSeek's R1", §8) would
//! slot in.
//!
//! ```sh
//! cargo run --example custom_llm
//! ```

use borges_core::evalsets::ie_confusion;
use borges_core::ner::{extract, NerConfig};
use borges_llm::chat::{ChatModel, ChatRequest, ChatResponse};
use borges_llm::prompts::{parse_ie_prompt_fields, render_ie_reply, IeFinding};
use borges_llm::SimLlm;
use borges_resilience::TransportError;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_types::Asn;

/// A crude model: report every `AS<number>` it can see, with no context
/// sensitivity at all (the failure mode that sank regex-based as2org+).
struct NaiveModel;

impl ChatModel for NaiveModel {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        let text = request.full_text();
        let findings = match parse_ie_prompt_fields(&text) {
            Some(fields) => {
                let haystack = format!("{}\n{}", fields.notes, fields.aka).to_lowercase();
                let mut found = Vec::new();
                let mut rest = haystack.as_str();
                while let Some(pos) = rest.find("as") {
                    rest = &rest[pos + 2..];
                    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                    if let Ok(value) = digits.parse::<u32>() {
                        let asn = Asn::new(value);
                        if asn != fields.asn && asn.is_routable() {
                            found.push(IeFinding {
                                asn,
                                reason: "matched AS<digits>".to_string(),
                            });
                        }
                    }
                }
                found.sort_by_key(|f| f.asn);
                found.dedup_by_key(|f| f.asn);
                found
            }
            None => Vec::new(),
        };
        let text = render_ie_reply(&findings);
        let usage = borges_llm::chat::Usage::estimate(&request.full_text(), &text);
        Ok(ChatResponse { text, usage })
    }

    fn model_id(&self) -> &str {
        "naive-keyword-model"
    }
}

fn main() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(42));

    // Run the exact same NER stage with two different backends.
    let naive = extract(&world.pdb, &NaiveModel, NerConfig::default());
    let simulated = extract(&world.pdb, &SimLlm::new(42), NerConfig::default());

    let naive_score = ie_confusion(&world.pdb, &world.text_labels, &naive, None);
    let sim_score = ie_confusion(&world.pdb, &world.text_labels, &simulated, None);

    println!(
        "information-extraction accuracy on {} numeric records:",
        naive_score.total()
    );
    println!(
        "  {:<22} accuracy {:.3}  precision {:.3}  recall {:.3}",
        NaiveModel.model_id(),
        naive_score.accuracy(),
        naive_score.precision(),
        naive_score.recall()
    );
    println!(
        "  {:<22} accuracy {:.3}  precision {:.3}  recall {:.3}",
        SimLlm::new(42).model_id(),
        sim_score.accuracy(),
        sim_score.precision(),
        sim_score.recall()
    );
    println!(
        "\nThe naive model reports upstream providers and BGP-community ASNs as\n\
siblings (false positives), because it reads *tokens*, not *meaning* —\n\
the paper's argument for prompting an LLM instead of writing regexes."
    );
}
