//! The full pipeline, narrated: every stage's funnel on a medium-scale
//! world, then the Organization Factor for each feature combination
//! (the paper's Table 6) and the headline impact numbers (§6).
//!
//! ```sh
//! cargo run --release --example full_pipeline
//! ```

use borges_baselines::{as2org, as2orgplus, As2orgPlusConfig};
use borges_core::impact::population_comparison;
use borges_core::orgfactor::organization_factor;
use borges_core::pipeline::{Borges, FeatureSet};
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;
use std::collections::BTreeMap;

fn main() {
    let config = GeneratorConfig::medium(7);
    println!("generating a medium world (~11k ASNs)…");
    let world = SyntheticInternet::generate(&config);
    let llm = SimLlm::new(config.seed);

    println!("running the pipeline (crawl + extraction + classification)…");
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );

    let ner = &borges.ner.stats;
    println!("\n§4.2 notes/aka funnel:");
    println!(
        "  {} entries → {} with text → {} numeric → {} LLM calls → {} entries with siblings",
        ner.entries_total,
        ner.entries_with_text,
        ner.entries_numeric,
        ner.llm_calls,
        ner.entries_with_siblings
    );

    let web = &borges.scrape_stats;
    println!("§4.3 web funnel:");
    println!(
        "  {} websites → {} unique URLs → {} reachable → {} final URLs → {} favicons",
        web.entries_with_website,
        web.unique_urls,
        web.reachable_urls,
        web.unique_final_urls,
        web.unique_favicons
    );
    let fav = &borges.favicon.stats;
    println!(
        "  favicon tree: {} shared icons → {} merged by subdomain rule, {} by LLM, {} rejected",
        fav.favicons_shared,
        fav.merged_by_step1,
        fav.merged_by_llm,
        fav.framework_rejections + fav.dont_know,
    );

    println!("\nTable 6 — Organization Factor per feature combination:");
    let n = borges.universe().len();
    for features in FeatureSet::all_combinations() {
        let mapping = borges.mapping(features);
        println!(
            "  {:<24} θ = {:.4}   ({} orgs)",
            features.label(),
            organization_factor(&mapping, n),
            mapping.org_count()
        );
    }
    let plus = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::automated());
    println!(
        "  {:<24} θ = {:.4}   ({} orgs)",
        "as2org+ (automated)",
        organization_factor(&plus, n),
        plus.org_count()
    );

    println!("\n§6.1 impact headline:");
    let baseline = as2org(&world.whois);
    let full = borges.full();
    let pops: BTreeMap<_, _> = world
        .populations
        .iter()
        .map(|(asn, rec)| {
            (
                *asn,
                borges_core::impact::AsnPopulation {
                    users: rec.users,
                    country: rec.country,
                },
            )
        })
        .collect();
    let cmp = population_comparison(&baseline, &full, &pops);
    println!(
        "  {} organizations reconfigured; marginal user growth {} of {} total ({:.1}%)",
        cmp.changed.len(),
        cmp.total_marginal_growth,
        cmp.total_users,
        cmp.total_marginal_growth as f64 / cmp.total_users.max(1) as f64 * 100.0
    );
}
