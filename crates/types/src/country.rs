//! ISO-3166 alpha-2 country codes.
//!
//! The conglomerate-footprint analysis (§6.2 of the paper) counts the
//! number of countries in which APNIC population estimates see users for an
//! organization. [`CountryCode`] is the 2-byte key for those joins.

use crate::errors::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An ISO-3166 alpha-2 country code, stored as two upper-case ASCII bytes.
///
/// ```
/// use borges_types::CountryCode;
/// let de: CountryCode = "de".parse().unwrap();
/// assert_eq!(de.as_str(), "DE");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Builds a code from two ASCII letters (case-insensitive).
    pub fn new(a: char, b: char) -> Result<Self, ParseError> {
        if !a.is_ascii_alphabetic() || !b.is_ascii_alphabetic() {
            return Err(ParseError::new("country", "..", "letters only"));
        }
        Ok(CountryCode([
            a.to_ascii_uppercase() as u8,
            b.to_ascii_uppercase() as u8,
        ]))
    }

    /// The canonical upper-case form.
    pub fn as_str(&self) -> &str {
        // Invariant: both bytes are ASCII upper-case letters.
        std::str::from_utf8(&self.0).expect("country code bytes are ASCII")
    }

    /// A human-readable English name for codes that appear in the paper's
    /// tables; falls back to the code itself.
    pub fn name(&self) -> &'static str {
        match self.as_str() {
            "AR" => "Argentina",
            "AT" => "Austria",
            "AU" => "Australia",
            "BD" => "Bangladesh",
            "BO" => "Bolivia",
            "BR" => "Brazil",
            "CA" => "Canada",
            "CH" => "Switzerland",
            "CL" => "Chile",
            "CN" => "China",
            "CO" => "Colombia",
            "CR" => "Costa Rica",
            "CZ" => "Czechia",
            "DE" => "Germany",
            "DO" => "Dominican Republic",
            "EC" => "Ecuador",
            "EG" => "Egypt",
            "ES" => "Spain",
            "FR" => "France",
            "GB" => "United Kingdom",
            "GR" => "Greece",
            "GT" => "Guatemala",
            "HK" => "Hong Kong",
            "HN" => "Honduras",
            "HR" => "Croatia",
            "HT" => "Haiti",
            "HU" => "Hungary",
            "ID" => "Indonesia",
            "IN" => "India",
            "IT" => "Italy",
            "JM" => "Jamaica",
            "JP" => "Japan",
            "KE" => "Kenya",
            "KR" => "South Korea",
            "MX" => "Mexico",
            "MY" => "Malaysia",
            "NG" => "Nigeria",
            "NL" => "Netherlands",
            "NO" => "Norway",
            "NZ" => "New Zealand",
            "PA" => "Panama",
            "PE" => "Peru",
            "PH" => "Philippines",
            "PK" => "Pakistan",
            "PL" => "Poland",
            "PR" => "Puerto Rico",
            "PT" => "Portugal",
            "PY" => "Paraguay",
            "RO" => "Romania",
            "SE" => "Sweden",
            "SG" => "Singapore",
            "SK" => "Slovakia",
            "SV" => "El Salvador",
            "TH" => "Thailand",
            "TR" => "Turkey",
            "TT" => "Trinidad and Tobago",
            "TW" => "Taiwan",
            "TZ" => "Tanzania",
            "US" => "United States",
            "UY" => "Uruguay",
            "VE" => "Venezuela",
            "VN" => "Vietnam",
            "ZA" => "South Africa",
            _ => {
                // Leak-free fallback: we cannot return a &'static str built
                // from self, so unknown codes display generically.
                "(unknown)"
            }
        }
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let mut chars = t.chars();
        match (chars.next(), chars.next(), chars.next()) {
            (Some(a), Some(b), None) => {
                CountryCode::new(a, b).map_err(|_| ParseError::new("country", s, "letters only"))
            }
            _ => Err(ParseError::new("country", s, "expected two letters")),
        }
    }
}

impl Serialize for CountryCode {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for CountryCode {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_uppercases() {
        let c: CountryCode = "br".parse().unwrap();
        assert_eq!(c.as_str(), "BR");
        assert_eq!(c.name(), "Brazil");
    }

    #[test]
    fn rejects_wrong_lengths_and_digits() {
        for s in ["", "B", "BRA", "B1", "1A"] {
            assert!(s.parse::<CountryCode>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn unknown_codes_still_display() {
        let c: CountryCode = "ZZ".parse().unwrap();
        assert_eq!(c.to_string(), "ZZ");
        assert_eq!(c.name(), "(unknown)");
    }

    #[test]
    fn serde_roundtrip() {
        let c: CountryCode = "DE".parse().unwrap();
        let j = serde_json::to_string(&c).unwrap();
        assert_eq!(j, "\"DE\"");
        let back: CountryCode = serde_json::from_str(&j).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let ar: CountryCode = "AR".parse().unwrap();
        let br: CountryCode = "BR".parse().unwrap();
        assert!(ar < br);
    }
}
