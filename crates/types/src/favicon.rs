//! Favicon content hashes.
//!
//! The favicon classifier (§4.3.3 of the paper) groups final URLs whose
//! sites serve byte-identical favicons. The grouping key is a content hash
//! of the favicon bytes; [`FaviconHash`] implements it with FNV-1a (64-bit)
//! — fast, dependency-free, and collision-safe at the paper's scale
//! (≈14,516 unique favicons; the 64-bit birthday bound is ~10⁹).
//!
//! The hash is **not** cryptographic; the threat model is accidental
//! collision between honest favicons, not adversarial preimages.

use serde::{Deserialize, Serialize};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a content hash identifying a favicon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FaviconHash(u64);

impl FaviconHash {
    /// Hashes raw favicon bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        FaviconHash(h)
    }

    /// Wraps a precomputed hash (used by the simulator, which synthesizes
    /// favicon identities without materializing image bytes).
    pub const fn from_raw(raw: u64) -> Self {
        FaviconHash(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FaviconHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "favicon:{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_bytes_hash_identically() {
        let a = FaviconHash::of_bytes(b"claro-logo-v2");
        let b = FaviconHash::of_bytes(b"claro-logo-v2");
        assert_eq!(a, b);
    }

    #[test]
    fn different_bytes_hash_differently() {
        let a = FaviconHash::of_bytes(b"claro-logo-v2");
        let b = FaviconHash::of_bytes(b"bootstrap-default");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_input_is_the_fnv_offset() {
        assert_eq!(FaviconHash::of_bytes(&[]).raw(), FNV_OFFSET);
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(FaviconHash::of_bytes(b"a").raw(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn display_is_hex() {
        let h = FaviconHash::from_raw(0xdead_beef);
        assert_eq!(h.to_string(), "favicon:00000000deadbeef");
    }

    #[test]
    fn order_independence_is_not_assumed() {
        let ab = FaviconHash::of_bytes(b"ab");
        let ba = FaviconHash::of_bytes(b"ba");
        assert_ne!(ab, ba);
    }
}
