//! Dense integer ids over a fixed ASN universe.
//!
//! The pipeline's mapping universe (§5.4: every delegated network) is
//! fixed the moment the WHOIS snapshot is loaded. [`AsnInterner`] maps
//! each universe member to a dense `u32` id so downstream algorithms —
//! union-find closure, edge replay, mapping assembly — can run on flat
//! `Vec` storage instead of `BTreeMap<Asn, _>` trees: no per-lookup
//! tree walks, no allocation after construction, and cheap cloning for
//! fan-out across threads.

use crate::Asn;
use std::collections::HashMap;

/// A bijection between a sorted ASN universe and `0..len()` ids.
///
/// Ids are assigned in ascending ASN order, so iterating ids `0..len()`
/// visits the universe in sorted order — assembly code relies on this
/// to produce canonically ordered groups without re-sorting members.
#[derive(Debug, Clone, Default)]
pub struct AsnInterner {
    asns: Vec<Asn>,
    index: HashMap<Asn, u32>,
}

impl AsnInterner {
    /// Builds an interner over `universe` (sorted and de-duplicated
    /// internally; input order does not matter).
    pub fn new(universe: impl IntoIterator<Item = Asn>) -> Self {
        let mut asns: Vec<Asn> = universe.into_iter().collect();
        asns.sort_unstable();
        asns.dedup();
        assert!(
            asns.len() <= u32::MAX as usize,
            "ASN universe exceeds u32 id space"
        );
        let index = asns
            .iter()
            .enumerate()
            .map(|(i, &asn)| (asn, i as u32))
            .collect();
        AsnInterner { asns, index }
    }

    /// The dense id of `asn`, or `None` when it is outside the universe.
    ///
    /// A `None` here is how evidence about never-allocated ASNs (e.g. an
    /// extraction false positive reading a year as an ASN) gets
    /// discarded before it can pollute a mapping.
    #[inline]
    pub fn id(&self, asn: Asn) -> Option<u32> {
        self.index.get(&asn).copied()
    }

    /// The ASN with dense id `id`.
    ///
    /// # Panics
    /// If `id >= len()` — ids only come from [`AsnInterner::id`], so an
    /// out-of-range id is a caller bug.
    #[inline]
    pub fn asn(&self, id: u32) -> Asn {
        self.asns[id as usize]
    }

    /// `true` when `asn` belongs to the universe.
    #[inline]
    pub fn contains(&self, asn: Asn) -> bool {
        self.index.contains_key(&asn)
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// `true` for an empty universe.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// The universe in ascending ASN order (id order).
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_sorted_order() {
        let interner = AsnInterner::new([Asn::new(30), Asn::new(10), Asn::new(20)]);
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.id(Asn::new(10)), Some(0));
        assert_eq!(interner.id(Asn::new(20)), Some(1));
        assert_eq!(interner.id(Asn::new(30)), Some(2));
        assert_eq!(interner.asn(1), Asn::new(20));
    }

    #[test]
    fn duplicates_collapse() {
        let interner = AsnInterner::new([Asn::new(5), Asn::new(5), Asn::new(7)]);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.asns(), &[Asn::new(5), Asn::new(7)]);
    }

    #[test]
    fn outsiders_have_no_id() {
        let interner = AsnInterner::new([Asn::new(1)]);
        assert_eq!(interner.id(Asn::new(2)), None);
        assert!(!interner.contains(Asn::new(2)));
        assert!(interner.contains(Asn::new(1)));
    }

    #[test]
    fn roundtrip_is_identity() {
        let members: Vec<Asn> = (0..500).map(|i| Asn::new(i * 3 + 1)).collect();
        let interner = AsnInterner::new(members.iter().copied());
        for &asn in &members {
            let id = interner.id(asn).expect("member has an id");
            assert_eq!(interner.asn(id), asn);
        }
    }

    #[test]
    fn empty_universe() {
        let interner = AsnInterner::new([]);
        assert!(interner.is_empty());
        assert_eq!(interner.id(Asn::new(1)), None);
    }
}
