//! Dense integer ids over a fixed ASN universe.
//!
//! The pipeline's mapping universe (§5.4: every delegated network) is
//! fixed the moment the WHOIS snapshot is loaded. [`AsnInterner`] maps
//! each universe member to a dense `u32` id so downstream algorithms —
//! union-find closure, edge replay, mapping assembly — can run on flat
//! `Vec` storage instead of `BTreeMap<Asn, _>` trees: no per-lookup
//! tree walks, no allocation after construction, and cheap cloning for
//! fan-out across threads.
//!
//! For *snapshot sequences* the universe is fixed per snapshot but
//! drifts between snapshots: allocations appear, others are returned.
//! Incremental re-mapping needs the ids of surviving ASNs to stay
//! stable across snapshots so compiled edge lists survive verbatim, so
//! the interner supports **append-only evolution**: [`AsnInterner::retire`]
//! tombstones a slot without moving any id, and [`AsnInterner::append`]
//! either resurrects a tombstoned slot (same id as before) or allocates
//! the next fresh id. Dead slots answer `id() == None`, which is exactly
//! how out-of-universe evidence is discarded everywhere downstream.

use crate::Asn;
use std::collections::HashMap;

/// A bijection between an ASN universe and dense `u32` ids, with
/// append-only evolution across snapshots.
///
/// For a freshly built interner ids are assigned in ascending ASN
/// order, so iterating ids `0..len()` visits the universe in sorted
/// order — assembly code relies on this to produce canonically ordered
/// groups without re-sorting members. After [`AsnInterner::append`] the
/// slot order is ascending-then-appended; consumers that need a sorted
/// universe use [`AsnInterner::live_asns`].
#[derive(Debug, Clone, Default)]
pub struct AsnInterner {
    asns: Vec<Asn>,
    live: Vec<bool>,
    index: HashMap<Asn, u32>,
}

impl AsnInterner {
    /// Builds an interner over `universe` (sorted and de-duplicated
    /// internally; input order does not matter). Every slot is live.
    pub fn new(universe: impl IntoIterator<Item = Asn>) -> Self {
        let mut asns: Vec<Asn> = universe.into_iter().collect();
        asns.sort_unstable();
        asns.dedup();
        assert!(
            asns.len() <= u32::MAX as usize,
            "ASN universe exceeds u32 id space"
        );
        let index = asns
            .iter()
            .enumerate()
            .map(|(i, &asn)| (asn, i as u32))
            .collect();
        let live = vec![true; asns.len()];
        AsnInterner { asns, live, index }
    }

    /// Rebuilds an interner from persisted `(asn, live)` slots in slot
    /// (id) order — the inverse of [`AsnInterner::slots`].
    ///
    /// # Panics
    /// If two slots carry the same ASN (a corrupted state file).
    pub fn from_slots(slots: impl IntoIterator<Item = (Asn, bool)>) -> Self {
        let mut asns = Vec::new();
        let mut live = Vec::new();
        let mut index = HashMap::new();
        for (asn, alive) in slots {
            let id = asns.len() as u32;
            assert!(
                index.insert(asn, id).is_none(),
                "duplicate slot for {asn} in interner state"
            );
            asns.push(asn);
            live.push(alive);
        }
        assert!(
            asns.len() <= u32::MAX as usize,
            "ASN universe exceeds u32 id space"
        );
        AsnInterner { asns, live, index }
    }

    /// The dense id of `asn`, or `None` when it is outside the (live)
    /// universe — unknown or tombstoned.
    ///
    /// A `None` here is how evidence about never-allocated ASNs (e.g. an
    /// extraction false positive reading a year as an ASN) gets
    /// discarded before it can pollute a mapping.
    #[inline]
    pub fn id(&self, asn: Asn) -> Option<u32> {
        match self.index.get(&asn) {
            Some(&id) if self.live[id as usize] => Some(id),
            _ => None,
        }
    }

    /// The ASN with dense id `id` (live or tombstoned).
    ///
    /// # Panics
    /// If `id >= len()` — ids only come from [`AsnInterner::id`], so an
    /// out-of-range id is a caller bug.
    #[inline]
    pub fn asn(&self, id: u32) -> Asn {
        self.asns[id as usize]
    }

    /// `true` when `asn` belongs to the live universe.
    #[inline]
    pub fn contains(&self, asn: Asn) -> bool {
        self.id(asn).is_some()
    }

    /// `true` when slot `id` is live (not tombstoned).
    #[inline]
    pub fn is_live(&self, id: u32) -> bool {
        self.live[id as usize]
    }

    /// Ensures `asn` is live, preserving ids: a tombstoned slot is
    /// resurrected with its old id, an unknown ASN gets the next fresh
    /// id. Returns the slot id.
    pub fn append(&mut self, asn: Asn) -> u32 {
        if let Some(&id) = self.index.get(&asn) {
            self.live[id as usize] = true;
            return id;
        }
        let id = self.asns.len();
        assert!(id < u32::MAX as usize, "ASN universe exceeds u32 id space");
        self.asns.push(asn);
        self.live.push(true);
        self.index.insert(asn, id as u32);
        id as u32
    }

    /// Tombstones `asn`: its slot (and id) is retained but it leaves
    /// the live universe. Returns `true` when a live slot was retired.
    pub fn retire(&mut self, asn: Asn) -> bool {
        match self.index.get(&asn) {
            Some(&id) if self.live[id as usize] => {
                self.live[id as usize] = false;
                true
            }
            _ => false,
        }
    }

    /// Total slot count, including tombstones — the id space size dense
    /// structures must be sized for.
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// `true` when there are no slots at all.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Number of live slots.
    pub fn live_len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// All slots in id order (live and tombstoned). For a freshly built
    /// interner this is the universe in ascending ASN order; after
    /// appends/retires use [`AsnInterner::live_asns`] for the universe.
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }

    /// The live universe in ascending ASN order (re-sorted, since
    /// appended slots break slot-order monotonicity).
    pub fn live_asns(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .asns
            .iter()
            .zip(&self.live)
            .filter(|(_, &l)| l)
            .map(|(&a, _)| a)
            .collect();
        out.sort_unstable();
        out
    }

    /// All `(asn, live)` slots in id order, for persistence.
    pub fn slots(&self) -> impl Iterator<Item = (Asn, bool)> + '_ {
        self.asns.iter().copied().zip(self.live.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_sorted_order() {
        let interner = AsnInterner::new([Asn::new(30), Asn::new(10), Asn::new(20)]);
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.id(Asn::new(10)), Some(0));
        assert_eq!(interner.id(Asn::new(20)), Some(1));
        assert_eq!(interner.id(Asn::new(30)), Some(2));
        assert_eq!(interner.asn(1), Asn::new(20));
    }

    #[test]
    fn duplicates_collapse() {
        let interner = AsnInterner::new([Asn::new(5), Asn::new(5), Asn::new(7)]);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.asns(), &[Asn::new(5), Asn::new(7)]);
    }

    #[test]
    fn outsiders_have_no_id() {
        let interner = AsnInterner::new([Asn::new(1)]);
        assert_eq!(interner.id(Asn::new(2)), None);
        assert!(!interner.contains(Asn::new(2)));
        assert!(interner.contains(Asn::new(1)));
    }

    #[test]
    fn roundtrip_is_identity() {
        let members: Vec<Asn> = (0..500).map(|i| Asn::new(i * 3 + 1)).collect();
        let interner = AsnInterner::new(members.iter().copied());
        for &asn in &members {
            let id = interner.id(asn).expect("member has an id");
            assert_eq!(interner.asn(id), asn);
        }
    }

    #[test]
    fn empty_universe() {
        let interner = AsnInterner::new([]);
        assert!(interner.is_empty());
        assert_eq!(interner.id(Asn::new(1)), None);
    }

    #[test]
    fn retire_tombstones_without_moving_ids() {
        let mut interner = AsnInterner::new([10, 20, 30].map(Asn::new));
        assert!(interner.retire(Asn::new(20)));
        assert!(!interner.retire(Asn::new(20)), "already dead");
        assert!(!interner.retire(Asn::new(99)), "never existed");
        // Dead slots answer no id and drop out of the live universe…
        assert_eq!(interner.id(Asn::new(20)), None);
        assert!(!interner.contains(Asn::new(20)));
        assert_eq!(interner.live_asns(), vec![Asn::new(10), Asn::new(30)]);
        assert_eq!(interner.live_len(), 2);
        // …but the slot (and every other id) is untouched.
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.asn(1), Asn::new(20));
        assert!(!interner.is_live(1));
        assert_eq!(interner.id(Asn::new(30)), Some(2));
    }

    #[test]
    fn append_resurrects_or_extends() {
        let mut interner = AsnInterner::new([10, 20].map(Asn::new));
        interner.retire(Asn::new(10));
        // Resurrection restores the original id.
        assert_eq!(interner.append(Asn::new(10)), 0);
        assert_eq!(interner.id(Asn::new(10)), Some(0));
        // A genuinely new ASN extends the id space.
        assert_eq!(interner.append(Asn::new(5)), 2);
        assert_eq!(interner.id(Asn::new(5)), Some(2));
        assert_eq!(interner.len(), 3);
        // Appending a live member is a no-op returning its id.
        assert_eq!(interner.append(Asn::new(20)), 1);
        assert_eq!(interner.len(), 3);
        // live_asns re-sorts across the appended slot.
        assert_eq!(
            interner.live_asns(),
            vec![Asn::new(5), Asn::new(10), Asn::new(20)]
        );
    }

    #[test]
    fn slots_roundtrip_through_from_slots() {
        let mut interner = AsnInterner::new([10, 20, 30].map(Asn::new));
        interner.retire(Asn::new(20));
        interner.append(Asn::new(7));
        let slots: Vec<(Asn, bool)> = interner.slots().collect();
        assert_eq!(
            slots,
            vec![
                (Asn::new(10), true),
                (Asn::new(20), false),
                (Asn::new(30), true),
                (Asn::new(7), true),
            ]
        );
        let back = AsnInterner::from_slots(slots);
        assert_eq!(back.len(), interner.len());
        assert_eq!(back.live_asns(), interner.live_asns());
        assert_eq!(back.id(Asn::new(7)), Some(3));
        assert_eq!(back.id(Asn::new(20)), None);
        assert_eq!(back.asn(1), Asn::new(20));
    }

    #[test]
    #[should_panic(expected = "duplicate slot")]
    fn from_slots_rejects_duplicates() {
        AsnInterner::from_slots(vec![(Asn::new(1), true), (Asn::new(1), false)]);
    }
}
