//! Organizational identifiers.
//!
//! §4.1 of the paper builds its "organization keys" from two entity-relation
//! models:
//!
//! * **WHOIS** — each RIR assigns every ASN to an organization record keyed
//!   by an opaque registry handle (e.g. `LPL-141-ARIN`). We call this the
//!   *WHOIS Org ID*, `OID_W`, modeled by [`WhoisOrgId`].
//! * **PeeringDB** — networks (`net` objects) reference an `org` object by a
//!   numeric primary key. We call this the *PeeringDB Org ID*, `OID_P`,
//!   modeled by [`PdbOrgId`].
//!
//! [`OrgName`] is the human-readable organization name with a normalized
//! comparison form, used for display and for fuzzy joins in the impact
//! analyses (§6).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A WHOIS/RIR organization handle (`OID_W`), e.g. `"LPL-141-ARIN"`.
///
/// Handles are compared case-insensitively (registries are inconsistent
/// about case); the canonical form is upper-case.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct WhoisOrgId(String);

impl WhoisOrgId {
    /// Creates a handle, canonicalizing to upper-case and trimming
    /// whitespace.
    pub fn new(handle: impl AsRef<str>) -> Self {
        WhoisOrgId(handle.as_ref().trim().to_ascii_uppercase())
    }

    /// The canonical (upper-case) handle.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// `true` when the handle is empty — WHOIS dumps occasionally contain
    /// dangling `aut` records; loaders use this to quarantine them.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for WhoisOrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for WhoisOrgId {
    fn from(s: &str) -> Self {
        WhoisOrgId::new(s)
    }
}

/// A PeeringDB organization primary key (`OID_P`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct PdbOrgId(u64);

impl PdbOrgId {
    /// Wraps a raw PeeringDB org primary key.
    pub const fn new(id: u64) -> Self {
        PdbOrgId(id)
    }

    /// The raw primary key.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PdbOrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pdb_org:{}", self.0)
    }
}

impl From<u64> for PdbOrgId {
    fn from(id: u64) -> Self {
        PdbOrgId(id)
    }
}

/// A human-readable organization name.
///
/// Names are stored verbatim but compare through [`OrgName::normalized`],
/// which lower-cases, strips punctuation, collapses whitespace, and drops
/// the legal-suffix noise (`Inc`, `LLC`, `GmbH`, `S.A.`, …) that makes the
/// same company look different across registries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OrgName(String);

/// Legal-entity suffixes ignored by name normalization. Lower-case,
/// punctuation-free (normalization strips punctuation before matching).
const LEGAL_SUFFIXES: &[&str] = &[
    "inc",
    "incorporated",
    "llc",
    "ltd",
    "limited",
    "gmbh",
    "ag",
    "sa",
    "srl",
    "sarl",
    "bv",
    "nv",
    "ab",
    "as",
    "oy",
    "plc",
    "corp",
    "corporation",
    "co",
    "company",
    "spa",
    "pty",
    "sro",
    "kk",
    "sas",
    "holdings",
    "holding",
    "group",
];

impl OrgName {
    /// Wraps a raw organization name (stored verbatim, trimmed).
    pub fn new(name: impl AsRef<str>) -> Self {
        OrgName(name.as_ref().trim().to_string())
    }

    /// The name exactly as registered (trimmed).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The normalized comparison form: lower-case ASCII, punctuation
    /// replaced by spaces, whitespace collapsed, trailing legal suffixes
    /// removed.
    ///
    /// ```
    /// use borges_types::OrgName;
    /// assert_eq!(
    ///     OrgName::new("Level 3 Communications, Inc.").normalized(),
    ///     OrgName::new("LEVEL-3 COMMUNICATIONS LLC").normalized(),
    /// );
    /// ```
    pub fn normalized(&self) -> String {
        let lowered: String = self
            .0
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    ' '
                }
            })
            .collect();
        let mut words: Vec<&str> = lowered.split_whitespace().collect();
        while let Some(last) = words.last() {
            if words.len() > 1 && LEGAL_SUFFIXES.contains(last) {
                words.pop();
            } else {
                break;
            }
        }
        words.join(" ")
    }

    /// `true` when two names normalize identically.
    pub fn matches(&self, other: &OrgName) -> bool {
        self.normalized() == other.normalized()
    }
}

impl fmt::Display for OrgName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for OrgName {
    fn from(s: &str) -> Self {
        OrgName::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whois_handles_canonicalize_case() {
        assert_eq!(
            WhoisOrgId::new("lpl-141-arin"),
            WhoisOrgId::new("LPL-141-ARIN")
        );
        assert_eq!(
            WhoisOrgId::new(" LPL-141-ARIN "),
            WhoisOrgId::new("LPL-141-ARIN")
        );
    }

    #[test]
    fn whois_handle_empty_detection() {
        assert!(WhoisOrgId::new("   ").is_empty());
        assert!(!WhoisOrgId::new("X").is_empty());
    }

    #[test]
    fn pdb_org_id_roundtrips() {
        let id = PdbOrgId::new(42);
        assert_eq!(id.value(), 42);
        assert_eq!(id.to_string(), "pdb_org:42");
    }

    #[test]
    fn org_names_normalize_legal_suffixes() {
        let a = OrgName::new("Level 3 Communications, Inc.");
        let b = OrgName::new("LEVEL-3 COMMUNICATIONS LLC");
        assert!(a.matches(&b));
    }

    #[test]
    fn org_names_keep_distinct_companies_distinct() {
        let a = OrgName::new("Deutsche Telekom AG");
        let b = OrgName::new("Telekom Slovenije");
        assert!(!a.matches(&b));
    }

    #[test]
    fn normalization_never_empties_a_suffix_only_name() {
        // A company literally named "Group" must not normalize to "".
        assert_eq!(OrgName::new("Group").normalized(), "group");
        assert_eq!(OrgName::new("Co").normalized(), "co");
    }

    #[test]
    fn normalization_strips_multiple_suffixes() {
        assert_eq!(OrgName::new("Acme Holdings LLC").normalized(), "acme");
    }

    #[test]
    fn normalization_handles_unicode() {
        // Non-ASCII alphanumerics survive (lower-cased ASCII only applies to
        // ASCII); punctuation becomes separators.
        assert_eq!(OrgName::new("Télécom-Paris").normalized(), "télécom paris");
    }

    #[test]
    fn serde_transparency() {
        let j = serde_json::to_string(&PdbOrgId::new(7)).unwrap();
        assert_eq!(j, "7");
        let j = serde_json::to_string(&WhoisOrgId::new("ABC-RIPE")).unwrap();
        assert_eq!(j, "\"ABC-RIPE\"");
    }
}
