//! Error types shared across the workspace.
//!
//! The workspace deliberately avoids error-handling macro crates; errors are
//! small hand-rolled enums/structs implementing `std::error::Error`, in the
//! spirit of keeping the foundation crate free of non-essential
//! dependencies.

use std::error::Error;
use std::fmt;

/// A failure to parse a textual representation of one of the vocabulary
/// types ([`crate::Asn`], [`crate::Url`], [`crate::CountryCode`], …).
///
/// Carries the *kind* of value being parsed, a bounded copy of the offending
/// input, and a static reason — enough to produce actionable diagnostics
/// from dataset loaders without dragging the full input around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    kind: &'static str,
    input: String,
    reason: &'static str,
}

/// Inputs echoed back in errors are truncated to this many bytes so a
/// malformed multi-megabyte `notes` field cannot balloon an error message.
const MAX_ECHO: usize = 64;

impl ParseError {
    /// Creates a new parse error for a value of `kind` (e.g. `"asn"`),
    /// echoing at most the first 64 bytes of `input`.
    pub fn new(kind: &'static str, input: &str, reason: &'static str) -> Self {
        let mut echoed: String = input.chars().take(MAX_ECHO).collect();
        if echoed.len() < input.len() {
            echoed.push('…');
        }
        ParseError {
            kind,
            input: echoed,
            reason,
        }
    }

    /// The kind of value that failed to parse (`"asn"`, `"url"`, …).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The (truncated) input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// The static reason message.
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}: {:?} ({})",
            self.kind, self.input, self.reason
        )
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_input_and_reason() {
        let e = ParseError::new("asn", "ASxyz", "expected AS<digits> or <digits>");
        let msg = e.to_string();
        assert!(msg.contains("asn"));
        assert!(msg.contains("ASxyz"));
        assert!(msg.contains("expected"));
    }

    #[test]
    fn long_inputs_are_truncated() {
        let long = "x".repeat(500);
        let e = ParseError::new("url", &long, "too long");
        assert!(e.input().chars().count() <= MAX_ECHO + 1);
        assert!(e.input().ends_with('…'));
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let long = "é".repeat(100);
        let e = ParseError::new("url", &long, "too long");
        // must not panic and must still be valid UTF-8 (guaranteed by String)
        assert!(e.input().ends_with('…'));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn Error) {}
        let e = ParseError::new("asn", "", "empty");
        takes_err(&e);
    }
}
