//! # borges-types
//!
//! Shared vocabulary types for the Borges AS-to-Organization mapping
//! framework (Selmo et al., IMC '25).
//!
//! Every crate in the workspace speaks in terms of the identifiers defined
//! here:
//!
//! * [`Asn`] — an Autonomous System Number, the unit being mapped.
//! * [`WhoisOrgId`] / [`PdbOrgId`] — organizational identifiers from WHOIS
//!   (`OID_W`) and PeeringDB (`OID_P`), the two "organization key" sources
//!   of §4.1 of the paper.
//! * [`Url`] — a purpose-built URL type with the normalization and
//!   brand-label (paper: "subdomain") semantics the web-inference module
//!   (§4.3) relies on.
//! * [`FaviconHash`] — a content hash identifying a favicon, the grouping
//!   key of the favicon classifier (§4.3.3).
//! * [`CountryCode`] — ISO-3166 alpha-2 codes for the footprint analysis
//!   (§6.2).
//! * [`AsnInterner`] — dense `u32` ids over a fixed ASN universe, the
//!   basis of the pipeline's allocation-free evidence replay.
//!
//! The crate is dependency-light on purpose: everything downstream —
//! substrate simulators, the pipeline, baselines and the evaluation harness —
//! depends on it, so it must stay small and allocation-conscious.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asn;
pub mod country;
pub mod errors;
pub mod favicon;
pub mod interner;
pub mod orgid;
pub mod url;

pub use asn::Asn;
pub use country::CountryCode;
pub use errors::ParseError;
pub use favicon::FaviconHash;
pub use interner::AsnInterner;
pub use orgid::{OrgName, PdbOrgId, WhoisOrgId};
pub use url::{Host, Url};
