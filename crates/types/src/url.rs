//! URLs and host names, with the exact semantics the web-inference module
//! (§4.3 of the paper) needs.
//!
//! This is *not* a general-purpose URL crate. It implements the slice of
//! WHATWG-URL behaviour that PeeringDB `website` fields and redirect chains
//! exercise:
//!
//! * lenient parsing (PeeringDB operators routinely omit the scheme),
//! * normalization (case, default ports, empty paths) so that final-URL
//!   matching (§4.3.2) compares canonical forms,
//! * host-label decomposition with an embedded multi-label public-suffix
//!   table, exposing the **brand label** — what the paper calls the shared
//!   "subdomain" in examples like `www.orange.es` / `www.orange.pl`
//!   (§4.3.3, step 1 of the decision tree).

use crate::errors::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// URL schemes the simulator and scraper understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// `http://`
    Http,
    /// `https://`
    Https,
}

impl Scheme {
    /// The scheme's default port (80/443).
    pub const fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// The lower-case scheme string.
    pub const fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Second-level (and deeper) public suffixes the label decomposition knows
/// about, beyond plain single-label TLDs. A pragmatic subset of the Public
/// Suffix List covering the markets the paper's examples span (LatAm,
/// Europe, Asia-Pacific).
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk",
    "org.uk",
    "ac.uk",
    "gov.uk",
    "net.uk",
    "com.br",
    "net.br",
    "org.br",
    "gov.br",
    "com.ar",
    "net.ar",
    "org.ar",
    "gob.ar",
    "com.au",
    "net.au",
    "org.au",
    "co.jp",
    "ne.jp",
    "or.jp",
    "ad.jp",
    "com.mx",
    "net.mx",
    "org.mx",
    "com.do",
    "com.pe",
    "com.co",
    "com.ve",
    "com.uy",
    "com.py",
    "com.bo",
    "com.ec",
    "com.gt",
    "com.ni",
    "com.sv",
    "com.hn",
    "com.pa",
    "com.tr",
    "net.tr",
    "co.za",
    "org.za",
    "co.nz",
    "net.nz",
    "co.kr",
    "or.kr",
    "co.in",
    "net.in",
    "org.in",
    "go.id",
    "co.id",
    "net.id",
    "or.id",
    "web.id",
    "com.sg",
    "com.hk",
    "com.my",
    "com.ph",
    "com.pk",
    "com.bd",
    "com.np",
    "com.cn",
    "net.cn",
    "org.cn",
    "com.tw",
    "org.tw",
    "co.th",
    "in.th",
    "com.vn",
    "com.eg",
    "com.ng",
    "co.ke",
    "co.tz",
    "riau.go.id",
];

/// A normalized (lower-case, trailing-dot-free) host name.
///
/// ```
/// use borges_types::Host;
/// let h: Host = "WWW.Orange.ES".parse().unwrap();
/// assert_eq!(h.as_str(), "www.orange.es");
/// assert_eq!(h.brand_label(), Some("orange"));
/// assert_eq!(h.registrable_domain(), Some("orange.es"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Host(String);

impl Host {
    /// The normalized host string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The dot-separated labels, left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// The number of labels matched by the public-suffix table, or 1 when
    /// only the last label matches (plain TLD), or 0 for single-label hosts.
    fn suffix_len(&self) -> usize {
        let labels: Vec<&str> = self.labels().collect();
        if labels.len() < 2 {
            return 0;
        }
        // Longest multi-label suffix wins (e.g. riau.go.id over go.id).
        let mut best = 1; // the plain TLD
        for suffix in MULTI_LABEL_SUFFIXES {
            let n = suffix.split('.').count();
            if n < labels.len() && labels[labels.len() - n..].join(".") == *suffix && n > best {
                best = n;
            }
        }
        best
    }

    /// The registrable domain: the public suffix plus one label
    /// (`orange.es` for `www.orange.es`, `riau.go.id` → itself has suffix
    /// `go.id`, so `bapenda.riau.go.id` → `riau.go.id`).
    ///
    /// `None` when the host has no label left of the suffix (e.g. a bare
    /// TLD or a single-label intranet name).
    pub fn registrable_domain(&self) -> Option<&str> {
        let labels: Vec<&str> = self.labels().collect();
        let suffix = self.suffix_len();
        if suffix == 0 || labels.len() <= suffix {
            return None;
        }
        let keep = suffix + 1;
        let skip_bytes: usize = labels[..labels.len() - keep]
            .iter()
            .map(|l| l.len() + 1)
            .sum();
        Some(&self.0[skip_bytes..])
    }

    /// The **brand label**: the label immediately left of the public suffix.
    ///
    /// This is the token the paper's favicon decision tree calls the shared
    /// "subdomain": `www.orange.es` and `www.orange.pl` share the brand
    /// label `orange` (§4.3.3 step 1).
    pub fn brand_label(&self) -> Option<&str> {
        let labels: Vec<&str> = self.labels().collect();
        let suffix = self.suffix_len();
        if suffix == 0 || labels.len() <= suffix {
            return None;
        }
        Some(labels[labels.len() - suffix - 1])
    }

    /// `true` when both hosts resolve to the same brand label
    /// (`None` never matches).
    pub fn same_brand(&self, other: &Host) -> bool {
        match (self.brand_label(), other.brand_label()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for Host {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().trim_end_matches('.').to_ascii_lowercase();
        if t.is_empty() {
            return Err(ParseError::new("host", s, "empty host"));
        }
        let valid = t.split('.').all(|label| {
            !label.is_empty()
                && label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                && !label.starts_with('-')
                && !label.ends_with('-')
        });
        if !valid {
            return Err(ParseError::new("host", s, "invalid host label"));
        }
        Ok(Host(t))
    }
}

/// A parsed, normalized URL.
///
/// Normalization: scheme and host lower-cased, default ports dropped, empty
/// path replaced by `/`, fragments stripped. Query strings are preserved
/// (redirect targets in the wild use them).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: Scheme,
    host: Host,
    port: Option<u16>,
    path: String,
    query: Option<String>,
}

impl Url {
    /// Builds a URL from parts. `path` gains a leading `/` if missing; a
    /// port equal to the scheme default is dropped.
    pub fn new(
        scheme: Scheme,
        host: Host,
        port: Option<u16>,
        path: &str,
        query: Option<&str>,
    ) -> Self {
        let path = if path.is_empty() {
            "/".to_string()
        } else if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        let port = port.filter(|&p| p != scheme.default_port());
        Url {
            scheme,
            host,
            port,
            path,
            query: query.map(str::to_string),
        }
    }

    /// Convenience constructor: `https://<host>/`.
    pub fn https(host: &str) -> Result<Self, ParseError> {
        Ok(Url::new(Scheme::Https, host.parse()?, None, "/", None))
    }

    /// Convenience constructor: `http://<host>/`.
    pub fn http(host: &str) -> Result<Self, ParseError> {
        Ok(Url::new(Scheme::Http, host.parse()?, None, "/", None))
    }

    /// The scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The host.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The explicit port, if any (default ports are normalized away).
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The effective port (explicit or scheme default).
    pub fn effective_port(&self) -> u16 {
        self.port.unwrap_or(self.scheme.default_port())
    }

    /// The path (always starts with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string, without the leading `?`.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Returns this URL with a different path/query (used to resolve
    /// relative redirects).
    pub fn with_path(&self, path: &str, query: Option<&str>) -> Url {
        Url::new(self.scheme, self.host.clone(), self.port, path, query)
    }

    /// The canonical string form — the comparison key for final-URL
    /// matching (§4.3.2).
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// Shorthand for `self.host().brand_label()`.
    pub fn brand_label(&self) -> Option<&str> {
        self.host.brand_label()
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = ParseError;

    /// Parses a URL leniently, the way a scraper must read PeeringDB
    /// `website` fields:
    ///
    /// * missing scheme ⇒ assume `http` (what a browser address bar does),
    /// * fragments are dropped,
    /// * surrounding whitespace is trimmed.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if t.is_empty() {
            return Err(ParseError::new("url", s, "empty url"));
        }
        let (scheme, rest) = if let Some(rest) = strip_prefix_ci(t, "https://") {
            (Scheme::Https, rest)
        } else if let Some(rest) = strip_prefix_ci(t, "http://") {
            (Scheme::Http, rest)
        } else if t.contains("://") {
            return Err(ParseError::new("url", s, "unsupported scheme"));
        } else {
            (Scheme::Http, t)
        };

        // Drop fragment first, then split off query, then path.
        let rest = rest.split('#').next().unwrap_or("");
        let (before_query, query) = match rest.split_once('?') {
            Some((b, q)) => (b, Some(q)),
            None => (rest, None),
        };
        let (authority, path) = match before_query.split_once('/') {
            Some((a, p)) => (a, format!("/{p}")),
            None => (before_query, "/".to_string()),
        };
        let (host_str, port) = match authority.rsplit_once(':') {
            Some((h, p)) if p.bytes().all(|b| b.is_ascii_digit()) && !p.is_empty() => {
                let port = p
                    .parse::<u16>()
                    .map_err(|_| ParseError::new("url", s, "port out of range"))?;
                (h, Some(port))
            }
            _ => (authority, None),
        };
        let host: Host = host_str
            .parse()
            .map_err(|_| ParseError::new("url", s, "invalid host"))?;
        Ok(Url::new(scheme, host, port, &path, query))
    }
}

fn strip_prefix_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    if s.len() >= prefix.len() && s[..prefix.len()].eq_ignore_ascii_case(prefix) {
        Some(&s[prefix.len()..])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_normalizes_case_and_trailing_dot() {
        let h: Host = "WWW.Orange.FR.".parse().unwrap();
        assert_eq!(h.as_str(), "www.orange.fr");
    }

    #[test]
    fn host_rejects_bad_labels() {
        for s in [
            "",
            ".",
            "a..b",
            "-leading.com",
            "trailing-.com",
            "sp ace.com",
        ] {
            assert!(s.parse::<Host>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn brand_label_simple_tld() {
        let h: Host = "www.orange.es".parse().unwrap();
        assert_eq!(h.brand_label(), Some("orange"));
        assert_eq!(h.registrable_domain(), Some("orange.es"));
    }

    #[test]
    fn brand_label_multi_label_suffix() {
        let h: Host = "www.claro.com.do".parse().unwrap();
        assert_eq!(h.brand_label(), Some("claro"));
        assert_eq!(h.registrable_domain(), Some("claro.com.do"));
    }

    #[test]
    fn brand_label_deep_suffix() {
        let h: Host = "bapenda.riau.go.id".parse().unwrap();
        assert_eq!(h.brand_label(), Some("bapenda"));
    }

    #[test]
    fn brand_label_bare_registrable() {
        let h: Host = "orange.fr".parse().unwrap();
        assert_eq!(h.brand_label(), Some("orange"));
    }

    #[test]
    fn brand_label_absent_for_tld_or_single_label() {
        let h: Host = "localhost".parse().unwrap();
        assert_eq!(h.brand_label(), None);
        let h: Host = "com".parse().unwrap();
        assert_eq!(h.brand_label(), None);
    }

    #[test]
    fn same_brand_matches_across_cctlds() {
        let a: Host = "www.orange.es".parse().unwrap();
        let b: Host = "www.orange.pl".parse().unwrap();
        assert!(a.same_brand(&b));
    }

    #[test]
    fn same_brand_distinguishes_claro_variants() {
        // The paper's motivating hard case: clarochile.cl vs claropr.com have
        // *different* brand labels — step 1 must NOT merge them; step 2
        // (favicon + LLM) does.
        let a: Host = "www.clarochile.cl".parse().unwrap();
        let b: Host = "www.claropr.com".parse().unwrap();
        assert!(!a.same_brand(&b));
    }

    #[test]
    fn url_parses_with_scheme() {
        let u: Url = "https://www.edg.io/company".parse().unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.host().as_str(), "www.edg.io");
        assert_eq!(u.path(), "/company");
    }

    #[test]
    fn url_defaults_to_http_without_scheme() {
        let u: Url = "www.sprint.com".parse().unwrap();
        assert_eq!(u.scheme(), Scheme::Http);
        assert_eq!(u.to_string(), "http://www.sprint.com/");
    }

    #[test]
    fn url_rejects_unknown_schemes() {
        assert!("ftp://example.com".parse::<Url>().is_err());
    }

    #[test]
    fn url_normalizes_default_ports() {
        let u: Url = "https://example.com:443/x".parse().unwrap();
        assert_eq!(u.port(), None);
        assert_eq!(u.effective_port(), 443);
        let u: Url = "https://example.com:8443/x".parse().unwrap();
        assert_eq!(u.port(), Some(8443));
    }

    #[test]
    fn url_strips_fragment_keeps_query() {
        let u: Url = "http://a.com/p?x=1#frag".parse().unwrap();
        assert_eq!(u.query(), Some("x=1"));
        assert_eq!(u.to_string(), "http://a.com/p?x=1");
    }

    #[test]
    fn url_empty_path_becomes_slash() {
        let u: Url = "http://a.com".parse().unwrap();
        assert_eq!(u.path(), "/");
    }

    #[test]
    fn url_display_roundtrips_through_parse() {
        for s in [
            "https://www.clarochile.cl/personas/",
            "http://www.t.ht.hr/",
            "https://t3.gstatic.com/faviconV2?client=SOCIAL",
            "http://host.com:8080/a/b",
        ] {
            let u: Url = s.parse().unwrap();
            let round: Url = u.to_string().parse().unwrap();
            assert_eq!(u, round, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn with_path_resolves_relative_redirects() {
        let u: Url = "https://a.com/old".parse().unwrap();
        let v = u.with_path("/new", Some("r=1"));
        assert_eq!(v.to_string(), "https://a.com/new?r=1");
    }

    #[test]
    fn canonical_equality_is_final_url_matching() {
        let a: Url = "HTTPS://WWW.EDG.IO".parse().unwrap();
        let b: Url = "https://www.edg.io/".parse().unwrap();
        assert_eq!(a.canonical(), b.canonical());
    }
}
