//! Autonomous System Numbers.
//!
//! The ASN is the atom of every AS-to-Organization mapping. This module
//! provides a zero-cost [`Asn`] newtype over `u32` (ASNs are 32-bit since
//! RFC 6793), lenient parsing of the textual forms that appear in WHOIS
//! dumps, CAIDA AS2Org files and PeeringDB free text (`"AS3356"`,
//! `"as3356"`, `"3356"`), and classification of the reserved/private ranges
//! that the extraction stages must treat with suspicion.

use crate::errors::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An Autonomous System Number.
///
/// `Asn` is `Copy`, ordered, hashable and 4 bytes — it is used as a map key
/// throughout the workspace.
///
/// ```
/// use borges_types::Asn;
///
/// let lumen: Asn = "AS3356".parse().unwrap();
/// assert_eq!(lumen, Asn::new(3356));
/// assert_eq!(lumen.to_string(), "AS3356");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(u32);

impl Asn {
    /// Wraps a raw 32-bit ASN.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// The raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// `true` for ASN 0, reserved by RFC 7607 and never a valid origin.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` for the 16-bit private-use range 64512–65534 and the 32-bit
    /// private-use range 4200000000–4294967294 (RFC 6996).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64_512 && self.0 <= 65_534)
            || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// `true` for the documentation ranges 64496–64511 and 65536–65551
    /// (RFC 5398).
    pub const fn is_documentation(self) -> bool {
        (self.0 >= 64_496 && self.0 <= 64_511) || (self.0 >= 65_536 && self.0 <= 65_551)
    }

    /// `true` for AS_TRANS (23456, RFC 6793) and the last 16/32-bit values
    /// (65535 and 4294967295), all reserved.
    pub const fn is_reserved(self) -> bool {
        self.0 == 23_456 || self.0 == 65_535 || self.0 == u32::MAX || self.is_zero()
    }

    /// `true` when the ASN is none of zero/private/documentation/reserved —
    /// i.e. it could plausibly be globally routable.
    ///
    /// The NER output filter (§4.2 of the paper) uses this to reject
    /// number sequences that cannot be real sibling ASNs.
    pub const fn is_routable(self) -> bool {
        !self.is_zero() && !self.is_private() && !self.is_documentation() && !self.is_reserved()
    }

    /// `true` when the ASN needs 32 bits (does not fit in the original
    /// 16-bit number space).
    pub const fn is_four_byte(self) -> bool {
        self.0 > 65_535
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> Self {
        asn.0
    }
}

impl FromStr for Asn {
    type Err = ParseError;

    /// Parses `"AS3356"`, `"as3356"`, `"As3356"` or `"3356"`.
    ///
    /// Surrounding whitespace is tolerated; anything else (embedded signs,
    /// decimal points, overflow beyond `u32`) is an error. This parser is
    /// deliberately strict: the lenient *candidate* scanning over free text
    /// lives in the NER module, not here.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let digits = t
            .strip_prefix("AS")
            .or_else(|| t.strip_prefix("as"))
            .or_else(|| t.strip_prefix("As"))
            .or_else(|| t.strip_prefix("aS"))
            .unwrap_or(t);
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseError::new("asn", s, "expected AS<digits> or <digits>"));
        }
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseError::new("asn", s, "value exceeds 32 bits"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_digits() {
        assert_eq!("3356".parse::<Asn>().unwrap(), Asn::new(3356));
    }

    #[test]
    fn parses_as_prefix_case_insensitively() {
        for s in ["AS3356", "as3356", "As3356", "aS3356"] {
            assert_eq!(s.parse::<Asn>().unwrap(), Asn::new(3356), "failed on {s}");
        }
    }

    #[test]
    fn tolerates_surrounding_whitespace() {
        assert_eq!("  AS209 \t".parse::<Asn>().unwrap(), Asn::new(209));
    }

    #[test]
    fn rejects_garbage() {
        for s in ["", "AS", "AS-1", "AS3356x", "3356.0", "+3356", "ASN3356"] {
            assert!(s.parse::<Asn>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn rejects_overflow() {
        assert!("4294967296".parse::<Asn>().is_err());
        assert_eq!("4294967295".parse::<Asn>().unwrap(), Asn::new(u32::MAX));
    }

    #[test]
    fn display_uses_canonical_form() {
        assert_eq!(Asn::new(15169).to_string(), "AS15169");
    }

    #[test]
    fn private_ranges() {
        assert!(Asn::new(64512).is_private());
        assert!(Asn::new(65534).is_private());
        assert!(!Asn::new(65535).is_private());
        assert!(Asn::new(4_200_000_000).is_private());
        assert!(Asn::new(4_294_967_294).is_private());
        assert!(!Asn::new(4_294_967_295).is_private());
        assert!(!Asn::new(3356).is_private());
    }

    #[test]
    fn documentation_ranges() {
        assert!(Asn::new(64496).is_documentation());
        assert!(Asn::new(64511).is_documentation());
        assert!(Asn::new(65536).is_documentation());
        assert!(Asn::new(65551).is_documentation());
        assert!(!Asn::new(65552).is_documentation());
    }

    #[test]
    fn reserved_values() {
        assert!(Asn::new(0).is_reserved());
        assert!(Asn::new(23456).is_reserved());
        assert!(Asn::new(65535).is_reserved());
        assert!(Asn::new(u32::MAX).is_reserved());
    }

    #[test]
    fn routability_excludes_special_ranges() {
        assert!(Asn::new(3356).is_routable());
        assert!(Asn::new(15169).is_routable());
        assert!(!Asn::new(0).is_routable());
        assert!(!Asn::new(23456).is_routable());
        assert!(!Asn::new(64500).is_routable()); // documentation
        assert!(!Asn::new(64512).is_routable()); // private
    }

    #[test]
    fn four_byte_boundary() {
        assert!(!Asn::new(65535).is_four_byte());
        assert!(Asn::new(65536).is_four_byte());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn::new(209) < Asn::new(3356));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&Asn::new(3356)).unwrap();
        assert_eq!(json, "3356");
        let back: Asn = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Asn::new(3356));
    }
}
