//! Robustness of the HTTP boundary: every byte stream — malformed
//! request lines, oversized headers, truncated bodies, pipelined
//! garbage, or pure noise — yields a 4xx/5xx response or a clean
//! disconnect. Never a panic, never a hang.
//!
//! Two layers: the parser is fuzzed directly (cheap, thousands of
//! cases), and a live server takes the same abuse over real sockets so
//! the connection handling (timeouts, error responses, the
//! accept/serve ledger) is exercised end to end.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use borges_core::Borges;
use borges_llm::SimLlm;
use borges_serve::{ServeClient, Server, ServerConfig};
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;
use proptest::prelude::*;

fn tiny_borges() -> Borges {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(5));
    let llm = SimLlm::flawless();
    Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    )
}

fn start_server() -> Server {
    let config = ServerConfig {
        threads: 2,
        queue_depth: 16,
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    Server::start(config, tiny_borges(), None).expect("bind loopback")
}

/// A response must be absent (the peer was beyond answering) or carry
/// an HTTP/1.1 status in the given class(es).
fn assert_error_class(raw: &[u8], input: &[u8]) {
    if raw.is_empty() {
        return;
    }
    let head = String::from_utf8_lossy(&raw[..raw.len().min(12)]);
    assert!(
        head.starts_with("HTTP/1.1 4") || head.starts_with("HTTP/1.1 5"),
        "input {input:?} produced non-error head {head:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    // The parser never panics on arbitrary bytes.
    #[test]
    fn parser_survives_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = borges_serve::http::parse_request(&mut BufReader::new(bytes.as_slice()));
    }

    // Structured-ish garbage (random method/target/version tokens,
    // random headers, lying content-lengths) never panics either, and
    // never parses into a request with an empty method.
    #[test]
    fn parser_survives_structured_garbage(
        method in "[A-Za-z!#$%]{0,10}",
        target in "[ -~]{0,40}",
        version in "[A-Za-z0-9/.]{0,12}",
        header in "[ -~]{0,60}",
        body_len in 0usize..200_000,
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut stream = format!(
            "{method} {target} {version}\r\n{header}\r\nContent-Length: {body_len}\r\n\r\n"
        ).into_bytes();
        stream.extend_from_slice(&body);
        match borges_serve::http::parse_request(&mut BufReader::new(stream.as_slice())) {
            Ok(req) => prop_assert!(!req.method.is_empty()),
            Err(e) => {
                // Every answerable error is an HTTP error status.
                if let Some((status, _, _)) = e.status() {
                    prop_assert!((400..=599).contains(&status));
                }
            }
        }
    }
}

#[test]
fn live_server_answers_malformed_inputs_with_errors() {
    let server = start_server();
    let client = ServeClient::new(server.local_addr());

    let cases: &[&[u8]] = &[
        b"",
        b"\r\n",
        b"GARBAGE\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort",
        b"POST / HTTP/1.1\r\nContent-Length: not-a-number\r\n\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        b"\xff\xfe\x00\x01binary noise\r\n\r\n",
        b"GET /../../../etc/passwd HTTP/1.1\r\n\r\n",
    ];
    for case in cases {
        let raw = client.send_raw(case).expect("loopback io");
        assert_error_class(&raw, case);
    }

    // Oversized request line and a header flood: refused with 431, not
    // buffered without bound.
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(32 * 1024));
    let raw = client.send_raw(long_line.as_bytes()).expect("loopback io");
    assert!(
        String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 431"),
        "long line"
    );

    let mut flood = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..200 {
        flood.extend_from_slice(format!("X-Flood-{i}: v\r\n").as_bytes());
    }
    flood.extend_from_slice(b"\r\n");
    let raw = client.send_raw(&flood).expect("loopback io");
    assert!(
        String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 431"),
        "header flood"
    );

    // The server is still alive and serving after all of that.
    let health = client.get("/healthz").expect("healthz after abuse");
    assert_eq!(health.status, 200);

    let ledger = server.stop();
    assert_eq!(
        ledger.counter("borges_serve_shed_total") + ledger.counter("borges_serve_served_total"),
        ledger.counter("borges_serve_accepted_total"),
        "accept ledger must balance after abuse"
    );
}

#[test]
fn live_server_fuzz_never_hangs_or_panics() {
    let server = start_server();
    let client = ServeClient::new(server.local_addr()).with_timeout(Duration::from_secs(2));

    // Deterministic xorshift garbage: byte-noise requests over real
    // sockets, every one answered or cleanly dropped.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for round in 0..64 {
        let len = (state % 300) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bytes.push((state >> 32) as u8);
        }
        let raw = client.send_raw(&bytes).expect("loopback io");
        if !bytes.is_empty() {
            assert_error_class(&raw, &bytes);
        }
        let _ = round;
    }

    let health = client.get("/healthz").expect("alive after fuzz");
    assert_eq!(health.status, 200);
    server.stop();
}

#[test]
fn silent_peer_is_answered_408_after_the_read_timeout() {
    let server = start_server();
    // Send half a request line and go silent without closing: the
    // server must time the read out and answer 408 rather than hold
    // the worker hostage.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(b"GET /heal").expect("partial write");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read 408");
    assert!(
        String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 408"),
        "got {:?}",
        String::from_utf8_lossy(&raw)
    );
    server.stop();
}

#[test]
fn pipelined_garbage_after_a_valid_request_is_ignored() {
    let server = start_server();
    let client = ServeClient::new(server.local_addr());
    let raw = client
        .send_raw(b"GET /healthz HTTP/1.1\r\n\r\nGET /also/this HTTP/1.1\r\n\r\ntrailing junk")
        .expect("loopback io");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    // One request per connection: exactly one response comes back.
    assert_eq!(text.matches("HTTP/1.1").count(), 1, "{text}");
    server.stop();
}
