//! The serving world: one compiled pipeline plus a small LRU of
//! materialized per-feature-set mappings, swapped atomically on reload.
//!
//! A [`ServingWorld`] is immutable once built — handlers never mutate
//! the pipeline, only the interior-mutable cache — so the hot-swap
//! story is a single pointer swap: the server holds
//! `Mutex<Arc<ServingWorld>>`, each request clones the `Arc` under a
//! momentary lock, and `/v1/admin/reload` installs a freshly remapped
//! world by writing a new `Arc`. A request therefore sees exactly one
//! world end to end ("never mixed"), and a swap invalidates the mapping
//! cache for free because the cache lives inside the world it caches.

use std::collections::VecDeque;
use std::sync::Arc;

use borges_core::{AsOrgMapping, Borges, FeatureSet};
use borges_telemetry::MetricsRegistry;
use parking_lot::Mutex;

/// A bounded, least-recently-used cache of materialized mappings, keyed
/// by [`FeatureSet::bits`] (16 possible keys). Capacity 0 disables
/// caching entirely — every lookup is a miss that materializes fresh,
/// which the bench suite uses as its "cold" configuration.
///
/// Hits, misses, and evictions are counted into the shared
/// [`MetricsRegistry`] under `borges_serve_lru_*_total`, so `/metrics`
/// exposes cache efficacy without a separate plumbing path.
pub struct MappingCache {
    capacity: usize,
    /// Most-recently-used last. At most 16 entries, so linear scans
    /// beat any map structure.
    entries: Mutex<VecDeque<(u8, Arc<AsOrgMapping>)>>,
}

impl MappingCache {
    /// An empty cache holding at most `capacity` mappings.
    pub fn new(capacity: usize) -> MappingCache {
        MappingCache {
            capacity,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The mapping for `features`, from cache or freshly materialized
    /// via `materialize`. Materialization runs *outside* the cache
    /// lock: two racing misses on the same key both materialize, and
    /// whichever inserts second wins — harmless, because
    /// materialization is deterministic and the results are identical.
    pub fn get_or_materialize(
        &self,
        features: FeatureSet,
        metrics: &MetricsRegistry,
        materialize: impl FnOnce() -> AsOrgMapping,
    ) -> Arc<AsOrgMapping> {
        self.get_or_materialize_observed(features, metrics, materialize)
            .0
    }

    /// [`MappingCache::get_or_materialize`], additionally reporting
    /// whether the lookup was a cache hit — the flight recorder wants
    /// the outcome per request, not just the aggregate counters.
    pub fn get_or_materialize_observed(
        &self,
        features: FeatureSet,
        metrics: &MetricsRegistry,
        materialize: impl FnOnce() -> AsOrgMapping,
    ) -> (Arc<AsOrgMapping>, bool) {
        let key = features.bits();
        if self.capacity > 0 {
            let mut entries = self.entries.lock();
            if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
                let hit = entries.remove(pos).expect("position came from iter");
                let mapping = hit.1.clone();
                entries.push_back(hit);
                drop(entries);
                metrics.counter("borges_serve_lru_hits_total", 1);
                return (mapping, true);
            }
        }
        metrics.counter("borges_serve_lru_misses_total", 1);
        let mapping = Arc::new(materialize());
        if self.capacity > 0 {
            let mut entries = self.entries.lock();
            if !entries.iter().any(|(k, _)| *k == key) {
                if entries.len() >= self.capacity {
                    entries.pop_front();
                    metrics.counter("borges_serve_lru_evictions_total", 1);
                }
                entries.push_back((key, mapping.clone()));
            }
        }
        (mapping, false)
    }

    /// Number of cached mappings right now.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is currently empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

/// Everything a request handler needs, behind one `Arc`: the compiled
/// pipeline, its mapping cache, and the epoch stamp distinguishing
/// successive reloads.
pub struct ServingWorld {
    /// The compiled pipeline this world serves from.
    pub borges: Borges,
    /// Per-world mapping cache (a reload starts cold by construction).
    pub cache: MappingCache,
    /// Monotone reload counter: 0 for the boot world, +1 per swap.
    pub epoch: u64,
    /// The world's hex SHA-256 content address — equal to the digest of
    /// the store artifact this world was (or would be) persisted as,
    /// because store encoding is canonical. Reported by `/healthz` and
    /// the `borges_serve_world_digest` metric so operators can confirm
    /// which artifact is live after a reload.
    pub digest: String,
    /// The store schema version this world's artifact encoding speaks.
    pub store_schema: u32,
}

impl ServingWorld {
    /// Wraps a pipeline as serving world `epoch` with an LRU of
    /// `lru_capacity` mappings.
    pub fn new(borges: Borges, lru_capacity: usize, epoch: u64) -> ServingWorld {
        let digest = borges_store::world_digest(&borges.to_world());
        ServingWorld {
            borges,
            cache: MappingCache::new(lru_capacity),
            epoch,
            digest,
            store_schema: borges_store::STORE_SCHEMA_VERSION,
        }
    }

    /// The mapping for `features`, served through this world's cache.
    pub fn mapping(&self, features: FeatureSet, metrics: &MetricsRegistry) -> Arc<AsOrgMapping> {
        self.mapping_observed(features, metrics).0
    }

    /// [`ServingWorld::mapping`], additionally reporting whether the
    /// lookup hit this world's cache.
    pub fn mapping_observed(
        &self,
        features: FeatureSet,
        metrics: &MetricsRegistry,
    ) -> (Arc<AsOrgMapping>, bool) {
        self.cache
            .get_or_materialize_observed(features, metrics, || self.borges.mapping(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping_of(groups: &[&[u32]]) -> AsOrgMapping {
        AsOrgMapping::from_groups(
            groups
                .iter()
                .map(|g| g.iter().map(|&n| borges_types::Asn::new(n)).collect()),
        )
    }

    #[test]
    fn cache_hits_misses_and_evictions_are_counted() {
        let cache = MappingCache::new(2);
        let metrics = MetricsRegistry::new();
        let a = FeatureSet::NONE;
        let b = FeatureSet {
            oid_p: true,
            ..FeatureSet::NONE
        };
        let c = FeatureSet {
            na: true,
            ..FeatureSet::NONE
        };

        let build = || mapping_of(&[&[1, 2]]);
        cache.get_or_materialize(a, &metrics, build); // miss
        cache.get_or_materialize(a, &metrics, build); // hit
        cache.get_or_materialize(b, &metrics, build); // miss
        cache.get_or_materialize(c, &metrics, build); // miss, evicts a
        cache.get_or_materialize(a, &metrics, build); // miss again, evicts b

        assert_eq!(metrics.counter_value("borges_serve_lru_hits_total"), 1);
        assert_eq!(metrics.counter_value("borges_serve_lru_misses_total"), 4);
        assert_eq!(metrics.counter_value("borges_serve_lru_evictions_total"), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn hit_refreshes_recency() {
        let cache = MappingCache::new(2);
        let metrics = MetricsRegistry::new();
        let a = FeatureSet::NONE;
        let b = FeatureSet {
            oid_p: true,
            ..FeatureSet::NONE
        };
        let c = FeatureSet {
            na: true,
            ..FeatureSet::NONE
        };
        let build = || mapping_of(&[&[1]]);

        cache.get_or_materialize(a, &metrics, build);
        cache.get_or_materialize(b, &metrics, build);
        cache.get_or_materialize(a, &metrics, build); // refresh a
        cache.get_or_materialize(c, &metrics, build); // evicts b, not a
        cache.get_or_materialize(a, &metrics, build); // still a hit

        assert_eq!(metrics.counter_value("borges_serve_lru_hits_total"), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = MappingCache::new(0);
        let metrics = MetricsRegistry::new();
        let build = || mapping_of(&[&[1]]);
        cache.get_or_materialize(FeatureSet::NONE, &metrics, build);
        cache.get_or_materialize(FeatureSet::NONE, &metrics, build);
        assert_eq!(metrics.counter_value("borges_serve_lru_hits_total"), 0);
        assert_eq!(metrics.counter_value("borges_serve_lru_misses_total"), 2);
        assert_eq!(metrics.counter_value("borges_serve_lru_evictions_total"), 0);
        assert!(cache.is_empty());
    }
}
