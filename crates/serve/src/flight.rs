//! The flight recorder: a bounded in-memory history of recent requests
//! and world events, behind the `/v1/admin/debug/*` endpoints.
//!
//! The recorder is a pure runtime surface. Its contents (request ids,
//! durations, event sequence numbers) are schedule-dependent by design,
//! so debug endpoints are never part of byte-determinism comparisons —
//! they exist to answer "what just happened on *this* process" without
//! grepping a log file. Storage is two [`RingBuffer`]s (lock held only
//! for an O(1) push or a snapshot copy), so recording costs the hot
//! path almost nothing.

use std::sync::atomic::{AtomicU64, Ordering};

use borges_telemetry::{AccessRecord, RingBuffer};

use crate::http::json_string;

/// One entry in the world-event journal: reloads, store loads and
/// degrades, shed bursts, shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeEvent {
    /// Monotone per-process event number (order of occurrence).
    pub seq: u64,
    /// Short machine-readable kind: `world_installed`, `reload`,
    /// `reload_failed`, `shed_burst`, `shutdown`, or an
    /// embedder-supplied kind via `Server::record_event`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ServeEvent {
    /// The event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"kind\":{},\"detail\":{}}}",
            self.seq,
            json_string(&self.kind),
            json_string(&self.detail)
        )
    }
}

/// What the mapping LRU did for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LruOutcome {
    /// The request never consulted the mapping cache.
    None,
    /// Served from cache.
    Hit,
    /// Materialized fresh.
    Miss,
}

impl LruOutcome {
    /// The access-record label for this outcome.
    pub fn label(&self) -> &'static str {
        match self {
            LruOutcome::None => "none",
            LruOutcome::Hit => "hit",
            LruOutcome::Miss => "miss",
        }
    }
}

/// Per-request facts a handler reports back to the server so the
/// access record can carry them.
#[derive(Debug, Clone, Copy)]
pub struct RequestObservation {
    /// The mapping-LRU outcome (the last cache interaction wins when a
    /// handler consults the cache more than once).
    pub lru: LruOutcome,
}

impl RequestObservation {
    /// A fresh observation: no cache interaction yet.
    pub fn new() -> RequestObservation {
        RequestObservation {
            lru: LruOutcome::None,
        }
    }
}

impl Default for RequestObservation {
    fn default() -> Self {
        RequestObservation::new()
    }
}

/// The last-N memory of the server: request records and world events.
#[derive(Debug)]
pub struct FlightRecorder {
    requests: RingBuffer<AccessRecord>,
    events: RingBuffer<ServeEvent>,
    event_seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` requests and `capacity`
    /// events (0 disables retention; totals still count).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            requests: RingBuffer::new(capacity),
            events: RingBuffer::new(capacity),
            event_seq: AtomicU64::new(0),
        }
    }

    /// Appends one request record.
    pub fn record_request(&self, record: AccessRecord) {
        self.requests.push(record);
    }

    /// Appends one world event, assigning it the next sequence number.
    pub fn record_event(&self, kind: &str, detail: &str) {
        let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
        self.events.push(ServeEvent {
            seq,
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Retained request records, oldest first.
    pub fn requests(&self) -> Vec<AccessRecord> {
        self.requests.snapshot()
    }

    /// Requests ever recorded (including those that scrolled away).
    pub fn requests_total(&self) -> u64 {
        self.requests.total()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<ServeEvent> {
        self.events.snapshot()
    }

    /// Events ever recorded.
    pub fn events_total(&self) -> u64 {
        self.events.total()
    }

    /// The retention capacity of each ring.
    pub fn capacity(&self) -> usize {
        self.requests.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sequenced_and_wrap() {
        let rec = FlightRecorder::new(2);
        rec.record_event("a", "first");
        rec.record_event("b", "second");
        rec.record_event("c", "third");
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[0].kind, "b");
        assert_eq!(events[1].seq, 2);
        assert_eq!(rec.events_total(), 3);
        assert_eq!(
            events[1].to_json(),
            "{\"seq\":2,\"kind\":\"c\",\"detail\":\"third\"}"
        );
    }

    #[test]
    fn lru_outcome_labels() {
        assert_eq!(LruOutcome::None.label(), "none");
        assert_eq!(LruOutcome::Hit.label(), "hit");
        assert_eq!(LruOutcome::Miss.label(), "miss");
        assert_eq!(RequestObservation::new().lru, LruOutcome::None);
    }
}
