//! The server runtime: accept thread, bounded queue, worker pool,
//! load shedding, hot-swap, and graceful drain.
//!
//! ## Threading model
//!
//! One accept thread owns the listener. Accepted connections go into a
//! [`std::sync::mpsc::sync_channel`] bounded at `queue_depth`; a fixed
//! pool of worker threads shares the receiver behind a mutex and each
//! worker handles one connection at a time, start to finish. There is
//! no per-connection thread and no unbounded buffer anywhere.
//!
//! ## Backpressure contract
//!
//! Every accepted connection is counted (`borges_serve_accepted_total`)
//! and then meets exactly one of two fates: queued for a worker (which
//! eventually counts it as `borges_serve_served_total`, whatever status
//! it answers — including a peer that vanished before the response) or
//! refused on the spot with `503` + `Retry-After: 1` when the queue is
//! full (`borges_serve_shed_total`, written from the accept thread so a
//! saturated pool cannot delay the refusal). At quiescence,
//! `shed + served == accepted` — CI's smoke job asserts it on a live
//! process.
//!
//! ## Swap semantics
//!
//! The current [`ServingWorld`] sits behind `Mutex<Arc<ServingWorld>>`,
//! locked only long enough to clone or replace the `Arc` (nanoseconds —
//! never across a materialization or remap). A request clones the `Arc`
//! once and uses that one world for everything it does;
//! `/v1/admin/reload` builds the next world off to the side (serving
//! continues from the old one throughout the remap) and installs it
//! with a momentary lock. No request
//! ever observes half a swap, and the mapping LRU — owned by the world —
//! starts cold in the new epoch by construction.
//!
//! ## Shutdown
//!
//! [`Server::stop`] (or `POST /v1/admin/shutdown`) sets the shutdown
//! flag and pokes the listener with a wake connection. The accept loop
//! exits and drops the queue sender; workers drain every connection
//! already queued, then see the channel close and exit. Nothing
//! accepted is abandoned.

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use borges_core::Borges;
use borges_telemetry::{duration_bucket_label, AccessRecord, MetricsRegistry, MetricsSnapshot};
use parking_lot::Mutex;

use crate::flight::{FlightRecorder, RequestObservation};
use crate::handlers::{self, Route, ServeContext};
use crate::http::{parse_request, Request, Response};
use crate::timeline::TimelineState;
use crate::world::ServingWorld;

/// How a server should run. `Default` gives a loopback ephemeral port,
/// two workers, a queue of 32, an LRU of 16, a 2-second read timeout,
/// a 256-entry flight recorder, and no slow-request threshold.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (must be ≥ 1).
    pub threads: usize,
    /// Bounded accept-queue depth (must be ≥ 1); overflow sheds.
    pub queue_depth: usize,
    /// Mapping-LRU capacity per world; 0 disables caching.
    pub lru_capacity: usize,
    /// Socket read timeout; a silent peer is answered 408 after this.
    pub read_timeout: Duration,
    /// Flight-recorder retention: last N requests and last N events.
    pub recorder_capacity: usize,
    /// Requests at or above this many milliseconds count into
    /// `borges_serve_slow_total` and fire the slow hook.
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            queue_depth: 32,
            lru_capacity: 16,
            read_timeout: Duration::from_secs(2),
            recorder_capacity: 256,
            slow_ms: None,
        }
    }
}

/// An embedder callback receiving one finished [`AccessRecord`].
pub type RecordHook = Box<dyn Fn(&AccessRecord) + Send + Sync>;

/// Embedder callbacks fired from the serving threads. Both receive the
/// finished [`AccessRecord`]; keep them cheap — they run on the worker
/// (or accept) thread that handled the request.
#[derive(Default)]
pub struct ServerHooks {
    /// Called once per finished request with its access record — the
    /// CLI's `--access-log` appender.
    pub access_log: Option<RecordHook>,
    /// Called for requests at or above `slow_ms` — the CLI's narrator
    /// warning path.
    pub slow: Option<RecordHook>,
}

/// Produces the next [`Borges`] for a reload, given the one currently
/// serving (so it can run [`Borges::remap`] against the current
/// snapshot state) and, when `POST /v1/admin/reload` carried a
/// `{"store": "<path>"}` body, the store-artifact path the caller asked
/// to swap to. Injected by the embedder: the serve crate does no IO of
/// its own. A store-path reload that fails must fail *loudly* (`Err`,
/// answered 500, old world keeps serving) — falling back to a bundle
/// recompile silently would leave the operator believing the named
/// artifact is live.
pub type Reloader = Box<dyn Fn(&Borges, Option<&str>) -> Result<Borges, String> + Send + Sync>;

struct Shared {
    world: Mutex<Arc<ServingWorld>>,
    metrics: MetricsRegistry,
    reloader: Option<Reloader>,
    reload_lock: Mutex<()>,
    shutdown: AtomicBool,
    lru_capacity: usize,
    read_timeout: Duration,
    local_addr: SocketAddr,
    workers: usize,
    recorder: FlightRecorder,
    hooks: ServerHooks,
    slow_ms: Option<u64>,
    /// The mounted timeline, when `--timeline` configured one: `?at=`
    /// resolution, the history/diff endpoints, and the epoch LRU.
    timeline: Option<Arc<TimelineState>>,
    /// Connections currently sitting in the accept queue (incremented
    /// on enqueue, decremented on dequeue) — the `queue_depth` an
    /// access record reports is this value at its accept.
    queued: AtomicUsize,
}

impl Shared {
    /// Builds the next world (off to the side) and swaps it in. `store`
    /// is the artifact path from the reload request body, if any.
    fn reload(&self, store: Option<&str>) -> Result<u64, String> {
        let reloader = self
            .reloader
            .as_ref()
            .ok_or_else(|| "no reloader configured".to_string())?;
        // Serialize reloads so concurrent requests cannot race to the
        // same epoch number; readers are never blocked by this lock.
        let _guard = self.reload_lock.lock();
        let current = self.world.lock().clone();
        let next = match reloader(&current.borges, store) {
            Ok(next) => next,
            Err(msg) => {
                self.recorder.record_event("reload_failed", &msg);
                return Err(msg);
            }
        };
        let epoch = current.epoch + 1;
        let world = Arc::new(ServingWorld::new(next, self.lru_capacity, epoch));
        stamp_world_digest(&self.metrics, &world);
        self.recorder.record_event(
            "reload",
            &format!("epoch {epoch} installed, digest {}", world.digest),
        );
        *self.world.lock() = world;
        self.metrics.counter("borges_serve_reloads_total", 1);
        Ok(epoch)
    }

    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.recorder
            .record_event("shutdown", "graceful drain begun");
        // Wake the accept loop; the connection is discarded there
        // before any counting.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Counts a response's status code. Must run *before* the response
    /// bytes are written: a sequential client's next request can land
    /// on another worker the moment it reads our bytes, and a scrape
    /// there must already see this tick — otherwise counter values
    /// would depend on worker scheduling.
    fn count_status(&self, status: u16) {
        self.metrics.counter_labeled(
            "borges_serve_status_total",
            &[("code", &status.to_string())],
            1,
        );
    }

    /// Finishes one request's bookkeeping: the labeled latency
    /// histogram, the slow path, the flight recorder, and the
    /// access-log hook. Wall-clock durations and schedule-dependent
    /// ids stay confined to these runtime streams — nothing here
    /// touches a response body or a canonical counter.
    #[allow(clippy::too_many_arguments)]
    fn observe_request(
        &self,
        id: &str,
        request: Option<&Request>,
        route_label: &'static str,
        status: u16,
        bytes: u64,
        world: Option<&ServingWorld>,
        obs: RequestObservation,
        queue_depth: u64,
        started: Instant,
    ) {
        let duration_ms = started.elapsed().as_millis() as u64;
        self.metrics.observe_ms_labeled(
            "borges_serve_latency_ms",
            &[("route", route_label)],
            duration_ms,
        );
        let (method, path) = match request {
            Some(req) => (req.method.clone(), canonical_target(req)),
            None => ("-".to_string(), "-".to_string()),
        };
        let (world_digest, world_epoch) = match world {
            Some(world) => (world.digest.clone(), world.epoch),
            None => (String::new(), 0),
        };
        let record = AccessRecord {
            id: id.to_string(),
            method,
            path,
            status,
            bytes,
            world: world_digest,
            epoch: world_epoch,
            lru: obs.lru.label().to_string(),
            queue_depth,
            duration_ms,
            duration_bucket: duration_bucket_label(duration_ms),
        };
        if let Some(threshold) = self.slow_ms {
            if duration_ms >= threshold {
                self.metrics.counter("borges_serve_slow_total", 1);
                if let Some(slow) = &self.hooks.slow {
                    slow(&record);
                }
            }
        }
        self.recorder.record_request(record.clone());
        if let Some(access_log) = &self.hooks.access_log {
            access_log(&record);
        }
    }
}

/// The request's path plus its query re-rendered canonically (keys
/// sorted, `k=v` joined with `&`) — what the access record reports.
fn canonical_target(req: &Request) -> String {
    if req.query.is_empty() {
        return req.path.clone();
    }
    let pairs: Vec<String> = req.query.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{}?{}", req.path, pairs.join("&"))
}

/// A running server: owns the accept thread and worker pool.
///
/// Dropping a `Server` without calling [`Server::stop`] or
/// [`Server::wait`] detaches the threads (they keep serving until the
/// process exits) — embedders that want a clean end must stop or wait.
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pool, and starts serving `borges`.
    ///
    /// Fails on a bad address, a failed bind, or a zero `threads` /
    /// `queue_depth` (zero workers would starve every request; a
    /// zero-depth queue would shed every request).
    pub fn start(
        config: ServerConfig,
        borges: Borges,
        reloader: Option<Reloader>,
    ) -> std::io::Result<Server> {
        Server::start_with(config, borges, reloader, ServerHooks::default())
    }

    /// [`Server::start`] with embedder callbacks: the access-log and
    /// slow-request hooks the CLI wires to `--access-log`/`--slow-ms`.
    pub fn start_with(
        config: ServerConfig,
        borges: Borges,
        reloader: Option<Reloader>,
        hooks: ServerHooks,
    ) -> std::io::Result<Server> {
        Server::start_with_timeline(config, borges, reloader, hooks, None)
    }

    /// [`Server::start_with`] plus a mounted timeline: `?at=` queries,
    /// `/v1/org/{asn}/history`, and `/v1/diff/{t1}/{t2}` answer from
    /// it; without one those paths answer 501.
    pub fn start_with_timeline(
        config: ServerConfig,
        borges: Borges,
        reloader: Option<Reloader>,
        hooks: ServerHooks,
        timeline: Option<Arc<TimelineState>>,
    ) -> std::io::Result<Server> {
        if config.threads == 0 {
            return Err(invalid("threads must be >= 1"));
        }
        if config.queue_depth == 0 {
            return Err(invalid("queue depth must be >= 1"));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // The boot world keeps the epoch its artifact carries (a
        // timeline world serves its chain epoch, not a hardcoded 0),
        // so serving an epoch directly and via `?at=` agree bytewise.
        let boot_epoch = borges.world_epoch();
        let boot = Arc::new(ServingWorld::new(borges, config.lru_capacity, boot_epoch));
        let metrics = MetricsRegistry::new();
        stamp_world_digest(&metrics, &boot);
        let recorder = FlightRecorder::new(config.recorder_capacity);
        recorder.record_event(
            "world_installed",
            &format!("epoch {boot_epoch} installed, digest {}", boot.digest),
        );
        let shared = Arc::new(Shared {
            world: Mutex::new(boot),
            metrics,
            reloader,
            reload_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            lru_capacity: config.lru_capacity,
            read_timeout: config.read_timeout,
            local_addr,
            workers: config.threads,
            recorder,
            hooks,
            slow_ms: config.slow_ms,
            timeline,
            queued: AtomicUsize::new(0),
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<(TcpStream, u64)>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..config.threads)
            .map(|i| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("borges-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx, i))
                    .expect("spawn worker thread")
            })
            .collect();

        let accept_handle = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("borges-serve-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, tx))
                .expect("spawn accept thread")
        };

        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The server's metrics registry (the `/metrics` source of truth).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// The epoch of the world currently serving.
    pub fn epoch(&self) -> u64 {
        self.shared.world.lock().epoch
    }

    /// Runs the configured reloader and swaps the world, exactly as a
    /// body-less `POST /v1/admin/reload` would.
    pub fn reload(&self) -> Result<u64, String> {
        self.shared.reload(None)
    }

    /// Runs the configured reloader against a store artifact, exactly
    /// as `POST /v1/admin/reload` with a `{"store": path}` body would.
    pub fn reload_from_store(&self, store: &str) -> Result<u64, String> {
        self.shared.reload(Some(store))
    }

    /// Replaces the serving world directly with `borges` (no reloader
    /// involved); returns the new epoch. The programmatic face of
    /// hot-swap, used by tests that need full control of the next
    /// world.
    pub fn install(&self, borges: Borges) -> u64 {
        let _guard = self.shared.reload_lock.lock();
        let epoch = self.shared.world.lock().epoch + 1;
        let world = Arc::new(ServingWorld::new(borges, self.shared.lru_capacity, epoch));
        stamp_world_digest(&self.shared.metrics, &world);
        self.shared.recorder.record_event(
            "world_installed",
            &format!("epoch {epoch} installed, digest {}", world.digest),
        );
        *self.shared.world.lock() = world;
        epoch
    }

    /// Appends an embedder event to the world-event journal (`GET
    /// /v1/admin/debug/events`) — the CLI records store boots and
    /// degradations here so the journal tells the whole world story.
    pub fn record_event(&self, kind: &str, detail: &str) {
        self.shared.recorder.record_event(kind, detail);
    }

    /// Graceful shutdown: stop accepting, drain everything queued, join
    /// every thread. Returns the final metrics — the closed ledger.
    pub fn stop(mut self) -> MetricsSnapshot {
        self.shared.trigger_shutdown();
        self.join_threads();
        self.shared.metrics.snapshot()
    }

    /// Blocks until the server shuts down by some other hand (`POST
    /// /v1/admin/shutdown`, or a [`Server::stop`]-equivalent trigger
    /// from another thread via [`Server::shutdown_handle`]). Returns
    /// the final metrics.
    pub fn wait(mut self) -> MetricsSnapshot {
        self.join_threads();
        self.shared.metrics.snapshot()
    }

    /// A handle that triggers the same graceful shutdown as
    /// [`Server::stop`], usable from another thread (e.g. a signal
    /// handler).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: self.shared.clone(),
        }
    }

    fn join_threads(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Triggers graceful shutdown from outside the serving threads.
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begin the graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, msg)
}

/// Marks which world is live: one tick on the digest-labeled series
/// per install, so `/metrics` carries every digest that ever served
/// this process and the reload/install history is reconstructible.
fn stamp_world_digest(metrics: &MetricsRegistry, world: &ServingWorld) {
    metrics.counter(
        &format!("borges_serve_world_digest{{digest=\"{}\"}}", world.digest),
        1,
    );
}

/// The optional `/v1/admin/reload` request body.
#[derive(serde::Deserialize)]
struct ReloadBody {
    store: String,
}

/// Parses the reload body: absent/empty means "reload from the
/// embedder's default source", a JSON `{"store": path}` names a store
/// artifact, anything else is a 400.
fn parse_reload_store(body: &[u8]) -> Result<Option<String>, String> {
    if body.is_empty() {
        return Ok(None);
    }
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Ok(None);
    }
    let parsed: ReloadBody = serde_json::from_str(text)
        .map_err(|err| format!("request body is not {{\"store\": path}}: {err}"))?;
    Ok(Some(parsed.store))
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: SyncSender<(TcpStream, u64)>) {
    // The accept thread numbers the connections it refuses itself
    // (`a-1`, `a-2`, ...) and coalesces consecutive sheds into one
    // `shed_burst` journal event, flushed on the first successful
    // enqueue after the burst (and at loop exit).
    let mut shed_seq: u64 = 0;
    let mut burst: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake connection (or a racer behind it): discarded
            // uncounted — it was never accepted into the protocol.
            break;
        }
        shared.metrics.counter("borges_serve_accepted_total", 1);
        let depth = shared.queued.load(Ordering::SeqCst) as u64;
        match tx.try_send((stream, depth)) {
            Ok(()) => {
                shared.queued.fetch_add(1, Ordering::SeqCst);
                flush_shed_burst(shared, &mut burst);
            }
            Err(TrySendError::Full((stream, depth))) => {
                shed_seq += 1;
                burst += 1;
                shed(shared, stream, shed_seq, depth);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    flush_shed_burst(shared, &mut burst);
    // Dropping the sender closes the queue: workers drain what is
    // already in it, then exit.
    drop(tx);
}

fn flush_shed_burst(shared: &Shared, burst: &mut u64) {
    if *burst > 0 {
        shared.recorder.record_event(
            "shed_burst",
            &format!("{burst} connection(s) shed while the queue was full"),
        );
        *burst = 0;
    }
}

/// Refuses an over-capacity connection with `503` + `Retry-After`,
/// straight from the accept thread — shedding must not itself queue.
fn shed(shared: &Shared, stream: TcpStream, shed_seq: u64, depth: u64) {
    let started = Instant::now();
    shared.metrics.counter("borges_serve_shed_total", 1);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let id = format!("a-{shed_seq}");
    let mut response = Response::error(503, "server overloaded, retry shortly");
    response.retry_after = Some(1);
    response.request_id = Some(id.clone());
    let bytes = response.body.len() as u64;
    shared.count_status(503);
    respond_close(&stream, &response, Duration::from_millis(500));
    // A shed request was never read, so it has no method/path; the
    // record still carries the live world's digest — the world that
    // answered (refused) it.
    let world = shared.world.lock().clone();
    shared.observe_request(
        &id,
        None,
        "shed",
        503,
        bytes,
        Some(&world),
        RequestObservation::new(),
        depth,
        started,
    );
}

/// Writes the response, half-closes, and drains what the peer already
/// sent (bounded) so the close is clean. Closing with unread bytes in
/// the receive buffer makes the kernel send RST, which can destroy the
/// response before the peer reads it — a refused request must still
/// *see* its 431/503. The drain is capped by bytes, the socket read
/// timeout, and the peer's own FIN.
fn respond_close(stream: &TcpStream, response: &Response, drain_timeout: Duration) {
    let _ = response.write_to(&mut &*stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(drain_timeout));
    let mut sink = [0u8; 4096];
    let mut budget: usize = 256 * 1024;
    while budget > 0 {
        match (&*stream).read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<(TcpStream, u64)>>>, worker: usize) {
    // Request ids are monotone per worker (`w0-1`, `w0-2`, ...): no
    // cross-worker coordination on the hot path, and the pair
    // (worker, seq) is unique for the life of the process.
    let mut seq: u64 = 0;
    loop {
        // Hold the receiver lock only for the dequeue itself: the
        // guard is a temporary of this `let` and is dropped before the
        // connection is handled.
        let received = rx.lock().recv();
        let (stream, depth) = match received {
            Ok(pair) => pair,
            Err(_) => break,
        };
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        // Counted served no matter how the conversation ends: the
        // accept/shed/serve ledger must balance even when the peer
        // vanishes mid-request.
        shared.metrics.counter("borges_serve_served_total", 1);
        seq += 1;
        let id = format!("w{worker}-{seq}");
        if handle_connection(shared, &stream, &id, depth) == Action::Shutdown {
            shared.trigger_shutdown();
        }
    }
}

#[derive(PartialEq)]
enum Action {
    None,
    Shutdown,
}

fn handle_connection(shared: &Shared, stream: &TcpStream, id: &str, queue_depth: u64) -> Action {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let mut reader = BufReader::new(stream);
    let request = match parse_request(&mut reader) {
        Ok(request) => request,
        Err(error) => {
            shared
                .metrics
                .counter("borges_serve_requests_error_total", 1);
            let status = match error.status() {
                Some((status, _reason, detail)) => {
                    let mut response = Response::error(status, detail);
                    response.request_id = Some(id.to_string());
                    shared.count_status(status);
                    respond_close(stream, &response, shared.read_timeout);
                    status
                }
                // The peer vanished unanswered: status 0 in the record,
                // and no status-code counter tick (nothing was sent).
                None => 0,
            };
            let world = shared.world.lock().clone();
            shared.observe_request(
                id,
                None,
                "error",
                status,
                0,
                Some(&world),
                RequestObservation::new(),
                queue_depth,
                started,
            );
            return Action::None;
        }
    };

    let route = handlers::route(&request);
    let label = route.label();
    shared
        .metrics
        .counter(&format!("borges_serve_requests_{label}_total"), 1);

    // One Arc clone under a momentary lock: everything this request
    // reads comes from this one world, and its digest is what the
    // access record reports as "the world that answered".
    let mut world = shared.world.lock().clone();
    let mut obs = RequestObservation::new();
    let (mut response, action) = match route {
        Route::AdminReload => match parse_reload_store(&request.body) {
            Err(msg) => (Response::error(400, &msg), Action::None),
            Ok(store) => match shared.reload(store.as_deref()) {
                Ok(epoch) => {
                    // The answer announces the *new* world; the record
                    // carries that world's digest.
                    world = shared.world.lock().clone();
                    (
                        Response::json(
                            200,
                            format!("{{\"status\":\"reloaded\",\"epoch\":{epoch}}}"),
                        ),
                        Action::None,
                    )
                }
                Err(msg) => {
                    let status = if msg == "no reloader configured" {
                        501
                    } else {
                        500
                    };
                    (Response::error(status, &msg), Action::None)
                }
            },
        },
        Route::AdminShutdown => (
            Response::json(200, "{\"status\":\"shutting down\"}"),
            Action::Shutdown,
        ),
        ref route => {
            // `?at=` re-pins the request to a timeline epoch's world
            // *before* the handler runs, so everything downstream —
            // handler, access record, world digest — sees exactly one
            // world, same as a live request.
            let mut early: Option<Response> = None;
            if matches!(route, Route::Map(_)) {
                if let Some(raw_at) = request.query.get("at") {
                    match raw_at.parse::<u64>() {
                        Err(_) => {
                            early = Some(Response::error(
                                400,
                                &format!(
                                    "invalid at {raw_at:?} (expected a non-negative integer epoch)"
                                ),
                            ))
                        }
                        Ok(at) => match &shared.timeline {
                            None => early = Some(Response::error(501, "no timeline configured")),
                            Some(state) => {
                                match state.world_at(at, &shared.metrics, &shared.recorder) {
                                    Ok(epoch_world) => world = epoch_world,
                                    Err(err) => early = Some(err.to_response()),
                                }
                            }
                        },
                    }
                }
            }
            match early {
                Some(response) => (response, Action::None),
                None => {
                    let ctx = ServeContext {
                        world: &world,
                        metrics: &shared.metrics,
                        workers: shared.workers,
                        recorder: &shared.recorder,
                        slow_ms: shared.slow_ms,
                        timeline: shared.timeline.as_deref(),
                    };
                    (
                        handlers::respond(route, &request, &ctx, &mut obs),
                        Action::None,
                    )
                }
            }
        }
    };
    response.request_id = Some(id.to_string());
    shared.count_status(response.status);
    respond_close(stream, &response, shared.read_timeout);
    shared.observe_request(
        id,
        Some(&request),
        label,
        response.status,
        response.body.len() as u64,
        Some(&world),
        obs,
        queue_depth,
        started,
    );
    action
}
