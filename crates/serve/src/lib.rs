//! An embedded HTTP mapping service over a compiled Borges pipeline.
//!
//! The ROADMAP's serving milestone, in-process and dependency-free:
//! materialization is cheap enough (~1.6 ms for the medium world) that
//! per-request feature subsets can be answered live, so this crate puts
//! a small, careful HTTP/1.1 front on [`borges_core::Borges`] instead
//! of shipping periodic file dumps.
//!
//! - [`http`] — a defensive parser and deterministic response writer
//!   over `std::net`: every byte stream becomes a response or a clean
//!   4xx/5xx, never a panic or an unbounded read.
//! - [`world`] — the [`ServingWorld`](world::ServingWorld): one
//!   compiled pipeline plus a per-world LRU of materialized mappings,
//!   immutable behind an `Arc` so hot-swap is a pointer write.
//! - [`handlers`] — routing and the read-only endpoints (`/v1/map`,
//!   `/v1/org`, `/v1/evidence`, `/v1/coverage`, `/healthz`,
//!   `/metrics`), every body byte-deterministic.
//! - [`server`] — accept thread, bounded queue, fixed worker pool,
//!   `503` + `Retry-After` load shedding, zero-downtime reload, and a
//!   graceful drain; the ledger `shed + served == accepted` holds at
//!   quiescence.
//! - [`timeline`] — time-travel serving: an injected
//!   [`TimelineBackend`](timeline::TimelineBackend) (the CLI wraps
//!   `borges_timeline::Timeline`) plus an epoch-keyed LRU of loaded
//!   worlds, behind `?at=`, `/v1/org/{asn}/history`, and
//!   `/v1/diff/{t1}/{t2}`.
//! - [`client`] — the loopback test client the integration tests,
//!   benches, and smoke checks drive the server with.
//!
//! The serve crate does no IO beyond its sockets: snapshot loading and
//! remapping arrive as an injected [`server::Reloader`] closure, which
//! is how `borges serve` (the CLI face) ties `POST /v1/admin/reload` to
//! [`borges_core::Borges::remap`] without this crate knowing about
//! files.

#![deny(missing_docs)]

pub mod client;
pub mod flight;
pub mod handlers;
pub mod http;
pub mod server;
pub mod timeline;
pub mod world;

pub use client::{ClientResponse, ServeClient};
pub use flight::{FlightRecorder, LruOutcome, RequestObservation, ServeEvent};
pub use server::{RecordHook, Reloader, Server, ServerConfig, ServerHooks, ShutdownHandle};
pub use timeline::{TimelineBackend, TimelineQueryError, TimelineState};
pub use world::{MappingCache, ServingWorld};
