//! A minimal, defensive HTTP/1.1 request parser and response writer.
//!
//! Hand-rolled over `std::io` (the workspace's dependency policy), and
//! deliberately narrow: one request per connection, `Connection: close`
//! on every response, no chunked bodies, no keep-alive. The robustness
//! contract — pinned by `tests/http_robustness.rs` — is that **every**
//! byte stream yields either a parsed request or a [`HttpError`] that
//! maps to a 4xx/5xx status: never a panic, and never an unbounded read
//! (lines, header counts, and body sizes are capped; socket timeouts
//! bound the wait for a slow or silent peer).
//!
//! Responses carry no `Date` or other environment-dependent headers, so
//! a handler's output is byte-identical across runs, worker counts, and
//! hosts — the serving determinism keystone builds on this.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Longest accepted request line or header line, bytes (terminator
/// included).
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Why a byte stream failed to parse as a request. Every variant maps
/// to a response status via [`HttpError::status`] except [`HttpError::
/// Disconnected`], where the peer is gone and no response can be sent.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request (bad request line, bad header,
    /// truncated stream, unsupported transfer encoding) → 400.
    Malformed(&'static str),
    /// A line exceeded [`MAX_LINE_BYTES`] or more than [`MAX_HEADERS`]
    /// headers arrived → 431.
    TooLarge(&'static str),
    /// Declared body length exceeded [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Not an HTTP/1.x request → 505.
    BadVersion,
    /// The peer went silent and the socket read timed out → 408.
    Timeout,
    /// The peer vanished mid-request; nothing can be answered.
    Disconnected,
}

impl HttpError {
    /// The `(status, reason, detail)` this error answers with, or
    /// `None` when the connection is beyond answering.
    pub fn status(&self) -> Option<(u16, &'static str, &'static str)> {
        match self {
            HttpError::Malformed(detail) => Some((400, "Bad Request", detail)),
            HttpError::TooLarge(detail) => Some((431, "Request Header Fields Too Large", detail)),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large", "body too large")),
            HttpError::BadVersion => Some((505, "HTTP Version Not Supported", "expected HTTP/1.x")),
            HttpError::Timeout => Some((408, "Request Timeout", "request not received in time")),
            HttpError::Disconnected => None,
        }
    }
}

/// A parsed request: method, decoded path + query, lowercased headers,
/// and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// The path, query string excluded (`/v1/map/AS3356`).
    pub path: String,
    /// Decoded query parameters, last occurrence wins.
    pub query: BTreeMap<String, String>,
    /// Headers, names lowercased, values trimmed.
    pub headers: BTreeMap<String, String>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Reads one `\n`-terminated line of at most `MAX_LINE_BYTES`, stripping
/// the terminator (and a preceding `\r`). Distinguishes a silent peer
/// (timeout) from a vanished one (clean EOF at line start → `None`;
/// EOF mid-line → `Malformed`).
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::Malformed("truncated request"))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 request line or header"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(HttpError::TooLarge("line too long"));
                }
            }
            Err(e) => return Err(io_error(e)),
        }
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        std::io::ErrorKind::UnexpectedEof => HttpError::Malformed("truncated request"),
        _ => HttpError::Disconnected,
    }
}

/// Splits a raw target into path and parsed query parameters. No
/// percent-decoding: every identifier this API routes on (ASNs, org
/// labels, feature names) is plain ASCII, and a percent-escaped variant
/// simply fails the downstream parse with a 400/404.
fn split_target(target: &str) -> (String, BTreeMap<String, String>) {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(key.to_string(), value.to_string());
    }
    (path.to_string(), query)
}

/// Parses exactly one request from `reader`, enforcing every cap.
pub fn parse_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = match read_line(reader)? {
        Some(line) => line,
        None => return Err(HttpError::Disconnected),
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::Malformed("expected METHOD TARGET VERSION")),
    };
    if !method
        .chars()
        .all(|c| c.is_ascii_uppercase() && c.is_ascii_alphabetic())
        || method.is_empty()
    {
        return Err(HttpError::Malformed("invalid method token"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadVersion);
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed("target must be an absolute path"));
    }

    let mut headers = BTreeMap::new();
    loop {
        let line = match read_line(reader)? {
            Some(line) => line,
            None => return Err(HttpError::Malformed("truncated request")),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("invalid header name"));
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
    }

    if headers.contains_key("transfer-encoding") {
        return Err(HttpError::Malformed("chunked bodies are not supported"));
    }
    let mut body = Vec::new();
    if let Some(length) = headers.get("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| HttpError::Malformed("invalid content-length"))?;
        if length > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        body.resize(length, 0);
        reader.read_exact(&mut body).map_err(io_error)?;
    }

    let (path, query) = split_target(target);
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// A response ready to serialize: status, media type, body, the
/// optional `Retry-After` seconds the load-shedding path sets, and the
/// request id the server echoes back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds (503 shedding only).
    pub retry_after: Option<u32>,
    /// `Allow` header value (405 responses only): the method the
    /// routed path accepts.
    pub allow: Option<&'static str>,
    /// Echoed as `x-borges-request-id`. Ids are schedule-dependent
    /// (monotone per worker), so this header — and only this header —
    /// is excluded from byte-determinism comparisons; see
    /// `ClientResponse::canonical_raw`.
    pub request_id: Option<String>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
            allow: None,
            request_id: None,
        }
    }

    /// A plain-text response (the `/metrics` exposition).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
            retry_after: None,
            allow: None,
            request_id: None,
        }
    }

    /// A JSON error body `{"error": detail}`.
    pub fn error(status: u16, detail: &str) -> Response {
        Response::json(status, format!("{{\"error\":{}}}", json_string(detail)))
    }

    /// The canonical reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body. Header order is fixed
    /// and no environment-dependent header (`Date`, `Server`) is ever
    /// emitted: identical handler output means identical bytes on the
    /// wire.
    pub fn write_to(&self, writer: &mut impl Write) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(allow) = self.allow {
            write!(writer, "Allow: {allow}\r\n")?;
        }
        if let Some(id) = &self.request_id {
            write!(writer, "x-borges-request-id: {id}\r\n")?;
        }
        if let Some(seconds) = self.retry_after {
            write!(writer, "Retry-After: {seconds}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Serializes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req =
            parse(b"GET /v1/map/3356?features=oid_p,rr&x=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/map/3356");
        assert_eq!(req.query["features"], "oid_p,rr");
        assert_eq!(req.query["x"], "1");
        assert_eq!(req.headers["host"], "h");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /v1/admin/reload HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse(b"GET / HTTP/1.1\nHost: h\n\n").unwrap();
        assert_eq!(req.path, "/");
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 EXTRA\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"\xff\xfe\xfd\r\n\r\n",
            b"GET / HT",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status().unwrap().0, 400, "{bad:?} → {err:?}");
        }
    }

    #[test]
    fn wrong_version_is_505() {
        let err = parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(err.status().unwrap().0, 505);
        let err = parse(b"GET / SPDY/1\r\n\r\n").unwrap_err();
        assert_eq!(err.status().unwrap().0, 505);
    }

    #[test]
    fn oversized_lines_and_header_floods_are_431() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 1));
        let err = parse(long.as_bytes()).unwrap_err();
        assert_eq!(err.status().unwrap().0, 431);

        let mut flood = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            flood.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        flood.extend_from_slice(b"\r\n");
        let err = parse(&flood).unwrap_err();
        assert_eq!(err.status().unwrap().0, 431);
    }

    #[test]
    fn oversized_and_truncated_bodies_are_rejected() {
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(big.as_bytes()).unwrap_err();
        assert_eq!(err.status().unwrap().0, 413);

        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status().unwrap().0, 400, "truncated body");

        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert_eq!(err.status().unwrap().0, 400);
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        let err =
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n").unwrap_err();
        assert_eq!(err.status().unwrap().0, 400);
    }

    #[test]
    fn empty_stream_is_disconnected_not_answerable() {
        let err = parse(b"").unwrap_err();
        assert!(err.status().is_none());
    }

    #[test]
    fn trailing_pipelined_bytes_are_ignored() {
        let req = parse(b"GET / HTTP/1.1\r\n\r\nGARBAGE MORE GARBAGE").unwrap();
        assert_eq!(req.path, "/");
    }

    #[test]
    fn responses_serialize_deterministically() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}"
        );
        let mut shed = Vec::new();
        Response {
            retry_after: Some(1),
            ..Response::error(503, "overloaded")
        }
        .write_to(&mut shed)
        .unwrap();
        let text = String::from_utf8(shed).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"overloaded\"}"), "{text}");
    }

    #[test]
    fn request_id_header_rides_between_connection_and_retry_after() {
        let mut out = Vec::new();
        Response {
            request_id: Some("w2-17".to_string()),
            retry_after: Some(1),
            ..Response::json(200, "{}")
        }
        .write_to(&mut out)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\
             Connection: close\r\nx-borges-request-id: w2-17\r\nRetry-After: 1\r\n\r\n{}"
        );
    }

    #[test]
    fn allow_header_rides_first_after_connection() {
        let mut out = Vec::new();
        Response {
            allow: Some("GET"),
            request_id: Some("w0-1".to_string()),
            ..Response::error(405, "method not allowed")
        }
        .write_to(&mut out)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 405 Method Not Allowed\r\nContent-Type: application/json\r\n\
             Content-Length: 30\r\nConnection: close\r\nAllow: GET\r\n\
             x-borges-request-id: w0-1\r\n\r\n{\"error\":\"method not allowed\"}"
        );
    }

    #[test]
    fn json_strings_escape_controls_and_quotes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
