//! Time-travel serving: an injected timeline backend plus an
//! epoch-keyed LRU of loaded worlds.
//!
//! The serve crate stays IO-free (the same discipline as
//! [`crate::server::Reloader`]): the CLI injects a [`TimelineBackend`]
//! that knows how to resolve and load chain epochs, and this module
//! owns the serving-side policy — which epochs stay resident
//! ([`TimelineState`]'s LRU), how loads are counted
//! (`borges_timeline_*` metrics), and how backend failures map onto
//! HTTP statuses.
//!
//! ## Contracts
//!
//! * **Never mixed**: a `?at=` request pins exactly one epoch's
//!   [`ServingWorld`] for everything it reads, same as a live request
//!   pins the current world.
//! * **Byte determinism**: a loaded epoch world is built from the
//!   artifact alone, and its serving epoch is the artifact's stamped
//!   epoch — so a `?at=e` response is byte-identical to serving that
//!   epoch's world directly, across worker counts and LRU evictions.

use std::sync::Arc;

use borges_core::Borges;
use borges_telemetry::MetricsRegistry;
use parking_lot::Mutex;

use crate::flight::FlightRecorder;
use crate::http::Response;
use crate::world::ServingWorld;

/// Why a timeline query failed, already sorted by blame: the request
/// ([`BadRequest`](TimelineQueryError::BadRequest)), the chain's extent
/// ([`NotFound`](TimelineQueryError::NotFound)), or the timeline itself
/// ([`Internal`](TimelineQueryError::Internal) — corruption or IO, the
/// backend's typed kinds flattened into the detail string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineQueryError {
    /// The request names an epoch/range the chain cannot answer → 404.
    NotFound(String),
    /// The request itself is malformed (e.g. a backwards range) → 400.
    BadRequest(String),
    /// The timeline is broken or unreadable → 500.
    Internal(String),
}

impl TimelineQueryError {
    /// The HTTP response this failure answers with.
    pub fn to_response(&self) -> Response {
        match self {
            TimelineQueryError::NotFound(detail) => Response::error(404, detail),
            TimelineQueryError::BadRequest(detail) => Response::error(400, detail),
            TimelineQueryError::Internal(detail) => Response::error(500, detail),
        }
    }
}

/// What the CLI injects: resolution, loading, and the two rendered
/// query bodies. Implementations wrap `borges_timeline::Timeline`; the
/// serve crate deliberately does not depend on that crate (or any
/// file IO) itself.
pub trait TimelineBackend: Send + Sync {
    /// Number of links in the chain.
    fn link_count(&self) -> usize;
    /// The newest epoch, if the chain is non-empty.
    fn tip_epoch(&self) -> Option<u64>;
    /// Floor-resolves `?at=` to a chain epoch.
    fn resolve_at(&self, at: u64) -> Result<u64, TimelineQueryError>;
    /// Loads the world at exactly `epoch` (verifying it against the
    /// chain) as a serving-ready pipeline.
    fn load(&self, epoch: u64) -> Result<Borges, TimelineQueryError>;
    /// The deterministic `/v1/org/{asn}/history` body.
    fn history_json(&self, asn: borges_types::Asn) -> Result<String, TimelineQueryError>;
    /// The deterministic `/v1/diff/{t1}/{t2}` body.
    fn diff_json(&self, t1: u64, t2: u64) -> Result<String, TimelineQueryError>;
}

/// The serving side of a mounted timeline: the backend plus a bounded,
/// epoch-keyed LRU of loaded worlds (most-recently-used first).
/// Capacity 0 disables residency — every `?at=` load is a miss.
pub struct TimelineState {
    backend: Box<dyn TimelineBackend>,
    cache: Mutex<Vec<(u64, Arc<ServingWorld>)>>,
    capacity: usize,
    /// Mapping-LRU capacity handed to each loaded epoch world.
    lru_capacity: usize,
}

impl TimelineState {
    /// Mounts `backend`, keeping at most `capacity` epoch worlds
    /// resident; each gets a mapping LRU of `lru_capacity`.
    pub fn new(
        backend: Box<dyn TimelineBackend>,
        capacity: usize,
        lru_capacity: usize,
    ) -> TimelineState {
        TimelineState {
            backend,
            cache: Mutex::new(Vec::new()),
            capacity,
            lru_capacity,
        }
    }

    /// The injected backend (history/diff queries go straight to it).
    pub fn backend(&self) -> &dyn TimelineBackend {
        self.backend.as_ref()
    }

    /// Number of epoch worlds currently resident.
    pub fn resident(&self) -> usize {
        self.cache.lock().len()
    }

    /// Resolves `?at=` and returns that epoch's world, loading and
    /// caching it on a miss. Loading runs *outside* the cache lock;
    /// two racing misses on one epoch both load, and whichever inserts
    /// second adopts the first's world — harmless, because loads are
    /// deterministic.
    pub fn world_at(
        &self,
        at: u64,
        metrics: &MetricsRegistry,
        recorder: &FlightRecorder,
    ) -> Result<Arc<ServingWorld>, TimelineQueryError> {
        let epoch = self.backend.resolve_at(at)?;
        if self.capacity > 0 {
            let mut cache = self.cache.lock();
            if let Some(pos) = cache.iter().position(|(e, _)| *e == epoch) {
                let entry = cache.remove(pos);
                let world = entry.1.clone();
                cache.insert(0, entry);
                drop(cache);
                metrics.counter("borges_timeline_lru_hits_total", 1);
                return Ok(world);
            }
        }
        metrics.counter("borges_timeline_lru_misses_total", 1);
        let borges = self.backend.load(epoch)?;
        // The serving epoch is the artifact's stamped epoch, so the
        // body is byte-identical to serving that artifact directly.
        let world = Arc::new(ServingWorld::new(borges, self.lru_capacity, epoch));
        metrics.counter("borges_timeline_epoch_loads_total", 1);
        recorder.record_event(
            "timeline_epoch_load",
            &format!("epoch {epoch} loaded, digest {}", world.digest),
        );
        if self.capacity > 0 {
            let mut cache = self.cache.lock();
            if let Some(pos) = cache.iter().position(|(e, _)| *e == epoch) {
                // A racer beat us; adopt its world so at most one
                // instance of an epoch is ever resident.
                let entry = cache.remove(pos);
                let world = entry.1.clone();
                cache.insert(0, entry);
                return Ok(world);
            }
            cache.insert(0, (epoch, world.clone()));
            if cache.len() > self.capacity {
                if let Some((evicted, _)) = cache.pop() {
                    metrics.counter("borges_timeline_lru_evictions_total", 1);
                    recorder.record_event(
                        "timeline_epoch_evict",
                        &format!("epoch {evicted} evicted from the epoch cache"),
                    );
                }
            }
        }
        Ok(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A backend that refuses everything — enough to exercise the
    /// error plumbing without a real chain (integration tests drive
    /// the real `borges_timeline::Timeline` through the CLI adapter).
    struct EmptyBackend;

    impl TimelineBackend for EmptyBackend {
        fn link_count(&self) -> usize {
            0
        }
        fn tip_epoch(&self) -> Option<u64> {
            None
        }
        fn resolve_at(&self, _at: u64) -> Result<u64, TimelineQueryError> {
            Err(TimelineQueryError::NotFound("timeline has no links".into()))
        }
        fn load(&self, _epoch: u64) -> Result<Borges, TimelineQueryError> {
            Err(TimelineQueryError::Internal("no worlds".into()))
        }
        fn history_json(&self, _asn: borges_types::Asn) -> Result<String, TimelineQueryError> {
            Err(TimelineQueryError::NotFound("timeline has no links".into()))
        }
        fn diff_json(&self, t1: u64, t2: u64) -> Result<String, TimelineQueryError> {
            if t1 > t2 {
                return Err(TimelineQueryError::BadRequest(format!(
                    "invalid range: t1 {t1} > t2 {t2}"
                )));
            }
            Err(TimelineQueryError::NotFound("timeline has no links".into()))
        }
    }

    #[test]
    fn query_errors_map_to_statuses() {
        assert_eq!(
            TimelineQueryError::NotFound("x".into())
                .to_response()
                .status,
            404
        );
        assert_eq!(
            TimelineQueryError::BadRequest("x".into())
                .to_response()
                .status,
            400
        );
        assert_eq!(
            TimelineQueryError::Internal("x".into())
                .to_response()
                .status,
            500
        );
    }

    #[test]
    fn empty_backend_resolution_is_a_404_and_nothing_is_cached() {
        let state = TimelineState::new(Box::new(EmptyBackend), 4, 4);
        let metrics = MetricsRegistry::new();
        let recorder = FlightRecorder::new(8);
        let err = match state.world_at(0, &metrics, &recorder) {
            Ok(_) => panic!("an empty backend must not resolve"),
            Err(err) => err,
        };
        assert_eq!(err.to_response().status, 404);
        assert_eq!(state.resident(), 0);
        assert_eq!(metrics.counter_value("borges_timeline_lru_misses_total"), 0);
        assert_eq!(state.backend().link_count(), 0);
        assert_eq!(state.backend().tip_epoch(), None);
    }
}
