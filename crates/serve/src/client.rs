//! A minimal loopback HTTP client for tests, benches, and the CI smoke
//! job's Rust-side counterpart.
//!
//! One request per connection, mirroring the server's `Connection:
//! close` discipline: connect, write, read to EOF, parse. The client
//! also exposes [`ServeClient::send_raw`] so robustness tests can ship
//! arbitrary byte garbage and still observe whatever the server says
//! back.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response from the server.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: BTreeMap<String, String>,
    /// The body bytes.
    pub body: Vec<u8>,
    /// The complete raw response, byte for byte — what the
    /// determinism tests compare.
    pub raw: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (panics on invalid UTF-8 — test convenience).
    pub fn body_text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }

    /// The raw response with the one schedule-dependent header —
    /// `x-borges-request-id` — removed: the request-id-free canonical
    /// form the byte-determinism tests compare. Everything else
    /// (status line, remaining headers, order, body) is untouched.
    pub fn canonical_raw(&self) -> Vec<u8> {
        let header_end = match self.raw.windows(4).position(|w| w == b"\r\n\r\n") {
            Some(pos) => pos + 2, // keep the final CRLF of the last header line
            None => return self.raw.clone(),
        };
        let mut out = Vec::with_capacity(self.raw.len());
        for line in self.raw[..header_end].split_inclusive(|&b| b == b'\n') {
            let lower: Vec<u8> = line
                .iter()
                .take("x-borges-request-id:".len())
                .map(|b| b.to_ascii_lowercase())
                .collect();
            if lower != b"x-borges-request-id:" {
                out.extend_from_slice(line);
            }
        }
        out.extend_from_slice(&self.raw[header_end..]);
        out
    }
}

/// A blocking client pinned to one server address.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl ServeClient {
    /// A client for `addr` with a 5-second socket timeout.
    pub fn new(addr: SocketAddr) -> ServeClient {
        ServeClient {
            addr,
            timeout: Duration::from_secs(5),
        }
    }

    /// Overrides the socket timeout (tests poking at slow paths).
    pub fn with_timeout(mut self, timeout: Duration) -> ServeClient {
        self.timeout = timeout;
        self
    }

    /// `GET {target}` and parse the response.
    pub fn get(&self, target: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", target, &[])
    }

    /// `POST {target}` with `body` and parse the response.
    pub fn post(&self, target: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", target, body)
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        let mut request = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        )
        .into_bytes();
        request.extend_from_slice(body);
        let raw = self.send_raw(&request)?;
        parse_response(&raw)
    }

    /// Writes `bytes` verbatim and reads the connection to EOF.
    pub fn send_raw(&self, bytes: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.write_all(bytes)?;
        // Half-close the write side so a server reading for a body that
        // never comes sees EOF rather than waiting out its timeout.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        Ok(raw)
    }
}

fn bad(detail: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail.to_string())
}

/// Parses a complete `Connection: close` response.
pub fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..header_end]).map_err(|_| bad("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body: raw[header_end + 4..].to_vec(),
        raw: raw.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\nRetry-After: 1\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers["retry-after"], "1");
        assert_eq!(resp.headers["connection"], "close");
        assert_eq!(resp.body, b"{}");
        assert_eq!(resp.raw, raw);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 twohundred OK\r\n\r\n").is_err());
    }

    #[test]
    fn canonical_raw_strips_only_the_request_id_header() {
        let with_id = parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\
              Connection: close\r\nx-borges-request-id: w3-9\r\n\r\n{}",
        )
        .unwrap();
        let without_id = parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\
              Connection: close\r\n\r\n{}",
        )
        .unwrap();
        assert_ne!(with_id.raw, without_id.raw);
        assert_eq!(with_id.canonical_raw(), without_id.canonical_raw());
        assert_eq!(without_id.canonical_raw(), without_id.raw);
        // Two different ids canonicalize identically.
        let other_id = parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\
              Connection: close\r\nx-borges-request-id: w0-1234\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(with_id.canonical_raw(), other_id.canonical_raw());
    }
}
