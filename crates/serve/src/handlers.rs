//! Request routing and the read-only endpoint handlers.
//!
//! Routing is split from handling so the server can bump per-endpoint
//! request counters *before* a handler runs — the `/metrics` body must
//! already include the request that is fetching it, or the
//! `shed + served == accepted` balance would be off by one on every
//! scrape.
//!
//! Every body here is assembled by hand from deterministic inputs
//! (sorted members, fixed field order, no timestamps), so identical
//! requests against the same world produce byte-identical responses —
//! the property `tests/serve.rs` pins across worker counts and LRU
//! evictions.

use borges_core::pipeline::FeatureCoverage;
use borges_core::FeatureSet;
use borges_telemetry::MetricsRegistry;
use borges_types::Asn;

use crate::flight::{FlightRecorder, LruOutcome, RequestObservation};
use crate::http::{json_string, Request, Response};
use crate::timeline::TimelineState;
use crate::world::ServingWorld;

/// Everything a read-only handler may consult: the one world the
/// request pinned, the live metrics, and the server facts (worker
/// count, flight recorder, slow threshold) the observability endpoints
/// report.
pub struct ServeContext<'a> {
    /// The world answering this request (pinned once, never re-read).
    pub world: &'a ServingWorld,
    /// The server's metrics registry.
    pub metrics: &'a MetricsRegistry,
    /// Worker-pool size, reported by `/healthz`.
    pub workers: usize,
    /// The flight recorder behind `/v1/admin/debug/*`.
    pub recorder: &'a FlightRecorder,
    /// The configured `--slow-ms` threshold, the default for
    /// `/v1/admin/debug/slow` when the query names none.
    pub slow_ms: Option<u64>,
    /// The mounted timeline, when `--timeline` configured one: the
    /// history/diff endpoints and the `/healthz` timeline field.
    pub timeline: Option<&'a TimelineState>,
}

/// Where a request is headed, with path parameters still raw: handlers
/// own the parse so an unparseable ASN becomes a 400 with a clear
/// message rather than a routing miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `GET /v1/map/{asn}` — the ASN's org under a feature subset.
    Map(String),
    /// `GET /v1/org/{org}` — full membership of the org containing an
    /// ASN (orgs are anonymous clusters; any member names the org).
    Org(String),
    /// `GET /v1/evidence/{a}/{b}` — which features link two ASNs.
    Evidence(String, String),
    /// `GET /v1/org/{asn}/history` — the ASN's organization lineage
    /// across the mounted timeline.
    History(String),
    /// `GET /v1/diff/{t1}/{t2}` — what moved between two timeline
    /// epochs.
    DiffEpochs(String, String),
    /// `GET /v1/coverage` — the pipeline's evidence-coverage ledger.
    Coverage,
    /// `GET /healthz` — liveness plus world epoch.
    Healthz,
    /// `GET /metrics` — Prometheus exposition.
    Metrics,
    /// `POST /v1/admin/reload` — remap and hot-swap the world.
    AdminReload,
    /// `POST /v1/admin/shutdown` — graceful drain and exit.
    AdminShutdown,
    /// `GET /v1/admin/debug/requests` — the flight recorder's recent
    /// request records.
    DebugRequests,
    /// `GET /v1/admin/debug/slow?threshold_ms=N` — recent requests at
    /// or above a duration threshold.
    DebugSlow,
    /// `GET /v1/admin/debug/events` — the world-event journal.
    DebugEvents,
    /// Known path, wrong method; carries the method the path accepts
    /// (the 405 response's `Allow` header).
    MethodNotAllowed(&'static str),
    /// No such route.
    NotFound,
}

impl Route {
    /// The short label used in per-endpoint metric names.
    pub fn label(&self) -> &'static str {
        match self {
            Route::Map(_) => "map",
            Route::Org(_) => "org",
            Route::Evidence(_, _) => "evidence",
            Route::History(_) => "org_history",
            Route::DiffEpochs(_, _) => "diff",
            Route::Coverage => "coverage",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::AdminReload => "admin_reload",
            Route::AdminShutdown => "admin_shutdown",
            Route::DebugRequests => "debug_requests",
            Route::DebugSlow => "debug_slow",
            Route::DebugEvents => "debug_events",
            Route::MethodNotAllowed(_) | Route::NotFound => "other",
        }
    }
}

/// Maps a parsed request to a [`Route`].
pub fn route(req: &Request) -> Route {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let get = req.method == "GET";
    let post = req.method == "POST";
    match segments.as_slice() {
        ["healthz"] if get => Route::Healthz,
        ["metrics"] if get => Route::Metrics,
        ["v1", "coverage"] if get => Route::Coverage,
        ["v1", "map", asn] if get => Route::Map((*asn).to_string()),
        ["v1", "org", org, "history"] if get => Route::History((*org).to_string()),
        ["v1", "org", org] if get => Route::Org((*org).to_string()),
        ["v1", "evidence", a, b] if get => Route::Evidence((*a).to_string(), (*b).to_string()),
        ["v1", "diff", t1, t2] if get => Route::DiffEpochs((*t1).to_string(), (*t2).to_string()),
        ["v1", "admin", "reload"] if post => Route::AdminReload,
        ["v1", "admin", "shutdown"] if post => Route::AdminShutdown,
        ["v1", "admin", "debug", "requests"] if get => Route::DebugRequests,
        ["v1", "admin", "debug", "slow"] if get => Route::DebugSlow,
        ["v1", "admin", "debug", "events"] if get => Route::DebugEvents,
        ["healthz"]
        | ["metrics"]
        | ["v1", "coverage"]
        | ["v1", "map", _]
        | ["v1", "org", _, "history"]
        | ["v1", "org", _]
        | ["v1", "evidence", _, _]
        | ["v1", "diff", _, _]
        | ["v1", "admin", "debug", "requests"]
        | ["v1", "admin", "debug", "slow"]
        | ["v1", "admin", "debug", "events"] => Route::MethodNotAllowed("GET"),
        ["v1", "admin", "reload"] | ["v1", "admin", "shutdown"] => Route::MethodNotAllowed("POST"),
        _ => Route::NotFound,
    }
}

/// The canonical machine-readable spec for a feature subset, accepted
/// back by `?features=` — `"none"`, or a comma list in fixed order.
pub fn feature_spec(features: FeatureSet) -> String {
    let mut parts = Vec::new();
    if features.oid_p {
        parts.push("oid_p");
    }
    if features.na {
        parts.push("na");
    }
    if features.rr {
        parts.push("rr");
    }
    if features.favicons {
        parts.push("favicons");
    }
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join(",")
    }
}

/// The `?features=` parameter, defaulting to all features on.
fn parse_features(req: &Request) -> Result<FeatureSet, Response> {
    match req.query.get("features") {
        None => Ok(FeatureSet::ALL),
        Some(spec) => FeatureSet::parse(spec).map_err(|e| Response::error(400, &e)),
    }
}

fn parse_asn(raw: &str) -> Result<Asn, Response> {
    raw.parse::<Asn>().map_err(|_| {
        Response::error(
            400,
            &format!("invalid ASN {raw:?} (expected AS<digits> or <digits>)"),
        )
    })
}

fn known_asn(world: &ServingWorld, asn: Asn) -> Result<(), Response> {
    if world.borges.contains(asn) {
        Ok(())
    } else {
        Err(Response::error(
            404,
            &format!("{asn} is not in the universe"),
        ))
    }
}

/// A sorted JSON array of `"AS<n>"` strings.
fn asn_list(asns: &[Asn]) -> String {
    let mut sorted: Vec<Asn> = asns.to_vec();
    sorted.sort_unstable();
    let items: Vec<String> = sorted.iter().map(|a| json_string(&a.to_string())).collect();
    format!("[{}]", items.join(","))
}

/// Handles the read-only routes against one consistent world, noting
/// per-request facts (LRU outcome) into `obs` for the access record.
/// Admin routes mutate server state and are handled by the server
/// itself, so they answer 500 here — reaching this arm is a routing
/// bug.
pub fn respond(
    route: &Route,
    req: &Request,
    ctx: &ServeContext<'_>,
    obs: &mut RequestObservation,
) -> Response {
    let world = ctx.world;
    let metrics = ctx.metrics;
    match route {
        Route::Healthz => {
            // The accept ledger rides along so liveness probes see
            // saturation without scraping /metrics. All three counters
            // are written at accept/dequeue time — before any handler
            // runs — so an identical request sequence reads identical
            // values at any worker count.
            // The timeline field appears only when one is mounted, so
            // timeline-less deployments keep their pinned bytes.
            let timeline = match ctx.timeline {
                None => String::new(),
                Some(state) => format!(
                    ",\"timeline\":{{\"links\":{},\"tip\":{}}}",
                    state.backend().link_count(),
                    match state.backend().tip_epoch() {
                        Some(epoch) => epoch.to_string(),
                        None => "null".to_string(),
                    }
                ),
            };
            Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"epoch\":{},\"asns\":{},\"world_digest\":\"{}\",\"store_schema\":{},\"workers\":{},\"accepted\":{},\"served\":{},\"shed\":{}{}}}",
                    world.epoch,
                    world.borges.universe_len(),
                    world.digest,
                    world.store_schema,
                    ctx.workers,
                    metrics.counter_value("borges_serve_accepted_total"),
                    metrics.counter_value("borges_serve_served_total"),
                    metrics.counter_value("borges_serve_shed_total"),
                    timeline,
                ),
            )
        }
        Route::Metrics => Response::text(200, metrics.snapshot().to_prometheus()),
        Route::DebugRequests => {
            let records = ctx.recorder.requests();
            let items: Vec<String> = records.iter().map(|r| r.to_json()).collect();
            Response::json(
                200,
                format!(
                    "{{\"total\":{},\"capacity\":{},\"requests\":[{}]}}",
                    ctx.recorder.requests_total(),
                    ctx.recorder.capacity(),
                    items.join(",")
                ),
            )
        }
        Route::DebugSlow => {
            let threshold = match req.query.get("threshold_ms") {
                None => ctx.slow_ms.unwrap_or(1_000),
                Some(raw) => match raw.parse::<u64>() {
                    Ok(ms) => ms,
                    Err(_) => {
                        return Response::error(
                            400,
                            &format!("invalid threshold_ms {raw:?} (expected milliseconds)"),
                        )
                    }
                },
            };
            let slow: Vec<String> = ctx
                .recorder
                .requests()
                .iter()
                .filter(|r| r.duration_ms >= threshold)
                .map(|r| r.to_json())
                .collect();
            Response::json(
                200,
                format!(
                    "{{\"threshold_ms\":{},\"total\":{},\"requests\":[{}]}}",
                    threshold,
                    slow.len(),
                    slow.join(",")
                ),
            )
        }
        Route::DebugEvents => {
            let events = ctx.recorder.events();
            let items: Vec<String> = events.iter().map(|e| e.to_json()).collect();
            Response::json(
                200,
                format!(
                    "{{\"total\":{},\"capacity\":{},\"events\":[{}]}}",
                    ctx.recorder.events_total(),
                    ctx.recorder.capacity(),
                    items.join(",")
                ),
            )
        }
        Route::Coverage => {
            let cov = world.borges.coverage();
            let row = |c: FeatureCoverage| {
                format!(
                    "{{\"attempted\":{},\"succeeded\":{},\"abandoned\":{}}}",
                    c.attempted, c.succeeded, c.abandoned
                )
            };
            Response::json(
                200,
                format!(
                    "{{\"epoch\":{},\"crawl\":{},\"notes_aka\":{},\"favicon_groups\":{},\"accounted\":{},\"complete\":{}}}",
                    world.epoch,
                    row(cov.crawl),
                    row(cov.notes_aka),
                    row(cov.favicon_groups),
                    cov.accounted(),
                    cov.complete()
                ),
            )
        }
        Route::Map(raw) => handle_map(raw, req, world, metrics, obs),
        Route::Org(raw) => handle_org(raw, req, world, metrics, obs),
        Route::Evidence(raw_a, raw_b) => handle_evidence(raw_a, raw_b, world, metrics, obs),
        Route::History(raw) => handle_history(raw, ctx),
        Route::DiffEpochs(raw_t1, raw_t2) => handle_diff(raw_t1, raw_t2, ctx),
        Route::AdminReload | Route::AdminShutdown => {
            Response::error(500, "admin route reached read-only handler")
        }
        Route::MethodNotAllowed(allow) => {
            let mut response = Response::error(405, "method not allowed");
            response.allow = Some(allow);
            response
        }
        Route::NotFound => Response::error(404, "no such route"),
    }
}

/// The world's mapping, noting the cache outcome into the observation.
fn observed_mapping(
    world: &ServingWorld,
    features: FeatureSet,
    metrics: &MetricsRegistry,
    obs: &mut RequestObservation,
) -> std::sync::Arc<borges_core::AsOrgMapping> {
    let (mapping, hit) = world.mapping_observed(features, metrics);
    obs.lru = if hit {
        LruOutcome::Hit
    } else {
        LruOutcome::Miss
    };
    mapping
}

fn handle_map(
    raw: &str,
    req: &Request,
    world: &ServingWorld,
    metrics: &MetricsRegistry,
    obs: &mut RequestObservation,
) -> Response {
    let asn = match parse_asn(raw) {
        Ok(asn) => asn,
        Err(resp) => return resp,
    };
    let features = match parse_features(req) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    if let Err(resp) = known_asn(world, asn) {
        return resp;
    }
    let mapping = observed_mapping(world, features, metrics, obs);
    // `siblings_of` returns the full (sorted) cluster roster, the
    // queried ASN included; the response's `siblings` field excludes it.
    let roster = mapping.siblings_of(asn);
    let org = org_name(asn, roster);
    let siblings: Vec<Asn> = roster.iter().copied().filter(|&m| m != asn).collect();
    Response::json(
        200,
        format!(
            "{{\"asn\":{},\"features\":{},\"epoch\":{},\"org\":{},\"org_size\":{},\"siblings\":{}}}",
            json_string(&asn.to_string()),
            json_string(&feature_spec(features)),
            world.epoch,
            json_string(&org.to_string()),
            roster.len().max(1),
            asn_list(&siblings)
        ),
    )
}

fn handle_org(
    raw: &str,
    req: &Request,
    world: &ServingWorld,
    metrics: &MetricsRegistry,
    obs: &mut RequestObservation,
) -> Response {
    let asn = match parse_asn(raw) {
        Ok(asn) => asn,
        Err(resp) => return resp,
    };
    let features = match parse_features(req) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    if let Err(resp) = known_asn(world, asn) {
        return resp;
    }
    let mapping = observed_mapping(world, features, metrics, obs);
    // The roster is already sorted and includes the queried ASN; an
    // unmapped-but-known ASN is its own singleton organization.
    let members: Vec<Asn> = match mapping.siblings_of(asn) {
        [] => vec![asn],
        roster => roster.to_vec(),
    };
    let org = members[0];
    Response::json(
        200,
        format!(
            "{{\"org\":{},\"features\":{},\"epoch\":{},\"size\":{},\"members\":{}}}",
            json_string(&org.to_string()),
            json_string(&feature_spec(features)),
            world.epoch,
            members.len(),
            asn_list(&members)
        ),
    )
}

fn handle_evidence(
    raw_a: &str,
    raw_b: &str,
    world: &ServingWorld,
    metrics: &MetricsRegistry,
    obs: &mut RequestObservation,
) -> Response {
    let a = match parse_asn(raw_a) {
        Ok(asn) => asn,
        Err(resp) => return resp,
    };
    let b = match parse_asn(raw_b) {
        Ok(asn) => asn,
        Err(resp) => return resp,
    };
    for asn in [a, b] {
        if let Err(resp) = known_asn(world, asn) {
            return resp;
        }
    }
    let features = world.borges.evidence(a, b);
    let labels: Vec<String> = features.iter().map(|f| json_string(f.label())).collect();
    let full = observed_mapping(world, FeatureSet::ALL, metrics, obs);
    Response::json(
        200,
        format!(
            "{{\"a\":{},\"b\":{},\"epoch\":{},\"features\":[{}],\"same_org_full\":{}}}",
            json_string(&a.to_string()),
            json_string(&b.to_string()),
            world.epoch,
            labels.join(","),
            full.same_org(a, b)
        ),
    )
}

fn handle_history(raw: &str, ctx: &ServeContext<'_>) -> Response {
    let Some(state) = ctx.timeline else {
        return Response::error(501, "no timeline configured");
    };
    let asn = match parse_asn(raw) {
        Ok(asn) => asn,
        Err(resp) => return resp,
    };
    match state.backend().history_json(asn) {
        Ok(body) => Response::json(200, body),
        Err(err) => err.to_response(),
    }
}

fn handle_diff(raw_t1: &str, raw_t2: &str, ctx: &ServeContext<'_>) -> Response {
    let Some(state) = ctx.timeline else {
        return Response::error(501, "no timeline configured");
    };
    let parse_epoch = |raw: &str| {
        raw.parse::<u64>().map_err(|_| {
            Response::error(
                400,
                &format!("invalid epoch {raw:?} (expected a non-negative integer)"),
            )
        })
    };
    let t1 = match parse_epoch(raw_t1) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let t2 = match parse_epoch(raw_t2) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    match state.backend().diff_json(t1, t2) {
        Ok(body) => Response::json(200, body),
        Err(err) => err.to_response(),
    }
}

/// An org is an anonymous cluster; its stable public name is the lowest
/// member ASN.
fn org_name(asn: Asn, siblings: &[Asn]) -> Asn {
    siblings.iter().copied().min().unwrap_or(asn).min(asn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn get(path_and_query: &str) -> Request {
        let (path, query_str) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path_and_query, ""),
        };
        let mut query = BTreeMap::new();
        for pair in query_str.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.insert(k.to_string(), v.to_string());
        }
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn routes_cover_every_endpoint() {
        assert_eq!(route(&get("/healthz")), Route::Healthz);
        assert_eq!(route(&get("/metrics")), Route::Metrics);
        assert_eq!(route(&get("/v1/coverage")), Route::Coverage);
        assert_eq!(route(&get("/v1/map/AS3356")), Route::Map("AS3356".into()));
        assert_eq!(route(&get("/v1/org/3356")), Route::Org("3356".into()));
        assert_eq!(
            route(&get("/v1/evidence/AS1/AS2")),
            Route::Evidence("AS1".into(), "AS2".into())
        );
        assert_eq!(
            route(&get("/v1/org/AS174/history")),
            Route::History("AS174".into())
        );
        assert_eq!(
            route(&get("/v1/diff/0/2")),
            Route::DiffEpochs("0".into(), "2".into())
        );
        assert_eq!(route(&get("/nope")), Route::NotFound);
        assert_eq!(route(&get("/v1/map")), Route::NotFound);
        assert_eq!(route(&get("/v1/map/AS1/extra")), Route::NotFound);
    }

    #[test]
    fn debug_routes_are_get_only() {
        assert_eq!(
            route(&get("/v1/admin/debug/requests")),
            Route::DebugRequests
        );
        assert_eq!(
            route(&get("/v1/admin/debug/slow?threshold_ms=5")),
            Route::DebugSlow
        );
        assert_eq!(route(&get("/v1/admin/debug/events")), Route::DebugEvents);
        assert_eq!(route(&get("/v1/admin/debug/other")), Route::NotFound);
        let mut post = get("/v1/admin/debug/requests");
        post.method = "POST".to_string();
        assert_eq!(route(&post), Route::MethodNotAllowed("GET"));
        assert_eq!(Route::DebugRequests.label(), "debug_requests");
        assert_eq!(Route::DebugSlow.label(), "debug_slow");
        assert_eq!(Route::DebugEvents.label(), "debug_events");
    }

    #[test]
    fn wrong_method_is_distinguished_from_wrong_path() {
        let mut post = get("/healthz");
        post.method = "POST".to_string();
        assert_eq!(route(&post), Route::MethodNotAllowed("GET"));

        let mut reload_get = get("/v1/admin/reload");
        assert_eq!(route(&reload_get), Route::MethodNotAllowed("POST"));
        reload_get.method = "POST".to_string();
        assert_eq!(route(&reload_get), Route::AdminReload);
    }

    #[test]
    fn feature_specs_round_trip_through_parse() {
        for bits in 0..16 {
            let features = FeatureSet::from_bits(bits);
            let spec = feature_spec(features);
            assert_eq!(FeatureSet::parse(&spec).unwrap(), features, "spec {spec:?}");
        }
    }

    #[test]
    fn route_labels_are_stable() {
        assert_eq!(Route::Map("x".into()).label(), "map");
        assert_eq!(Route::Metrics.label(), "metrics");
        assert_eq!(Route::History("x".into()).label(), "org_history");
        assert_eq!(Route::DiffEpochs("0".into(), "1".into()).label(), "diff");
        assert_eq!(Route::MethodNotAllowed("GET").label(), "other");
        assert_eq!(Route::NotFound.label(), "other");
    }
}
