//! Indexed PeeringDB snapshots.
//!
//! A [`PdbSnapshot`] is the frozen input the pipeline consumes — the
//! equivalent of the July 24, 2024 dump the paper uses (§5.1). It validates
//! referential integrity at build time and serializes to/from the
//! PeeringDB API dump shape:
//!
//! ```json
//! { "org": { "data": [ … ] }, "net": { "data": [ … ] } }
//! ```

use crate::schema::{PdbNetwork, PdbOrganization};
use borges_types::{Asn, PdbOrgId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Snapshot construction/parsing failures.
#[derive(Debug)]
pub enum SnapshotError {
    /// Two org records share a primary key.
    DuplicateOrg(PdbOrgId),
    /// Two net records share a primary key.
    DuplicateNet(u64),
    /// Two net records claim the same ASN (PeeringDB enforces uniqueness).
    DuplicateAsn(Asn),
    /// A net references an org that does not exist.
    DanglingOrgRef {
        /// Offending net primary key.
        net: u64,
        /// Missing org key.
        org: PdbOrgId,
    },
    /// JSON that does not match the dump shape.
    Json(serde_json::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::DuplicateOrg(id) => write!(f, "duplicate org {id}"),
            SnapshotError::DuplicateNet(id) => write!(f, "duplicate net {id}"),
            SnapshotError::DuplicateAsn(asn) => write!(f, "duplicate net for {asn}"),
            SnapshotError::DanglingOrgRef { net, org } => {
                write!(f, "net {net} references unknown {org}")
            }
            SnapshotError::Json(e) => write!(f, "snapshot json: {e}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Json(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Table<T> {
    data: Vec<T>,
}

#[derive(Serialize, Deserialize)]
struct Dump {
    org: Table<PdbOrganization>,
    net: Table<PdbNetwork>,
}

/// Builder accumulating records before validation.
#[derive(Debug, Default)]
pub struct PdbSnapshotBuilder {
    orgs: Vec<PdbOrganization>,
    nets: Vec<PdbNetwork>,
}

impl PdbSnapshotBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an organization.
    pub fn org(mut self, org: PdbOrganization) -> Self {
        self.orgs.push(org);
        self
    }

    /// Adds a network.
    pub fn net(mut self, net: PdbNetwork) -> Self {
        self.nets.push(net);
        self
    }

    /// Adds many records at once.
    pub fn extend(
        mut self,
        orgs: impl IntoIterator<Item = PdbOrganization>,
        nets: impl IntoIterator<Item = PdbNetwork>,
    ) -> Self {
        self.orgs.extend(orgs);
        self.nets.extend(nets);
        self
    }

    /// Validates and freezes the snapshot.
    pub fn build(self) -> Result<PdbSnapshot, SnapshotError> {
        let mut orgs: BTreeMap<PdbOrgId, PdbOrganization> = BTreeMap::new();
        for org in self.orgs {
            if orgs.insert(org.id, org.clone()).is_some() {
                return Err(SnapshotError::DuplicateOrg(org.id));
            }
        }
        let mut nets: BTreeMap<u64, PdbNetwork> = BTreeMap::new();
        let mut by_asn: BTreeMap<Asn, u64> = BTreeMap::new();
        let mut members: BTreeMap<PdbOrgId, Vec<u64>> = BTreeMap::new();
        for net in self.nets {
            if !orgs.contains_key(&net.org_id) {
                return Err(SnapshotError::DanglingOrgRef {
                    net: net.id,
                    org: net.org_id,
                });
            }
            if by_asn.insert(net.asn, net.id).is_some() {
                return Err(SnapshotError::DuplicateAsn(net.asn));
            }
            members.entry(net.org_id).or_default().push(net.id);
            if nets.insert(net.id, net.clone()).is_some() {
                return Err(SnapshotError::DuplicateNet(net.id));
            }
        }
        Ok(PdbSnapshot {
            orgs,
            nets,
            by_asn,
            members,
        })
    }
}

/// A frozen, indexed PeeringDB snapshot.
#[derive(Debug, Clone, Default)]
pub struct PdbSnapshot {
    orgs: BTreeMap<PdbOrgId, PdbOrganization>,
    nets: BTreeMap<u64, PdbNetwork>,
    by_asn: BTreeMap<Asn, u64>,
    members: BTreeMap<PdbOrgId, Vec<u64>>,
}

impl PdbSnapshot {
    /// A builder for a new snapshot.
    pub fn builder() -> PdbSnapshotBuilder {
        PdbSnapshotBuilder::new()
    }

    /// Parses a JSON dump (`{"org": {"data": […]}, "net": {"data": […]}}`).
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let dump: Dump = serde_json::from_str(text)?;
        PdbSnapshotBuilder::new()
            .extend(dump.org.data, dump.net.data)
            .build()
    }

    /// Serializes to the JSON dump shape, deterministically ordered
    /// (orgs by id, nets by id).
    pub fn to_json(&self) -> String {
        let dump = Dump {
            org: Table {
                data: self.orgs.values().cloned().collect(),
            },
            net: Table {
                data: self.nets.values().cloned().collect(),
            },
        };
        serde_json::to_string_pretty(&dump).expect("dump serialization cannot fail")
    }

    /// The organization with primary key `id`.
    pub fn org(&self, id: PdbOrgId) -> Option<&PdbOrganization> {
        self.orgs.get(&id)
    }

    /// The network with net primary key `id`.
    pub fn net(&self, id: u64) -> Option<&PdbNetwork> {
        self.nets.get(&id)
    }

    /// The network registered for `asn`.
    pub fn net_by_asn(&self, asn: Asn) -> Option<&PdbNetwork> {
        self.by_asn.get(&asn).and_then(|id| self.nets.get(id))
    }

    /// The organization owning `asn`, traversing the `net → org` relation.
    pub fn org_of_asn(&self, asn: Asn) -> Option<&PdbOrganization> {
        self.net_by_asn(asn).and_then(|n| self.orgs.get(&n.org_id))
    }

    /// All networks registered under an organization, in net-id order.
    pub fn nets_of(&self, id: PdbOrgId) -> impl Iterator<Item = &PdbNetwork> {
        self.members
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(|nid| self.nets.get(nid))
    }

    /// All networks in net-id order.
    pub fn nets(&self) -> impl Iterator<Item = &PdbNetwork> {
        self.nets.values()
    }

    /// All organizations in id order.
    pub fn orgs(&self) -> impl Iterator<Item = &PdbOrganization> {
        self.orgs.values()
    }

    /// Number of `net` records.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of `org` records.
    pub fn org_count(&self) -> usize {
        self.orgs.len()
    }

    /// Number of distinct organizations that own at least one network.
    pub fn populated_org_count(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org(id: u64, name: &str) -> PdbOrganization {
        PdbOrganization {
            id: PdbOrgId::new(id),
            name: name.to_string(),
            website: String::new(),
            country: "US".to_string(),
        }
    }

    fn net(id: u64, org: u64, asn: u32) -> PdbNetwork {
        PdbNetwork {
            id,
            org_id: PdbOrgId::new(org),
            asn: Asn::new(asn),
            name: format!("net{id}"),
            aka: String::new(),
            notes: String::new(),
            website: String::new(),
        }
    }

    #[test]
    fn builds_and_indexes() {
        let snap = PdbSnapshot::builder()
            .org(org(1, "Lumen"))
            .net(net(100, 1, 3356))
            .net(net(101, 1, 209))
            .build()
            .unwrap();
        assert_eq!(snap.net_count(), 2);
        assert_eq!(snap.org_of_asn(Asn::new(209)).unwrap().name, "Lumen");
        assert_eq!(snap.nets_of(PdbOrgId::new(1)).count(), 2);
    }

    #[test]
    fn rejects_duplicate_asn() {
        let err = PdbSnapshot::builder()
            .org(org(1, "X"))
            .net(net(100, 1, 3356))
            .net(net(101, 1, 3356))
            .build()
            .unwrap_err();
        assert!(matches!(err, SnapshotError::DuplicateAsn(a) if a == Asn::new(3356)));
    }

    #[test]
    fn rejects_dangling_org() {
        let err = PdbSnapshot::builder()
            .net(net(100, 99, 3356))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::DanglingOrgRef { net: 100, .. }
        ));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let err = PdbSnapshot::builder()
            .org(org(1, "A"))
            .org(org(1, "B"))
            .build()
            .unwrap_err();
        assert!(matches!(err, SnapshotError::DuplicateOrg(_)));

        let err = PdbSnapshot::builder()
            .org(org(1, "A"))
            .net(net(100, 1, 1))
            .net(net(100, 1, 2))
            .build()
            .unwrap_err();
        assert!(matches!(err, SnapshotError::DuplicateNet(100)));
    }

    #[test]
    fn json_roundtrip() {
        let snap = PdbSnapshot::builder()
            .org(org(1, "Lumen"))
            .org(org(2, "Cogent"))
            .net(net(100, 1, 3356))
            .net(net(101, 2, 174))
            .build()
            .unwrap();
        let text = snap.to_json();
        let back = PdbSnapshot::from_json(&text).unwrap();
        assert_eq!(back.net_count(), 2);
        assert_eq!(back.org_count(), 2);
        assert_eq!(back.to_json(), text, "serialization must be stable");
    }

    #[test]
    fn json_dump_shape_is_peeringdb_like() {
        let snap = PdbSnapshot::builder().org(org(1, "X")).build().unwrap();
        let v: serde_json::Value = serde_json::from_str(&snap.to_json()).unwrap();
        assert!(v["org"]["data"].is_array());
        assert!(v["net"]["data"].is_array());
    }

    #[test]
    fn invalid_json_is_reported() {
        assert!(matches!(
            PdbSnapshot::from_json("{").unwrap_err(),
            SnapshotError::Json(_)
        ));
    }

    #[test]
    fn empty_snapshot_queries() {
        let snap = PdbSnapshot::builder().build().unwrap();
        assert!(snap.net_by_asn(Asn::new(1)).is_none());
        assert_eq!(snap.populated_org_count(), 0);
    }

    #[test]
    fn org_without_nets_is_not_populated() {
        let snap = PdbSnapshot::builder()
            .org(org(1, "A"))
            .org(org(2, "ghost"))
            .net(net(100, 1, 1))
            .build()
            .unwrap();
        assert_eq!(snap.org_count(), 2);
        assert_eq!(snap.populated_org_count(), 1);
    }
}
