//! # borges-peeringdb
//!
//! The PeeringDB substrate of Borges.
//!
//! PeeringDB mirrors the WHOIS entity-relation structure — `org` objects
//! linked one-to-many to `net` objects — but is *operator-driven*: records
//! are maintained by the network engineers themselves, which makes the
//! PeeringDB organization key (`OID_P`) reflect operational reality where
//! WHOIS reflects legal allocation boundaries (§4.1 of the paper). PeeringDB
//! is also where the free-text `notes`/`aka` fields (§4.2) and the
//! self-reported `website` field (§4.3) live.
//!
//! This crate provides:
//!
//! * [`schema`] — `org`/`net` record types matching the PeeringDB API dump
//!   field names;
//! * [`snapshot`] — an indexed, immutable snapshot with a JSON round-trip in
//!   the familiar `{"org": {"data": [...]}, "net": {"data": [...]}}` dump
//!   shape, so genuine PeeringDB dumps can be adapted in.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod schema;
pub mod snapshot;

pub use schema::{PdbNetwork, PdbOrganization};
pub use snapshot::{PdbSnapshot, PdbSnapshotBuilder, SnapshotError};
