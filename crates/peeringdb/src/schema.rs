//! PeeringDB record types.
//!
//! Field names follow the PeeringDB API dump so that serde can read adapted
//! real dumps. Only the fields Borges consumes are modeled; PeeringDB's
//! many peering-operational fields (`info_prefixes4`, `policy_general`, …)
//! are irrelevant to organization mapping and are skipped on input.

use borges_types::{Asn, PdbOrgId};
use serde::{Deserialize, Serialize};

/// A PeeringDB `org` object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdbOrganization {
    /// Primary key — the `OID_P` organization key of §4.1.
    pub id: PdbOrgId,
    /// Organization display name.
    pub name: String,
    /// Organization website (raw operator input; may be empty or junk).
    #[serde(default)]
    pub website: String,
    /// ISO-3166 alpha-2 country, or empty when unset.
    #[serde(default)]
    pub country: String,
}

/// A PeeringDB `net` object.
///
/// The three free-form fields — [`aka`](Self::aka), [`notes`](Self::notes)
/// and [`website`](Self::website) — are the paper's raw material: `aka` and
/// `notes` feed the LLM information-extraction stage (§4.2), `website`
/// feeds the web-inference stage (§4.3). They are kept as raw strings;
/// interpretation belongs to the pipeline, not the substrate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdbNetwork {
    /// Primary key of the `net` object (not the ASN).
    pub id: u64,
    /// Foreign key to the owning [`PdbOrganization`].
    pub org_id: PdbOrgId,
    /// The network's ASN.
    pub asn: Asn,
    /// Network display name.
    pub name: String,
    /// "Also known as" — free text, frequently lists sibling brands/ASNs.
    #[serde(default)]
    pub aka: String,
    /// Free-text notes — peering policy, upstreams, sibling reports, … in
    /// any language.
    #[serde(default)]
    pub notes: String,
    /// Self-reported website (raw operator input).
    #[serde(default)]
    pub website: String,
}

impl PdbNetwork {
    /// `true` when either free-text field is non-empty after trimming —
    /// the first funnel stage of §5.2.
    pub fn has_text(&self) -> bool {
        !self.aka.trim().is_empty() || !self.notes.trim().is_empty()
    }

    /// `true` when either free-text field contains an ASCII digit — the
    /// paper's *input dropout filter* (§4.2): fields without numbers cannot
    /// carry ASN information and are skipped before prompting the LLM.
    pub fn has_numeric_text(&self) -> bool {
        contains_digit(&self.aka) || contains_digit(&self.notes)
    }

    /// `true` when the `aka` field contains a digit.
    pub fn aka_has_digit(&self) -> bool {
        contains_digit(&self.aka)
    }

    /// `true` when the `notes` field contains a digit.
    pub fn notes_has_digit(&self) -> bool {
        contains_digit(&self.notes)
    }

    /// `true` when the operator filled in a website.
    pub fn has_website(&self) -> bool {
        !self.website.trim().is_empty()
    }
}

fn contains_digit(s: &str) -> bool {
    s.bytes().any(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> PdbNetwork {
        PdbNetwork {
            id: 1,
            org_id: PdbOrgId::new(10),
            asn: Asn::new(3356),
            name: "Lumen".to_string(),
            aka: String::new(),
            notes: String::new(),
            website: String::new(),
        }
    }

    #[test]
    fn text_detection() {
        let mut n = net();
        assert!(!n.has_text());
        n.aka = "  ".to_string();
        assert!(!n.has_text());
        n.notes = "Level 3".to_string();
        assert!(n.has_text());
    }

    #[test]
    fn numeric_filter_matches_paper_semantics() {
        let mut n = net();
        n.notes = "we are also known as Level Three".to_string();
        assert!(!n.has_numeric_text());
        n.notes = "sibling of AS209".to_string();
        assert!(n.has_numeric_text());
        n.notes.clear();
        n.aka = "Level 3".to_string();
        assert!(n.has_numeric_text());
    }

    #[test]
    fn website_detection() {
        let mut n = net();
        assert!(!n.has_website());
        n.website = " \t".to_string();
        assert!(!n.has_website());
        n.website = "www.lumen.com".to_string();
        assert!(n.has_website());
    }

    #[test]
    fn serde_defaults_optional_fields() {
        let j = r#"{"id":5,"org_id":2,"asn":209,"name":"CenturyLink"}"#;
        let n: PdbNetwork = serde_json::from_str(j).unwrap();
        assert_eq!(n.asn, Asn::new(209));
        assert!(n.aka.is_empty() && n.notes.is_empty() && n.website.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let mut n = net();
        n.notes = "Deutsche Telekom siblings: AS3320".to_string();
        let j = serde_json::to_string(&n).unwrap();
        let back: PdbNetwork = serde_json::from_str(&j).unwrap();
        assert_eq!(back, n);
    }
}
