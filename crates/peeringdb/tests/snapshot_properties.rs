//! Property tests: arbitrary PeeringDB snapshots round-trip through the
//! JSON dump format, free text included.

use borges_peeringdb::{PdbNetwork, PdbOrganization, PdbSnapshot};
use borges_types::{Asn, PdbOrgId};
use proptest::prelude::*;

fn snapshot_strategy() -> impl Strategy<Value = PdbSnapshot> {
    // The map key is the org id, guaranteeing uniqueness.
    let orgs =
        prop::collection::btree_map(1u64..50, "[A-Za-z0-9 .&()-]{1,30}", 1..12).prop_map(|m| {
            m.into_iter()
                .map(|(id, name)| PdbOrganization {
                    id: PdbOrgId::new(id),
                    name,
                    website: String::new(),
                    country: "US".to_string(),
                })
                .collect::<Vec<_>>()
        });
    orgs.prop_flat_map(|orgs| {
        let n_orgs = orgs.len();
        let net = (
            1u32..100_000,
            0usize..n_orgs,
            // Free text: any printable unicode-ish content, including
            // newlines, quotes and multilingual characters.
            prop::string::string_regex("[\\PC]{0,80}").unwrap(),
            prop::string::string_regex("[\\PC]{0,30}").unwrap(),
        );
        (
            Just(orgs),
            prop::collection::btree_map(1u32..100_000, (0usize..n_orgs, net), 0..25),
        )
    })
    .prop_map(|(orgs, nets)| {
        let org_ids: Vec<PdbOrgId> = orgs.iter().map(|o| o.id).collect();
        // Fix org ids in the generated orgs to be unique already (btree map
        // keyed them); build nets referencing existing orgs.
        let nets: Vec<PdbNetwork> = nets
            .into_iter()
            .enumerate()
            .map(|(i, (asn, (org_idx, (_, _, notes, aka))))| PdbNetwork {
                id: i as u64 + 1,
                org_id: org_ids[org_idx % org_ids.len()],
                asn: Asn::new(asn),
                name: format!("net-{asn}"),
                aka,
                notes,
                website: String::new(),
            })
            .collect();
        PdbSnapshot::builder()
            .extend(orgs, nets)
            .build()
            .expect("generated snapshots are consistent")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_roundtrip_is_lossless(snapshot in snapshot_strategy()) {
        let json = snapshot.to_json();
        let back = PdbSnapshot::from_json(&json).expect("own output parses");
        prop_assert_eq!(back.net_count(), snapshot.net_count());
        prop_assert_eq!(back.org_count(), snapshot.org_count());
        for net in snapshot.nets() {
            let after = back.net_by_asn(net.asn).expect("net survives");
            prop_assert_eq!(after, net);
        }
        prop_assert_eq!(back.to_json(), json);
    }

    #[test]
    fn numeric_text_detection_matches_definition(snapshot in snapshot_strategy()) {
        for net in snapshot.nets() {
            let has_digit = net.notes.bytes().any(|b| b.is_ascii_digit())
                || net.aka.bytes().any(|b| b.is_ascii_digit());
            prop_assert_eq!(net.has_numeric_text(), has_digit);
        }
    }
}
