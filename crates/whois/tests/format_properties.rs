//! Property tests: arbitrary registries must round-trip through the
//! CAIDA AS2Org flat-file format losslessly.

use borges_types::{Asn, OrgName, WhoisOrgId};
use borges_whois::{as2org_format, AutNum, Rir, WhoisOrg, WhoisRegistry};
use proptest::prelude::*;

fn rir_strategy() -> impl Strategy<Value = Rir> {
    prop::sample::select(Rir::ALL.to_vec())
}

/// Org names must survive the pipe-separated format, so the generator
/// avoids `|` and newlines — exactly the constraint the real file format
/// imposes on registries.
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z0-9 .,&()-]{1,40}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty after trim", |s| !s.is_empty())
}

fn registry_strategy() -> impl Strategy<Value = WhoisRegistry> {
    (
        prop::collection::btree_map(1u32..200, (name_strategy(), rir_strategy()), 1..20),
        prop::collection::btree_map(1u32..100_000, 0usize..20, 1..60),
    )
        .prop_map(|(org_specs, auts)| {
            let orgs: Vec<WhoisOrg> = org_specs
                .iter()
                .map(|(id, (name, rir))| WhoisOrg {
                    id: WhoisOrgId::new(format!("ORG-{id}")),
                    name: OrgName::new(name),
                    country: "US".parse().unwrap(),
                    source: *rir,
                    changed: 20240000 + id % 1000,
                })
                .collect();
            let org_ids: Vec<WhoisOrgId> = orgs.iter().map(|o| o.id.clone()).collect();
            let auts: Vec<AutNum> = auts
                .into_iter()
                .map(|(asn, org_idx)| AutNum {
                    asn: Asn::new(asn),
                    name: format!("NET{asn}"),
                    org: org_ids[org_idx % org_ids.len()].clone(),
                    source: Rir::Arin,
                    changed: 0,
                })
                .collect();
            WhoisRegistry::builder()
                .extend(orgs, auts)
                .build()
                .expect("generated registries are consistent")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_preserves_the_relation(registry in registry_strategy()) {
        let text = as2org_format::serialize(&registry);
        let parsed = as2org_format::parse(&text).expect("own output parses");
        prop_assert_eq!(parsed.asn_count(), registry.asn_count());
        prop_assert_eq!(parsed.org_count(), registry.org_count());
        for asn in registry.all_asns() {
            let before = registry.org_of(asn).unwrap();
            let after = parsed.org_of(asn).unwrap();
            prop_assert_eq!(&before.id, &after.id);
            prop_assert_eq!(&before.name, &after.name);
            prop_assert_eq!(before.source, after.source);
        }
    }

    #[test]
    fn serialization_is_a_fixed_point(registry in registry_strategy()) {
        let once = as2org_format::serialize(&registry);
        let twice = as2org_format::serialize(&as2org_format::parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parser_never_panics_on_mutations(
        registry in registry_strategy(),
        cut in 0usize..500,
    ) {
        // Truncating a valid file at an arbitrary byte must produce
        // either a clean parse or a clean error — never a panic.
        let text = as2org_format::serialize(&registry);
        let cut = cut.min(text.len());
        let mut truncated = text[..cut].to_string();
        while !truncated.is_char_boundary(truncated.len()) {
            truncated.pop();
        }
        let _ = as2org_format::parse(&truncated);
    }
}
