//! # borges-whois
//!
//! The WHOIS/RIR substrate of Borges.
//!
//! WHOIS delegation records are the *compulsory* organization source: every
//! allocated ASN has exactly one WHOIS organization (`OID_W`), which is why
//! the Organization Factor metric (§5.4 of the paper) uses the WHOIS ASN
//! universe as its vertex set, and why CAIDA's long-standing AS2Org dataset
//! is built from it.
//!
//! This crate provides:
//!
//! * [`schema`] — RIR organization and aut-num record types;
//! * [`registry`] — an in-memory, indexed registry with referential
//!   integrity checks (the substrate the rest of the pipeline queries);
//! * [`as2org_format`] — a parser/serializer for CAIDA's published AS2Org
//!   flat-file format, so genuine CAIDA snapshots can be loaded in place of
//!   the synthetic ones;
//! * [`delegated`] — the RIR delegated-extended statistics format (ASN
//!   records), for tooling that joins on allocation country/date;
//! * [`rpsl`] — the raw WHOIS/RPSL object format (`aut-num`,
//!   `organisation`), the registries' native representation that AS2Org
//!   is derived from.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod as2org_format;
pub mod delegated;
pub mod registry;
pub mod rpsl;
pub mod schema;

pub use registry::{RegistryError, WhoisRegistry, WhoisRegistryBuilder};
pub use schema::{AutNum, Rir, WhoisOrg};
