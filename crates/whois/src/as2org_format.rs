//! CAIDA AS2Org flat-file format.
//!
//! CAIDA publishes its AS2Org inferences as a pipe-separated text file with
//! two record kinds, each introduced by a `# format:` header:
//!
//! ```text
//! # format:org_id|changed|org_name|country|source
//! LPL-141-ARIN|20240101|Level 3 Parent, LLC|US|ARIN
//! # format:aut|changed|aut_name|org_id|opaque_id|source
//! 3356|20240101|LEVEL3|LPL-141-ARIN||ARIN
//! ```
//!
//! This module reads and writes that format losslessly (modulo the
//! `opaque_id` column, which CAIDA leaves blank in public files and which we
//! preserve as-is but do not interpret). Lines may arrive in any order;
//! the most recent `# format:` header governs subsequent lines, exactly as
//! in the published files.

use crate::registry::{RegistryError, WhoisRegistry};
use crate::schema::{AutNum, Rir, WhoisOrg};
use borges_types::{Asn, CountryCode, OrgName, WhoisOrgId};
use std::error::Error;
use std::fmt;

/// A failure while reading an AS2Org file.
#[derive(Debug)]
pub enum As2orgError {
    /// A data line appeared before any `# format:` header.
    MissingHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A line has the wrong number of fields for its record kind.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
        /// Parse failure detail.
        source: borges_types::ParseError,
    },
    /// An unrecognized `# format:` header.
    UnknownFormat {
        /// 1-based line number.
        line: usize,
    },
    /// The parsed records violate referential integrity.
    Integrity(RegistryError),
}

impl fmt::Display for As2orgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            As2orgError::MissingHeader { line } => {
                write!(f, "line {line}: data before any # format: header")
            }
            As2orgError::FieldCount {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} fields, expected {expected}"),
            As2orgError::BadField {
                line,
                field,
                source,
            } => {
                write!(f, "line {line}: bad {field}: {source}")
            }
            As2orgError::UnknownFormat { line } => {
                write!(f, "line {line}: unknown # format: header")
            }
            As2orgError::Integrity(e) => write!(f, "integrity: {e}"),
        }
    }
}

impl Error for As2orgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            As2orgError::BadField { source, .. } => Some(source),
            As2orgError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegistryError> for As2orgError {
    fn from(e: RegistryError) -> Self {
        As2orgError::Integrity(e)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    None,
    Org,
    Aut,
}

/// The `# format:` header introducing organization records (public so
/// streaming writers can emit the sections themselves).
pub const ORG_HEADER: &str = "# format:org_id|changed|org_name|country|source";
/// The `# format:` header introducing aut-num records.
pub const AUT_HEADER: &str = "# format:aut|changed|aut_name|org_id|opaque_id|source";

/// Parses the CAIDA AS2Org flat-file format into a validated
/// [`WhoisRegistry`].
///
/// Aut-num records referencing organizations that never appear get a
/// synthesized placeholder organization (CAIDA files are occasionally
/// internally inconsistent; the paper's pipeline tolerates this the same
/// way).
pub fn parse(text: &str) -> Result<WhoisRegistry, As2orgError> {
    let mut section = Section::None;
    let mut orgs: Vec<WhoisOrg> = Vec::new();
    let mut auts: Vec<AutNum> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if line.starts_with("# format:org_id|") {
                section = Section::Org;
            } else if line.starts_with("# format:aut|") {
                section = Section::Aut;
            } else if line.starts_with("# format:") {
                return Err(As2orgError::UnknownFormat { line: line_no });
            }
            // other comments ignored
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        match section {
            Section::None => return Err(As2orgError::MissingHeader { line: line_no }),
            Section::Org => {
                if fields.len() != 5 {
                    return Err(As2orgError::FieldCount {
                        line: line_no,
                        found: fields.len(),
                        expected: 5,
                    });
                }
                let country: CountryCode =
                    fields[3].parse().map_err(|source| As2orgError::BadField {
                        line: line_no,
                        field: "country",
                        source,
                    })?;
                let source: Rir = fields[4].parse().map_err(|source| As2orgError::BadField {
                    line: line_no,
                    field: "source",
                    source,
                })?;
                orgs.push(WhoisOrg {
                    id: WhoisOrgId::new(fields[0]),
                    changed: fields[1].parse().unwrap_or(0),
                    name: OrgName::new(fields[2]),
                    country,
                    source,
                });
            }
            Section::Aut => {
                if fields.len() != 6 {
                    return Err(As2orgError::FieldCount {
                        line: line_no,
                        found: fields.len(),
                        expected: 6,
                    });
                }
                let asn: Asn = fields[0].parse().map_err(|source| As2orgError::BadField {
                    line: line_no,
                    field: "aut",
                    source,
                })?;
                let source: Rir = fields[5].parse().map_err(|source| As2orgError::BadField {
                    line: line_no,
                    field: "source",
                    source,
                })?;
                auts.push(AutNum {
                    asn,
                    changed: fields[1].parse().unwrap_or(0),
                    name: fields[2].to_string(),
                    org: WhoisOrgId::new(fields[3]),
                    source,
                });
            }
        }
    }

    // Synthesize placeholder orgs for dangling references (real CAIDA files
    // contain a handful).
    let known: std::collections::BTreeSet<&WhoisOrgId> = orgs.iter().map(|o| &o.id).collect();
    let mut placeholders: Vec<WhoisOrg> = Vec::new();
    let mut seen_placeholder: std::collections::BTreeSet<WhoisOrgId> =
        std::collections::BTreeSet::new();
    for aut in &auts {
        if !known.contains(&aut.org) && seen_placeholder.insert(aut.org.clone()) {
            placeholders.push(WhoisOrg {
                id: aut.org.clone(),
                name: OrgName::new(aut.org.as_str()),
                country: "ZZ".parse().expect("ZZ is two letters"),
                source: aut.source,
                changed: 0,
            });
        }
    }
    orgs.extend(placeholders);

    Ok(WhoisRegistry::builder().extend(orgs, auts).build()?)
}

/// Serializes a registry back into the CAIDA flat-file format.
///
/// The output is deterministic: organizations sorted by handle, aut-nums by
/// ASN, each section preceded by its `# format:` header.
pub fn serialize(registry: &WhoisRegistry) -> String {
    let mut out = String::new();
    out.push_str(ORG_HEADER);
    out.push('\n');
    for org in registry.orgs() {
        out.push_str(&format!(
            "{}|{}|{}|{}|{}\n",
            org.id, org.changed, org.name, org.country, org.source
        ));
    }
    out.push_str(AUT_HEADER);
    out.push('\n');
    for aut in registry.aut_nums() {
        out.push_str(&format!(
            "{}|{}|{}|{}||{}\n",
            aut.asn.value(),
            aut.changed,
            aut.name,
            aut.org,
            aut.source
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# name: as2org snapshot
# format:org_id|changed|org_name|country|source
LPL-141-ARIN|20240101|Level 3 Parent, LLC|US|ARIN
CL-38-ARIN|20231215|CenturyLink Communications|US|ARIN
# format:aut|changed|aut_name|org_id|opaque_id|source
3356|20240101|LEVEL3|LPL-141-ARIN||ARIN
209|20231215|CENTURYLINK-US|CL-38-ARIN||ARIN
3549|20240101|GBLX|LPL-141-ARIN||ARIN
";

    #[test]
    fn parses_sample() {
        let reg = parse(SAMPLE).unwrap();
        assert_eq!(reg.asn_count(), 3);
        assert_eq!(reg.org_count(), 2);
        assert_eq!(
            reg.org_of(Asn::new(3356)).unwrap().id,
            WhoisOrgId::new("LPL-141-ARIN")
        );
        assert_eq!(
            reg.org_of(Asn::new(209)).unwrap().name.as_str(),
            "CenturyLink Communications"
        );
    }

    #[test]
    fn roundtrips() {
        let reg = parse(SAMPLE).unwrap();
        let text = serialize(&reg);
        let reg2 = parse(&text).unwrap();
        assert_eq!(reg.asn_count(), reg2.asn_count());
        assert_eq!(reg.org_count(), reg2.org_count());
        for asn in reg.all_asns() {
            assert_eq!(reg.org_of(asn).unwrap().id, reg2.org_of(asn).unwrap().id);
        }
        // Serialization is deterministic and stable.
        assert_eq!(text, serialize(&reg2));
    }

    #[test]
    fn data_before_header_is_an_error() {
        let err = parse("3356|20240101|LEVEL3|X||ARIN\n").unwrap_err();
        assert!(matches!(err, As2orgError::MissingHeader { line: 1 }));
    }

    #[test]
    fn wrong_field_count_is_reported_with_line() {
        let text = format!("{ORG_HEADER}\nonly|three|fields\n");
        match parse(&text).unwrap_err() {
            As2orgError::FieldCount {
                line,
                found,
                expected,
            } => {
                assert_eq!((line, found, expected), (2, 3, 5));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn dangling_org_gets_placeholder() {
        let text = format!("{AUT_HEADER}\n64496|0|TESTNET|GHOST-ORG||RIPE\n");
        let reg = parse(&text).unwrap();
        let org = reg.org_of(Asn::new(64496)).unwrap();
        assert_eq!(org.id, WhoisOrgId::new("GHOST-ORG"));
        assert_eq!(org.country.as_str(), "ZZ");
    }

    #[test]
    fn bad_asn_field_is_an_error() {
        let text = format!("{AUT_HEADER}\nnot-an-asn|0|X|ORG||ARIN\n");
        assert!(matches!(
            parse(&text).unwrap_err(),
            As2orgError::BadField { field: "aut", .. }
        ));
    }

    #[test]
    fn unknown_format_header_is_an_error() {
        assert!(matches!(
            parse("# format:something|else\n").unwrap_err(),
            As2orgError::UnknownFormat { line: 1 }
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text =
            format!("# program start\n\n{ORG_HEADER}\n# interior comment\nX-RIPE|0|X|DE|RIPE\n\n");
        let reg = parse(&text).unwrap();
        assert_eq!(reg.org_count(), 1);
    }

    #[test]
    fn crlf_line_endings_are_tolerated() {
        let text = format!("{ORG_HEADER}\r\nX-RIPE|0|X|DE|RIPE\r\n");
        let reg = parse(&text).unwrap();
        assert_eq!(reg.org_count(), 1);
    }

    #[test]
    fn sections_may_interleave() {
        let text = format!(
            "{ORG_HEADER}\nA-ARIN|0|A|US|ARIN\n{AUT_HEADER}\n1|0|N1|A-ARIN||ARIN\n{ORG_HEADER}\nB-ARIN|0|B|US|ARIN\n{AUT_HEADER}\n2|0|N2|B-ARIN||ARIN\n"
        );
        let reg = parse(&text).unwrap();
        assert_eq!(reg.asn_count(), 2);
        assert_eq!(reg.org_count(), 2);
    }
}
