//! The RIR "delegated-extended" statistics format (ASN records).
//!
//! Each RIR publishes a daily delegation statistics file; the NRO merges
//! them. Lines are pipe-separated:
//!
//! ```text
//! 2|nro|20240701|3|19840101|20240701|+0000
//! nro|*|asn|*|3|summary
//! arin|US|asn|3356|1|20000101|allocated|opaque-id
//! ```
//!
//! Measurement pipelines routinely join these files to learn an ASN's
//! registration country and allocation date; Borges's WHOIS substrate can
//! emit and consume the ASN records of this format, so delegation-level
//! tooling interoperates with the generated worlds.

use crate::registry::WhoisRegistry;
use borges_types::{Asn, CountryCode};
use std::error::Error;
use std::fmt;

/// One ASN delegation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsnDelegation {
    /// Lower-case registry name (`arin`, `ripencc`, …).
    pub registry: String,
    /// Registration country.
    pub country: CountryCode,
    /// First ASN of the block.
    pub start: Asn,
    /// Number of consecutive ASNs delegated.
    pub count: u32,
    /// Allocation date as `YYYYMMDD` (0 when unknown).
    pub date: u32,
    /// `allocated` or `assigned`.
    pub status: String,
}

impl AsnDelegation {
    /// Iterates every ASN covered by the record.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        (0..self.count).map(|i| Asn::new(self.start.value() + i))
    }
}

/// A delegated-extended parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelegatedError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for DelegatedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl Error for DelegatedError {}

/// Parses the ASN records of a delegated-extended file (header, summary,
/// and non-ASN records are skipped, as downstream tools do).
pub fn parse(text: &str) -> Result<Vec<AsnDelegation>, DelegatedError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        // Header (version line), summary lines, and ipv4/ipv6 records are
        // recognized and skipped.
        if fields.len() < 7 || fields[2] != "asn" || fields[5] == "summary" {
            continue;
        }
        if fields[3] == "*" {
            continue; // summary with asn type
        }
        let start: Asn = fields[3].parse().map_err(|_| DelegatedError {
            line: line_no,
            reason: "invalid start asn",
        })?;
        let count: u32 = fields[4].parse().map_err(|_| DelegatedError {
            line: line_no,
            reason: "invalid count",
        })?;
        if count == 0 {
            return Err(DelegatedError {
                line: line_no,
                reason: "zero-length delegation",
            });
        }
        let country: CountryCode = fields[1].parse().map_err(|_| DelegatedError {
            line: line_no,
            reason: "invalid country",
        })?;
        out.push(AsnDelegation {
            registry: fields[0].to_ascii_lowercase(),
            country,
            start,
            count,
            date: fields[5].parse().unwrap_or(0),
            status: fields[6].to_string(),
        });
    }
    Ok(out)
}

/// Emits a delegated-extended file (ASN records only) from a registry.
/// One record per ASN, ordered; the header carries the record count.
pub fn serialize(registry: &WhoisRegistry, snapshot_date: u32) -> String {
    let records: Vec<String> = registry
        .aut_nums()
        .map(|aut| {
            let org = registry.org(&aut.org).expect("registry is consistent");
            format!(
                "{}|{}|asn|{}|1|{}|allocated|{}",
                rir_name(org.source),
                org.country,
                aut.asn.value(),
                if aut.changed == 0 {
                    snapshot_date
                } else {
                    aut.changed
                },
                aut.org
            )
        })
        .collect();
    let mut out = format!(
        "2|nro|{snapshot_date}|{}|19840101|{snapshot_date}|+0000\n",
        records.len()
    );
    out.push_str(&format!("nro|*|asn|*|{}|summary\n", records.len()));
    for record in records {
        out.push_str(&record);
        out.push('\n');
    }
    out
}

fn rir_name(rir: crate::schema::Rir) -> &'static str {
    match rir {
        crate::schema::Rir::Arin => "arin",
        crate::schema::Rir::RipeNcc => "ripencc",
        crate::schema::Rir::Apnic => "apnic",
        crate::schema::Rir::Lacnic => "lacnic",
        crate::schema::Rir::Afrinic => "afrinic",
        crate::schema::Rir::Nir => "apnic", // NIR blocks surface via APNIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AutNum, Rir, WhoisOrg};
    use borges_types::{OrgName, WhoisOrgId};

    fn registry() -> WhoisRegistry {
        WhoisRegistry::builder()
            .org(WhoisOrg {
                id: WhoisOrgId::new("LPL-ARIN"),
                name: OrgName::new("Level 3"),
                country: "US".parse().unwrap(),
                source: Rir::Arin,
                changed: 20000101,
            })
            .aut(AutNum {
                asn: Asn::new(3356),
                name: "LEVEL3".into(),
                org: WhoisOrgId::new("LPL-ARIN"),
                source: Rir::Arin,
                changed: 20000101,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn parses_real_style_lines() {
        let text = "\
2|nro|20240701|4|19840101|20240701|+0000
nro|*|asn|*|2|summary
nro|*|ipv4|*|1|summary
arin|US|asn|3356|1|20000101|allocated|opaque
ripencc|DE|asn|3320|2|19930901|allocated|opaque
arin|US|ipv4|8.0.0.0|16777216|19921201|allocated|opaque
";
        let records = parse(text).unwrap();
        assert_eq!(records.len(), 2, "only asn records: {records:?}");
        assert_eq!(records[0].start, Asn::new(3356));
        assert_eq!(records[1].count, 2);
        let asns: Vec<Asn> = records[1].asns().collect();
        assert_eq!(asns, vec![Asn::new(3320), Asn::new(3321)]);
        assert_eq!(records[1].registry, "ripencc");
        assert_eq!(records[1].country.as_str(), "DE");
    }

    #[test]
    fn rejects_malformed_asn_records() {
        assert!(parse("arin|US|asn|x|1|0|allocated|o\n").is_err());
        assert!(parse("arin|US|asn|1|0|0|allocated|o\n").is_err());
        assert!(parse("arin|ZZZ|asn|1|1|0|allocated|o\n").is_err());
    }

    #[test]
    fn serialize_then_parse_covers_the_registry() {
        let reg = registry();
        let text = serialize(&reg, 20240724);
        let records = parse(&text).unwrap();
        assert_eq!(records.len(), reg.asn_count());
        assert_eq!(records[0].start, Asn::new(3356));
        assert_eq!(records[0].country.as_str(), "US");
        assert_eq!(records[0].date, 20000101);
        assert!(text.starts_with("2|nro|20240724|1|"));
    }

    #[test]
    fn empty_and_comment_lines_are_skipped() {
        let records = parse("# comment\n\n").unwrap();
        assert!(records.is_empty());
    }
}
