//! The in-memory WHOIS registry.
//!
//! [`WhoisRegistry`] is the queryable substrate: an indexed, referentially
//! consistent collection of [`WhoisOrg`] and [`AutNum`] records. It is
//! immutable once built — the pipeline treats a registry like the paper
//! treats a CAIDA snapshot: a frozen input dated to a snapshot day.

use crate::schema::{AutNum, WhoisOrg};
use borges_types::{Asn, WhoisOrgId};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Referential-integrity failures detected at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Two org records share a handle.
    DuplicateOrg(WhoisOrgId),
    /// Two aut-num records cover the same ASN.
    DuplicateAsn(Asn),
    /// An aut-num references a handle with no org record.
    DanglingOrgRef {
        /// The offending ASN.
        asn: Asn,
        /// The missing handle.
        org: WhoisOrgId,
    },
    /// An org handle is empty.
    EmptyOrgId,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateOrg(id) => write!(f, "duplicate organization {id}"),
            RegistryError::DuplicateAsn(asn) => write!(f, "duplicate aut-num for {asn}"),
            RegistryError::DanglingOrgRef { asn, org } => {
                write!(f, "{asn} references unknown organization {org}")
            }
            RegistryError::EmptyOrgId => write!(f, "empty organization handle"),
        }
    }
}

impl Error for RegistryError {}

/// Builder accumulating records before integrity validation.
#[derive(Debug, Default)]
pub struct WhoisRegistryBuilder {
    orgs: Vec<WhoisOrg>,
    auts: Vec<AutNum>,
}

impl WhoisRegistryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an organization record.
    pub fn org(mut self, org: WhoisOrg) -> Self {
        self.orgs.push(org);
        self
    }

    /// Adds an aut-num record.
    pub fn aut(mut self, aut: AutNum) -> Self {
        self.auts.push(aut);
        self
    }

    /// Adds many records at once.
    pub fn extend(
        mut self,
        orgs: impl IntoIterator<Item = WhoisOrg>,
        auts: impl IntoIterator<Item = AutNum>,
    ) -> Self {
        self.orgs.extend(orgs);
        self.auts.extend(auts);
        self
    }

    /// Validates referential integrity and freezes the registry.
    pub fn build(self) -> Result<WhoisRegistry, RegistryError> {
        let mut orgs: BTreeMap<WhoisOrgId, WhoisOrg> = BTreeMap::new();
        for org in self.orgs {
            if org.id.is_empty() {
                return Err(RegistryError::EmptyOrgId);
            }
            if orgs.insert(org.id.clone(), org.clone()).is_some() {
                return Err(RegistryError::DuplicateOrg(org.id));
            }
        }
        let mut auts: BTreeMap<Asn, AutNum> = BTreeMap::new();
        let mut members: BTreeMap<WhoisOrgId, BTreeSet<Asn>> = BTreeMap::new();
        for aut in self.auts {
            if !orgs.contains_key(&aut.org) {
                return Err(RegistryError::DanglingOrgRef {
                    asn: aut.asn,
                    org: aut.org,
                });
            }
            if auts.insert(aut.asn, aut.clone()).is_some() {
                return Err(RegistryError::DuplicateAsn(aut.asn));
            }
            members.entry(aut.org.clone()).or_default().insert(aut.asn);
        }
        Ok(WhoisRegistry {
            orgs,
            auts,
            members,
        })
    }
}

/// A frozen, indexed WHOIS snapshot.
#[derive(Debug, Clone, Default)]
pub struct WhoisRegistry {
    orgs: BTreeMap<WhoisOrgId, WhoisOrg>,
    auts: BTreeMap<Asn, AutNum>,
    members: BTreeMap<WhoisOrgId, BTreeSet<Asn>>,
}

impl WhoisRegistry {
    /// A builder for a new registry.
    pub fn builder() -> WhoisRegistryBuilder {
        WhoisRegistryBuilder::new()
    }

    /// The organization owning `asn`, if allocated.
    pub fn org_of(&self, asn: Asn) -> Option<&WhoisOrg> {
        self.auts.get(&asn).and_then(|a| self.orgs.get(&a.org))
    }

    /// The aut-num record for `asn`.
    pub fn aut_num(&self, asn: Asn) -> Option<&AutNum> {
        self.auts.get(&asn)
    }

    /// The organization record for a handle.
    pub fn org(&self, id: &WhoisOrgId) -> Option<&WhoisOrg> {
        self.orgs.get(id)
    }

    /// All ASNs registered to an organization (ascending).
    pub fn asns_of(&self, id: &WhoisOrgId) -> impl Iterator<Item = Asn> + '_ {
        self.members
            .get(id)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Iterates all allocated ASNs in ascending order. This is the vertex
    /// universe of the Organization Factor graph (§5.4).
    pub fn all_asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.auts.keys().copied()
    }

    /// Iterates all aut-num records in ASN order.
    pub fn aut_nums(&self) -> impl Iterator<Item = &AutNum> {
        self.auts.values()
    }

    /// Iterates all organization records in handle order.
    pub fn orgs(&self) -> impl Iterator<Item = &WhoisOrg> {
        self.orgs.values()
    }

    /// Number of allocated ASNs.
    pub fn asn_count(&self) -> usize {
        self.auts.len()
    }

    /// Number of organizations that own at least one ASN.
    pub fn populated_org_count(&self) -> usize {
        self.members.len()
    }

    /// Number of organization records (including ASN-less ones).
    pub fn org_count(&self) -> usize {
        self.orgs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Rir;
    use borges_types::OrgName;

    fn org(id: &str) -> WhoisOrg {
        WhoisOrg {
            id: WhoisOrgId::new(id),
            name: OrgName::new(format!("{id} name")),
            country: "US".parse().unwrap(),
            source: Rir::Arin,
            changed: 20240701,
        }
    }

    fn aut(asn: u32, org: &str) -> AutNum {
        AutNum {
            asn: Asn::new(asn),
            name: format!("NET{asn}"),
            org: WhoisOrgId::new(org),
            source: Rir::Arin,
            changed: 20240701,
        }
    }

    #[test]
    fn builds_and_indexes() {
        let reg = WhoisRegistry::builder()
            .org(org("A"))
            .org(org("B"))
            .aut(aut(1, "A"))
            .aut(aut(2, "A"))
            .aut(aut(3, "B"))
            .build()
            .unwrap();
        assert_eq!(reg.asn_count(), 3);
        assert_eq!(reg.org_count(), 2);
        assert_eq!(reg.org_of(Asn::new(1)).unwrap().id, WhoisOrgId::new("A"));
        let members: Vec<Asn> = reg.asns_of(&WhoisOrgId::new("A")).collect();
        assert_eq!(members, vec![Asn::new(1), Asn::new(2)]);
    }

    #[test]
    fn rejects_duplicate_org() {
        let err = WhoisRegistry::builder()
            .org(org("A"))
            .org(org("A"))
            .build()
            .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateOrg(WhoisOrgId::new("A")));
    }

    #[test]
    fn rejects_duplicate_asn() {
        let err = WhoisRegistry::builder()
            .org(org("A"))
            .aut(aut(1, "A"))
            .aut(aut(1, "A"))
            .build()
            .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateAsn(Asn::new(1)));
    }

    #[test]
    fn rejects_dangling_reference() {
        let err = WhoisRegistry::builder()
            .aut(aut(1, "MISSING"))
            .build()
            .unwrap_err();
        assert!(matches!(err, RegistryError::DanglingOrgRef { .. }));
    }

    #[test]
    fn rejects_empty_handle() {
        let mut o = org("A");
        o.id = WhoisOrgId::new("");
        let err = WhoisRegistry::builder().org(o).build().unwrap_err();
        assert_eq!(err, RegistryError::EmptyOrgId);
    }

    #[test]
    fn orgs_without_asns_are_counted_but_not_populated() {
        let reg = WhoisRegistry::builder()
            .org(org("A"))
            .org(org("EMPTY"))
            .aut(aut(1, "A"))
            .build()
            .unwrap();
        assert_eq!(reg.org_count(), 2);
        assert_eq!(reg.populated_org_count(), 1);
    }

    #[test]
    fn all_asns_is_sorted() {
        let reg = WhoisRegistry::builder()
            .org(org("A"))
            .aut(aut(30, "A"))
            .aut(aut(10, "A"))
            .aut(aut(20, "A"))
            .build()
            .unwrap();
        let asns: Vec<u32> = reg.all_asns().map(Asn::value).collect();
        assert_eq!(asns, vec![10, 20, 30]);
    }

    #[test]
    fn unknown_lookups_return_none() {
        let reg = WhoisRegistry::builder().build().unwrap();
        assert!(reg.org_of(Asn::new(999)).is_none());
        assert!(reg.org(&WhoisOrgId::new("X")).is_none());
        assert_eq!(reg.asns_of(&WhoisOrgId::new("X")).count(), 0);
    }
}
