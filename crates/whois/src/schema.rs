//! RIR record types.
//!
//! WHOIS describes allocations with two linked objects (§4.1 of the paper):
//! an **organization** record and an **aut-num** record referencing it.
//! The one-to-many `org → aut-num` relation is the WHOIS organization key
//! (`OID_W`).

use borges_types::{Asn, CountryCode, OrgName, WhoisOrgId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The five Regional Internet Registries (plus a catch-all for NIR-sourced
/// records appearing in CAIDA dumps, e.g. JPNIC/TWNIC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rir {
    /// American Registry for Internet Numbers.
    Arin,
    /// Réseaux IP Européens Network Coordination Centre.
    RipeNcc,
    /// Asia-Pacific Network Information Centre.
    Apnic,
    /// Latin America and Caribbean Network Information Centre.
    Lacnic,
    /// African Network Information Centre.
    Afrinic,
    /// A National Internet Registry (JPNIC, TWNIC, KRNIC, …) as it appears
    /// in CAIDA's `source` column.
    Nir,
}

impl Rir {
    /// The name used in CAIDA AS2Org `source` columns.
    pub const fn as_str(self) -> &'static str {
        match self {
            Rir::Arin => "ARIN",
            Rir::RipeNcc => "RIPE",
            Rir::Apnic => "APNIC",
            Rir::Lacnic => "LACNIC",
            Rir::Afrinic => "AFRINIC",
            Rir::Nir => "NIR",
        }
    }

    /// All RIR values (handy for generators and exhaustive tests).
    pub const ALL: [Rir; 6] = [
        Rir::Arin,
        Rir::RipeNcc,
        Rir::Apnic,
        Rir::Lacnic,
        Rir::Afrinic,
        Rir::Nir,
    ];
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Rir {
    type Err = borges_types::ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "ARIN" => Ok(Rir::Arin),
            "RIPE" | "RIPENCC" | "RIPE-NCC" => Ok(Rir::RipeNcc),
            "APNIC" => Ok(Rir::Apnic),
            "LACNIC" => Ok(Rir::Lacnic),
            "AFRINIC" => Ok(Rir::Afrinic),
            "NIR" | "JPNIC" | "TWNIC" | "KRNIC" | "CNNIC" | "IDNIC" | "VNNIC" => Ok(Rir::Nir),
            _ => Err(borges_types::ParseError::new(
                "rir",
                s,
                "unknown registry source",
            )),
        }
    }
}

/// A WHOIS organization record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhoisOrg {
    /// The registry handle — the `OID_W` organization key.
    pub id: WhoisOrgId,
    /// Registered organization name.
    pub name: OrgName,
    /// Country of registration.
    pub country: CountryCode,
    /// Which registry published the record.
    pub source: Rir,
    /// Last-modified date as `YYYYMMDD` (0 when unknown) — CAIDA's
    /// `changed` column.
    pub changed: u32,
}

/// A WHOIS aut-num record: one allocated ASN and its organization link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AutNum {
    /// The allocated ASN.
    pub asn: Asn,
    /// The `aut_name` (short network handle, e.g. `LEVEL3`).
    pub name: String,
    /// The owning organization — the `OID_W` foreign key.
    pub org: WhoisOrgId,
    /// Which registry published the record.
    pub source: Rir,
    /// Last-modified date as `YYYYMMDD` (0 when unknown).
    pub changed: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rir_parse_roundtrip() {
        for rir in Rir::ALL {
            assert_eq!(rir.as_str().parse::<Rir>().unwrap(), rir);
        }
    }

    #[test]
    fn rir_parse_accepts_nir_aliases() {
        assert_eq!("JPNIC".parse::<Rir>().unwrap(), Rir::Nir);
        assert_eq!("ripencc".parse::<Rir>().unwrap(), Rir::RipeNcc);
    }

    #[test]
    fn rir_parse_rejects_unknown() {
        assert!("IANA".parse::<Rir>().is_err());
    }

    #[test]
    fn records_serialize() {
        let org = WhoisOrg {
            id: WhoisOrgId::new("LPL-141-ARIN"),
            name: OrgName::new("Level 3 Parent, LLC"),
            country: "US".parse().unwrap(),
            source: Rir::Arin,
            changed: 20240101,
        };
        let j = serde_json::to_string(&org).unwrap();
        let back: WhoisOrg = serde_json::from_str(&j).unwrap();
        assert_eq!(back, org);
    }
}
