//! RPSL WHOIS objects (`aut-num` / `organisation`).
//!
//! The raw material behind CAIDA's AS2Org is the registries' RPSL
//! databases — the text objects the `whois` protocol serves:
//!
//! ```text
//! aut-num:        AS3356
//! as-name:        LEVEL3
//! org:            ORG-LPL1-ARIN
//! source:         ARIN
//!
//! organisation:   ORG-LPL1-ARIN
//! org-name:       Level 3 Parent, LLC
//! country:        US
//! source:         ARIN
//! ```
//!
//! This module parses and emits those two object classes (attribute
//! continuation lines, comments and unknown attributes included), so a
//! registry dump can feed the substrate directly and a generated registry
//! can masquerade as one.

use crate::registry::{RegistryError, WhoisRegistry};
use crate::schema::{AutNum, Rir, WhoisOrg};
use borges_types::{Asn, CountryCode, OrgName, WhoisOrgId};
use std::error::Error;
use std::fmt;

/// An RPSL parsing failure.
#[derive(Debug)]
pub enum RpslError {
    /// An object is missing a required attribute.
    MissingAttribute {
        /// Class of the offending object.
        class: &'static str,
        /// The missing attribute.
        attribute: &'static str,
        /// 1-based line where the object starts.
        line: usize,
    },
    /// An attribute value failed to parse.
    BadValue {
        /// The attribute.
        attribute: String,
        /// 1-based line number.
        line: usize,
    },
    /// The parsed objects violate referential integrity.
    Integrity(RegistryError),
}

impl fmt::Display for RpslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpslError::MissingAttribute {
                class,
                attribute,
                line,
            } => write!(f, "line {line}: {class} object missing {attribute}:"),
            RpslError::BadValue { attribute, line } => {
                write!(f, "line {line}: bad value for {attribute}:")
            }
            RpslError::Integrity(e) => write!(f, "integrity: {e}"),
        }
    }
}

impl Error for RpslError {}

impl From<RegistryError> for RpslError {
    fn from(e: RegistryError) -> Self {
        RpslError::Integrity(e)
    }
}

/// One parsed RPSL object: ordered `(attribute, value)` pairs.
#[derive(Debug, Clone)]
struct RpslObject {
    first_line: usize,
    attributes: Vec<(String, String)>,
}

impl RpslObject {
    fn get(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(a, _)| a == name)
            .map(|(_, v)| v.as_str())
    }

    fn class(&self) -> Option<&str> {
        self.attributes.first().map(|(a, _)| a.as_str())
    }
}

/// Splits RPSL text into objects (blank-line separated), handling `%`/`#`
/// comment lines and continuation lines (leading whitespace or `+`).
fn split_objects(text: &str) -> Vec<RpslObject> {
    let mut objects = Vec::new();
    let mut current: Option<RpslObject> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.trim_start().starts_with('%') || line.trim_start().starts_with('#') {
            continue;
        }
        if line.trim().is_empty() {
            if let Some(obj) = current.take() {
                objects.push(obj);
            }
            continue;
        }
        // Continuation line: starts with space/tab/'+', extends the last
        // attribute's value.
        if line.starts_with(' ') || line.starts_with('\t') || line.starts_with('+') {
            if let Some(obj) = current.as_mut() {
                if let Some((_, value)) = obj.attributes.last_mut() {
                    value.push(' ');
                    value.push_str(line.trim_start_matches(['+', ' ', '\t']).trim());
                }
            }
            continue;
        }
        let (attr, value) = match line.split_once(':') {
            Some((a, v)) => (a.trim().to_ascii_lowercase(), v.trim().to_string()),
            None => continue, // tolerate junk lines the way whois clients do
        };
        let obj = current.get_or_insert_with(|| RpslObject {
            first_line: line_no,
            attributes: Vec::new(),
        });
        obj.attributes.push((attr, value));
    }
    if let Some(obj) = current.take() {
        objects.push(obj);
    }
    objects
}

/// Parses RPSL text into a validated [`WhoisRegistry`]. Unknown object
/// classes and attributes are ignored; `aut-num` objects without an
/// `org:` reference are skipped (they cannot anchor a mapping).
pub fn parse(text: &str) -> Result<WhoisRegistry, RpslError> {
    let mut orgs: Vec<WhoisOrg> = Vec::new();
    let mut auts: Vec<AutNum> = Vec::new();

    for object in split_objects(text) {
        match object.class() {
            Some("organisation") | Some("organization") => {
                let id = object
                    .get("organisation")
                    .or_else(|| object.get("organization"))
                    .expect("class attribute exists");
                let name = object.get("org-name").ok_or(RpslError::MissingAttribute {
                    class: "organisation",
                    attribute: "org-name",
                    line: object.first_line,
                })?;
                let country: CountryCode =
                    object.get("country").unwrap_or("ZZ").parse().map_err(|_| {
                        RpslError::BadValue {
                            attribute: "country".into(),
                            line: object.first_line,
                        }
                    })?;
                let source: Rir = object
                    .get("source")
                    .unwrap_or("ARIN")
                    .parse()
                    .unwrap_or(Rir::Nir);
                orgs.push(WhoisOrg {
                    id: WhoisOrgId::new(id),
                    name: OrgName::new(name),
                    country,
                    source,
                    changed: parse_changed(object.get("last-modified")),
                });
            }
            Some("aut-num") => {
                let asn_text = object.get("aut-num").expect("class attribute exists");
                let asn: Asn = asn_text.parse().map_err(|_| RpslError::BadValue {
                    attribute: "aut-num".into(),
                    line: object.first_line,
                })?;
                let org = match object.get("org") {
                    Some(org) if !org.is_empty() => WhoisOrgId::new(org),
                    _ => continue, // org-less aut-num: cannot map
                };
                let source: Rir = object
                    .get("source")
                    .unwrap_or("ARIN")
                    .parse()
                    .unwrap_or(Rir::Nir);
                auts.push(AutNum {
                    asn,
                    name: object.get("as-name").unwrap_or("").to_string(),
                    org,
                    source,
                    changed: parse_changed(object.get("last-modified")),
                });
            }
            _ => {} // route/inetnum/person/… — irrelevant here
        }
    }

    // Synthesize placeholders for dangling org references, like the CAIDA
    // flat-file parser does.
    let known: std::collections::BTreeSet<_> = orgs.iter().map(|o| o.id.clone()).collect();
    let mut seen = std::collections::BTreeSet::new();
    let placeholders: Vec<WhoisOrg> = auts
        .iter()
        .filter(|a| !known.contains(&a.org) && seen.insert(a.org.clone()))
        .map(|a| WhoisOrg {
            id: a.org.clone(),
            name: OrgName::new(a.org.as_str()),
            country: "ZZ".parse().expect("ZZ parses"),
            source: a.source,
            changed: 0,
        })
        .collect();
    orgs.extend(placeholders);

    Ok(WhoisRegistry::builder().extend(orgs, auts).build()?)
}

/// `2024-07-01T00:00:00Z` → `20240701`; absent/garbage → 0.
fn parse_changed(value: Option<&str>) -> u32 {
    let v = match value {
        Some(v) => v,
        None => return 0,
    };
    let digits: String = v.chars().filter(|c| c.is_ascii_digit()).take(8).collect();
    digits.parse().unwrap_or(0)
}

/// Emits a registry as RPSL objects (organisations first, then aut-nums,
/// both in key order).
pub fn serialize(registry: &WhoisRegistry) -> String {
    let mut out = String::from("% generated by borges-whois\n\n");
    for org in registry.orgs() {
        out.push_str(&format!(
            "organisation:   {}\norg-name:       {}\ncountry:        {}\nsource:         {}\n\n",
            org.id, org.name, org.country, org.source
        ));
    }
    for aut in registry.aut_nums() {
        out.push_str(&format!(
            "aut-num:        AS{}\nas-name:        {}\norg:            {}\nsource:         {}\n\n",
            aut.asn.value(),
            aut.name,
            aut.org,
            aut.source
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
% RIPE-style comment

organisation:   ORG-LPL1-ARIN
org-name:       Level 3 Parent, LLC
country:        US
source:         ARIN

organisation:   ORG-CTL1-ARIN
org-name:       CenturyLink Communications,
+               LLC
country:        US
source:         ARIN

aut-num:        AS3356
as-name:        LEVEL3
org:            ORG-LPL1-ARIN
remarks:        backbone
source:         ARIN

aut-num:        AS209
as-name:        CENTURYLINK-US
org:            ORG-CTL1-ARIN
source:         ARIN

person:         Irrelevant Human
nic-hdl:        IH-TEST
";

    #[test]
    fn parses_objects_with_continuations_and_comments() {
        let reg = parse(SAMPLE).unwrap();
        assert_eq!(reg.asn_count(), 2);
        assert_eq!(reg.org_count(), 2);
        let ctl = reg.org_of(Asn::new(209)).unwrap();
        assert_eq!(ctl.name.as_str(), "CenturyLink Communications, LLC");
    }

    #[test]
    fn orgless_autnums_are_skipped() {
        let text = "aut-num:        AS1\nas-name:        LONER\nsource:         ARIN\n";
        let reg = parse(text).unwrap();
        assert_eq!(reg.asn_count(), 0);
    }

    #[test]
    fn dangling_org_gets_a_placeholder() {
        let text = "aut-num: AS64496\nas-name: T\norg: ORG-GHOST\nsource: RIPE\n";
        let reg = parse(text).unwrap();
        assert_eq!(
            reg.org_of(Asn::new(64496)).unwrap().id,
            WhoisOrgId::new("ORG-GHOST")
        );
    }

    #[test]
    fn missing_org_name_is_an_error() {
        let text = "organisation: ORG-X\ncountry: US\nsource: ARIN\n";
        assert!(matches!(
            parse(text).unwrap_err(),
            RpslError::MissingAttribute {
                attribute: "org-name",
                ..
            }
        ));
    }

    #[test]
    fn bad_autnum_is_an_error() {
        let text = "aut-num: ASXYZ\norg: ORG-X\nsource: ARIN\n";
        assert!(matches!(
            parse(text).unwrap_err(),
            RpslError::BadValue { .. }
        ));
    }

    #[test]
    fn last_modified_dates_parse() {
        let text = "\
organisation: ORG-X
org-name: X
country: US
source: ARIN
last-modified: 2024-07-01T10:00:00Z

aut-num: AS10
as-name: TEN
org: ORG-X
source: ARIN
last-modified: 2023-01-15T00:00:00Z
";
        let reg = parse(text).unwrap();
        assert_eq!(
            reg.org(&WhoisOrgId::new("ORG-X")).unwrap().changed,
            20240701
        );
        assert_eq!(reg.aut_num(Asn::new(10)).unwrap().changed, 20230115);
    }

    #[test]
    fn serialize_parse_roundtrip_preserves_the_relation() {
        let reg = parse(SAMPLE).unwrap();
        let text = serialize(&reg);
        let back = parse(&text).unwrap();
        assert_eq!(back.asn_count(), reg.asn_count());
        assert_eq!(back.org_count(), reg.org_count());
        for asn in reg.all_asns() {
            assert_eq!(reg.org_of(asn).unwrap().id, back.org_of(asn).unwrap().id);
        }
    }
}
