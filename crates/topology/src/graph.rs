//! The AS relationship graph.
//!
//! Inter-domain links carry business semantics (Gao's model): a
//! **provider–customer** edge means the customer pays the provider for
//! transit; a **peer–peer** edge means settlement-free exchange. AS-Rank
//! only walks p2c edges; peering contributes to degree but not to cones.

use borges_types::Asn;
use std::collections::{BTreeMap, BTreeSet};

/// The business relationship annotating a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relationship {
    /// First AS sells transit to the second (provider → customer).
    ProviderCustomer,
    /// Settlement-free peering.
    PeerPeer,
}

/// Builder for an [`AsGraph`]. Duplicate edges collapse; conflicting
/// annotations on the same unordered pair are rejected.
#[derive(Debug, Default)]
pub struct AsGraphBuilder {
    p2c: BTreeSet<(Asn, Asn)>,
    p2p: BTreeSet<(Asn, Asn)>,
    nodes: BTreeSet<Asn>,
}

impl AsGraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an AS with no links yet (stub networks still rank).
    pub fn node(&mut self, asn: Asn) -> &mut Self {
        self.nodes.insert(asn);
        self
    }

    /// Adds a provider→customer edge.
    pub fn provider_customer(&mut self, provider: Asn, customer: Asn) -> &mut Self {
        if provider != customer {
            self.p2c.insert((provider, customer));
            self.nodes.insert(provider);
            self.nodes.insert(customer);
        }
        self
    }

    /// Adds a peering edge (stored with the smaller ASN first).
    pub fn peer_peer(&mut self, a: Asn, b: Asn) -> &mut Self {
        if a != b {
            let (x, y) = if a < b { (a, b) } else { (b, a) };
            self.p2p.insert((x, y));
            self.nodes.insert(a);
            self.nodes.insert(b);
        }
        self
    }

    /// Freezes the graph.
    pub fn build(self) -> AsGraph {
        let mut customers: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        let mut providers: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        for &(p, c) in &self.p2c {
            customers.entry(p).or_default().push(c);
            providers.entry(c).or_default().push(p);
        }
        let mut peers: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        for &(a, b) in &self.p2p {
            peers.entry(a).or_default().push(b);
            peers.entry(b).or_default().push(a);
        }
        AsGraph {
            nodes: self.nodes,
            customers,
            providers,
            peers,
        }
    }
}

/// An immutable annotated AS-relationship graph.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    nodes: BTreeSet<Asn>,
    customers: BTreeMap<Asn, Vec<Asn>>,
    providers: BTreeMap<Asn, Vec<Asn>>,
    peers: BTreeMap<Asn, Vec<Asn>>,
}

impl AsGraph {
    /// A new builder.
    pub fn builder() -> AsGraphBuilder {
        AsGraphBuilder::new()
    }

    /// All ASes, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = Asn> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of ASes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of provider–customer links.
    pub fn p2c_count(&self) -> usize {
        self.customers.values().map(Vec::len).sum()
    }

    /// Number of peering links.
    pub fn p2p_count(&self) -> usize {
        self.peers.values().map(Vec::len).sum::<usize>() / 2
    }

    /// Direct customers of `asn`.
    pub fn customers_of(&self, asn: Asn) -> &[Asn] {
        self.customers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Direct providers of `asn`.
    pub fn providers_of(&self, asn: Asn) -> &[Asn] {
        self.providers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Peers of `asn`.
    pub fn peers_of(&self, asn: Asn) -> &[Asn] {
        self.peers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total degree (providers + customers + peers) — AS-Rank's
    /// secondary key.
    pub fn degree(&self, asn: Asn) -> usize {
        self.customers_of(asn).len() + self.providers_of(asn).len() + self.peers_of(asn).len()
    }

    /// `true` when the AS has no customers (a stub or pure peer).
    pub fn is_stub(&self, asn: Asn) -> bool {
        self.customers_of(asn).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn builds_and_indexes_both_directions() {
        let mut b = AsGraph::builder();
        b.provider_customer(a(1), a(2));
        b.provider_customer(a(1), a(3));
        b.peer_peer(a(1), a(4));
        let g = b.build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.customers_of(a(1)), &[a(2), a(3)]);
        assert_eq!(g.providers_of(a(2)), &[a(1)]);
        assert_eq!(g.peers_of(a(4)), &[a(1)]);
        assert_eq!(g.degree(a(1)), 3);
        assert!(g.is_stub(a(2)));
        assert!(!g.is_stub(a(1)));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = AsGraph::builder();
        b.provider_customer(a(1), a(2));
        b.provider_customer(a(1), a(2));
        b.peer_peer(a(3), a(4));
        b.peer_peer(a(4), a(3));
        let g = b.build();
        assert_eq!(g.p2c_count(), 1);
        assert_eq!(g.p2p_count(), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut b = AsGraph::builder();
        b.provider_customer(a(1), a(1));
        b.peer_peer(a(2), a(2));
        b.node(a(1));
        b.node(a(2));
        let g = b.build();
        assert_eq!(g.p2c_count(), 0);
        assert_eq!(g.p2p_count(), 0);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn isolated_nodes_are_kept() {
        let mut b = AsGraph::builder();
        b.node(a(9));
        let g = b.build();
        assert_eq!(g.node_count(), 1);
        assert!(g.is_stub(a(9)));
        assert_eq!(g.degree(a(9)), 0);
    }
}
