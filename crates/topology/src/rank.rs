//! AS-Rank: ordering ASNs by customer-cone size.
//!
//! CAIDA's AS-Rank orders by customer-cone size descending, breaking ties
//! by transit degree and finally by ASN (for determinism). §6.1 of the
//! Borges paper reads the top-100/1,000/10,000 of this ordering.

use crate::cone::customer_cones;
use crate::graph::AsGraph;
use borges_types::Asn;

/// One row of the ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankEntry {
    /// 1-based rank.
    pub rank: usize,
    /// The AS.
    pub asn: Asn,
    /// Customer-cone size (primary key, descending).
    pub cone: usize,
    /// Total degree (secondary key, descending).
    pub degree: usize,
}

/// Ranks every AS in the graph.
pub fn rank(graph: &AsGraph) -> Vec<RankEntry> {
    let cones = customer_cones(graph);
    let mut entries: Vec<RankEntry> = graph
        .nodes()
        .map(|asn| RankEntry {
            rank: 0,
            asn,
            cone: cones[&asn],
            degree: graph.degree(asn),
        })
        .collect();
    entries.sort_by(|x, y| {
        y.cone
            .cmp(&x.cone)
            .then(y.degree.cmp(&x.degree))
            .then(x.asn.cmp(&y.asn))
    });
    for (i, entry) in entries.iter_mut().enumerate() {
        entry.rank = i + 1;
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn ranks_by_cone_then_degree_then_asn() {
        let mut b = AsGraph::builder();
        // 10: cone 3. 20: cone 2. 30/31: stubs; 31 peers more.
        b.provider_customer(a(10), a(20));
        b.provider_customer(a(20), a(30));
        b.node(a(31));
        b.peer_peer(a(31), a(40));
        let g = b.build();
        let ranking = rank(&g);
        assert_eq!(ranking[0].asn, a(10));
        assert_eq!(ranking[0].rank, 1);
        assert_eq!(ranking[0].cone, 3);
        assert_eq!(ranking[1].asn, a(20));
        // Among cone-1 ASNs, higher degree first.
        let pos31 = ranking.iter().position(|e| e.asn == a(31)).unwrap();
        let pos30 = ranking.iter().position(|e| e.asn == a(30)).unwrap();
        assert!(pos31 > pos30 || ranking[pos31].degree >= ranking[pos30].degree);
    }

    #[test]
    fn ranking_is_a_permutation() {
        let mut b = AsGraph::builder();
        for i in 1..50u32 {
            b.provider_customer(a(i % 7 + 1), a(i + 10));
        }
        let g = b.build();
        let ranking = rank(&g);
        assert_eq!(ranking.len(), g.node_count());
        let mut ranks: Vec<usize> = ranking.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=g.node_count()).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_ties() {
        let mut b = AsGraph::builder();
        for i in [5u32, 3, 9, 1] {
            b.node(a(i));
        }
        let g = b.build();
        let ranking = rank(&g);
        let asns: Vec<u32> = ranking.iter().map(|e| e.asn.value()).collect();
        assert_eq!(asns, vec![1, 3, 5, 9], "equal cone/degree → ASN order");
    }
}
