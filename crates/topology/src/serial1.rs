//! CAIDA's "serial-1" AS-relationship file format.
//!
//! CAIDA publishes inferred AS relationships as pipe-separated triples:
//!
//! ```text
//! # source: borges-topology
//! 3356|209|-1
//! 3356|2914|0
//! ```
//!
//! `a|b|-1` means *a is a provider of b*; `a|b|0` means *a and b peer*.
//! Comment lines start with `#`. This module reads and writes that format
//! so a genuine CAIDA `as-rel.txt` can stand in for the generated
//! topology.

use crate::graph::{AsGraph, AsGraphBuilder};
use borges_types::Asn;
use std::error::Error;
use std::fmt;

/// A serial-1 parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Serial1Error {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for Serial1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl Error for Serial1Error {}

/// Parses a serial-1 relationship file.
pub fn parse(text: &str) -> Result<AsGraph, Serial1Error> {
    let mut builder = AsGraphBuilder::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('|');
        let (a, b, rel) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(b), Some(rel), None) => (a, b, rel),
            _ => {
                return Err(Serial1Error {
                    line: line_no,
                    reason: "expected as1|as2|rel",
                })
            }
        };
        let a: Asn = a.parse().map_err(|_| Serial1Error {
            line: line_no,
            reason: "invalid as1",
        })?;
        let b: Asn = b.parse().map_err(|_| Serial1Error {
            line: line_no,
            reason: "invalid as2",
        })?;
        match rel {
            "-1" => {
                builder.provider_customer(a, b);
            }
            "0" => {
                builder.peer_peer(a, b);
            }
            _ => {
                return Err(Serial1Error {
                    line: line_no,
                    reason: "relationship must be -1 or 0",
                })
            }
        }
    }
    Ok(builder.build())
}

/// Serializes a graph to the serial-1 format, deterministically ordered.
pub fn serialize(graph: &AsGraph) -> String {
    let mut out = String::from("# format: as1|as2|rel (-1 = as1 provider of as2, 0 = peers)\n");
    for provider in graph.nodes() {
        for &customer in graph.customers_of(provider) {
            out.push_str(&format!("{}|{}|-1\n", provider.value(), customer.value()));
        }
    }
    for a in graph.nodes() {
        for &b in graph.peers_of(a) {
            if a < b {
                out.push_str(&format!("{}|{}|0\n", a.value(), b.value()));
            }
        }
    }
    // Isolated nodes still appear (as comments) so node sets round-trip.
    for node in graph.nodes() {
        if graph.degree(node) == 0 {
            out.push_str(&format!("# node: {}\n", node.value()));
        }
    }
    out
}

/// Parses including `# node:` comments (the round-trip companion of
/// [`serialize`] — plain CAIDA files simply have no such comments).
pub fn parse_with_nodes(text: &str) -> Result<AsGraph, Serial1Error> {
    let mut builder = AsGraphBuilder::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(node) = line.strip_prefix("# node: ") {
            let asn: Asn = node.parse().map_err(|_| Serial1Error {
                line: idx + 1,
                reason: "invalid node comment",
            })?;
            builder.node(asn);
        }
    }
    let base = parse(text)?;
    for node in base.nodes() {
        builder.node(node);
    }
    for p in base.nodes() {
        for &c in base.customers_of(p) {
            builder.provider_customer(p, c);
        }
        for &q in base.peers_of(p) {
            builder.peer_peer(p, q);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn parses_caida_style_lines() {
        let g = parse("# inferred\n3356|209|-1\n3356|2914|0\n").unwrap();
        assert_eq!(g.customers_of(a(3356)), &[a(209)]);
        assert_eq!(g.peers_of(a(3356)), &[a(2914)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse("1|2\n").unwrap_err().line, 1);
        assert_eq!(
            parse("1|2|7\n").unwrap_err().reason,
            "relationship must be -1 or 0"
        );
        assert!(parse("x|2|-1\n").is_err());
        assert!(parse("1|2|-1|extra\n").is_err());
    }

    #[test]
    fn roundtrip_with_isolated_nodes() {
        let mut b = AsGraph::builder();
        b.provider_customer(a(1), a(2));
        b.peer_peer(a(2), a(3));
        b.node(a(99));
        let g = b.build();
        let text = serialize(&g);
        let back = parse_with_nodes(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.p2c_count(), g.p2c_count());
        assert_eq!(back.p2p_count(), g.p2p_count());
        assert_eq!(serialize(&back), text, "stable serialization");
    }

    #[test]
    fn cones_survive_roundtrip() {
        use crate::cone::customer_cones;
        let mut b = AsGraph::builder();
        b.provider_customer(a(1), a(2));
        b.provider_customer(a(1), a(3));
        b.provider_customer(a(3), a(4));
        let g = b.build();
        let back = parse_with_nodes(&serialize(&g)).unwrap();
        assert_eq!(customer_cones(&g), customer_cones(&back));
    }
}
