//! # borges-topology
//!
//! The AS-level topology substrate behind CAIDA AS-Rank.
//!
//! §6.1 of the Borges paper ranks transit providers with CAIDA's AS-Rank,
//! which orders ASNs by **customer-cone size**: the set of ASNs reachable
//! by walking provider→customer edges downward (Luckie et al., IMC 2013).
//! This crate implements that substrate from scratch:
//!
//! * [`graph`] — the annotated relationship graph (provider–customer and
//!   peer–peer edges) with degree/tier statistics;
//! * [`cone`] — exact customer-cone computation (per-provider BFS over
//!   the customer DAG, cycle-tolerant);
//! * [`rank()`] — the AS-Rank ordering: cone size, then transit degree,
//!   then ASN.
//!
//! The synthetic-Internet generator builds a relationship graph that
//! mirrors its organizational ground truth (transit orgs provide for
//! stubs, conglomerate flagships provide for their subsidiaries,
//! hypergiants peer broadly), and Figure 8's rank axis comes out of this
//! crate's ranking — not from an ad-hoc score.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cone;
pub mod graph;
pub mod rank;
pub mod serial1;

pub use cone::customer_cones;
pub use graph::{AsGraph, AsGraphBuilder, Relationship};
pub use rank::{rank, RankEntry};
