//! Customer-cone computation.
//!
//! The customer cone of AS *x* is the set of ASNs reachable from *x* by
//! walking provider→customer edges only — *x* itself, its customers,
//! their customers, and so on (Luckie et al., "AS Relationships, Customer
//! Cones, and Validation", IMC 2013). Cone size is AS-Rank's primary key.
//!
//! Implementation: one BFS over the customer digraph per AS that has
//! customers (stubs have cone 1 by definition). A visited set makes the
//! walk cycle-tolerant — real relationship inferences occasionally
//! contain p2c cycles, and the generator is not required to avoid them.

use crate::graph::AsGraph;
use borges_types::Asn;
use std::collections::BTreeMap;

/// Computes the customer-cone **size** of every AS in the graph.
pub fn customer_cones(graph: &AsGraph) -> BTreeMap<Asn, usize> {
    // Dense index for the visited bitmap.
    let index: BTreeMap<Asn, usize> = graph.nodes().zip(0..).collect();
    let mut cones: BTreeMap<Asn, usize> = BTreeMap::new();
    let mut visited = vec![u32::MAX; index.len()];
    let mut queue: Vec<Asn> = Vec::new();

    for (epoch, asn) in graph.nodes().enumerate() {
        if graph.is_stub(asn) {
            cones.insert(asn, 1);
            continue;
        }
        let epoch = epoch as u32;
        let mut size = 0usize;
        queue.clear();
        queue.push(asn);
        visited[index[&asn]] = epoch;
        while let Some(current) = queue.pop() {
            size += 1;
            for &customer in graph.customers_of(current) {
                let slot = &mut visited[index[&customer]];
                if *slot != epoch {
                    *slot = epoch;
                    queue.push(customer);
                }
            }
        }
        cones.insert(asn, size);
    }
    cones
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    fn graph(edges: &[(u32, u32)]) -> AsGraph {
        let mut b = AsGraph::builder();
        for &(p, c) in edges {
            b.provider_customer(a(p), a(c));
        }
        b.build()
    }

    #[test]
    fn chain_cones() {
        // 1 → 2 → 3: cone(1)=3, cone(2)=2, cone(3)=1.
        let g = graph(&[(1, 2), (2, 3)]);
        let cones = customer_cones(&g);
        assert_eq!(cones[&a(1)], 3);
        assert_eq!(cones[&a(2)], 2);
        assert_eq!(cones[&a(3)], 1);
    }

    #[test]
    fn diamond_counts_each_asn_once() {
        // 1 → {2,3} → 4: cone(1) = {1,2,3,4} = 4 (4 not double-counted).
        let g = graph(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        let cones = customer_cones(&g);
        assert_eq!(cones[&a(1)], 4);
        assert_eq!(cones[&a(2)], 2);
    }

    #[test]
    fn cycles_terminate() {
        // 1 → 2 → 3 → 2 (inference artifact): cone(1) = {1,2,3}.
        let g = graph(&[(1, 2), (2, 3), (3, 2)]);
        let cones = customer_cones(&g);
        assert_eq!(cones[&a(1)], 3);
        assert_eq!(cones[&a(2)], 2);
        assert_eq!(cones[&a(3)], 2);
    }

    #[test]
    fn peering_does_not_extend_cones() {
        let mut b = AsGraph::builder();
        b.provider_customer(a(1), a(2));
        b.peer_peer(a(1), a(9));
        b.provider_customer(a(9), a(10));
        let g = b.build();
        let cones = customer_cones(&g);
        assert_eq!(cones[&a(1)], 2, "peer 9's customers are not in 1's cone");
        assert_eq!(cones[&a(9)], 2);
    }

    #[test]
    fn stubs_have_cone_one() {
        let mut b = AsGraph::builder();
        b.node(a(5));
        b.provider_customer(a(1), a(2));
        let g = b.build();
        let cones = customer_cones(&g);
        assert_eq!(cones[&a(5)], 1);
        assert_eq!(cones[&a(2)], 1);
    }

    #[test]
    fn every_node_gets_a_cone() {
        let g = graph(&[(1, 2), (3, 4), (1, 4)]);
        let cones = customer_cones(&g);
        assert_eq!(cones.len(), g.node_count());
        // Cones are at least 1 and at most n.
        for &size in cones.values() {
            assert!((1..=g.node_count()).contains(&size));
        }
    }

    #[test]
    fn wide_tree_scales() {
        // A two-level tree: root with 100 mid providers, each with 50
        // stubs — 5,101 nodes, exercised for performance sanity.
        let mut b = AsGraph::builder();
        let mut next = 2u32;
        for _ in 0..100 {
            let mid = next;
            next += 1;
            b.provider_customer(a(1), a(mid));
            for _ in 0..50 {
                b.provider_customer(a(mid), a(next));
                next += 1;
            }
        }
        let g = b.build();
        let cones = customer_cones(&g);
        assert_eq!(cones[&a(1)], 5101);
    }
}
