//! Ablation bench (DESIGN.md §4): what the paper's design choices buy.
//!
//! * input dropout filter — LLM calls saved (§4.2);
//! * output hallucination filter — fabricated ASNs admitted without it;
//! * LLM vs the as2org+ regexes — the accuracy/cost trade at the heart
//!   of the paper.
//!
//! Besides timing, each ablation prints its effect sizes once, so
//! `cargo bench` output doubles as the ablation report.

use borges_baselines::regex_extract;
use borges_bench::{llm, medium_world};
use borges_core::evalsets::ie_confusion;
use borges_core::ner::{extract, NerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

fn print_effects_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let world = medium_world();
        let model = llm();
        let with = extract(&world.pdb, &model, NerConfig::default());
        let without_input = extract(
            &world.pdb,
            &model,
            NerConfig {
                input_filter: false,
                output_filter: true,
            },
        );
        let without_output = extract(
            &world.pdb,
            &model,
            NerConfig {
                input_filter: true,
                output_filter: false,
            },
        );
        eprintln!("\n=== ablation effect sizes (medium world) ===");
        eprintln!(
            "input filter: {} LLM calls with filter vs {} without ({}x saved)",
            with.stats.llm_calls,
            without_input.stats.llm_calls,
            without_input.stats.llm_calls as f64 / with.stats.llm_calls.max(1) as f64
        );
        eprintln!(
            "output filter: {} reply ASNs rejected as hallucinations; without it, \
{} entries would carry extractions (vs {})",
            with.stats.filtered_out,
            without_output.stats.entries_with_siblings,
            with.stats.entries_with_siblings,
        );
        let llm_score = ie_confusion(&world.pdb, &world.text_labels, &with, None);
        let mut regex_fp = 0usize;
        let mut regex_tp = 0usize;
        for net in world.pdb.nets().filter(|n| n.has_numeric_text()) {
            let got = regex_extract(net.asn, &net.notes, &net.aka, true);
            let expected = world.text_labels.get(&net.asn);
            for asn in got {
                if expected.map(|e| e.contains(&asn)).unwrap_or(false) {
                    regex_tp += 1;
                } else {
                    regex_fp += 1;
                }
            }
        }
        eprintln!(
            "LLM extraction accuracy {:.3} (precision {:.3}); as2org+ regexes: {} correct vs {} spurious ASNs",
            llm_score.accuracy(),
            llm_score.precision(),
            regex_tp,
            regex_fp
        );
        eprintln!("============================================\n");
    });
}

fn bench_ablations(c: &mut Criterion) {
    print_effects_once();
    let world = medium_world();
    let model = llm();

    let mut group = c.benchmark_group("ablation_filters");
    group.sample_size(10);

    group.bench_function("ner_with_filters", |b| {
        b.iter(|| black_box(extract(&world.pdb, &model, NerConfig::default())))
    });
    group.bench_function("ner_without_input_filter", |b| {
        b.iter(|| {
            black_box(extract(
                &world.pdb,
                &model,
                NerConfig {
                    input_filter: false,
                    output_filter: true,
                },
            ))
        })
    });
    group.bench_function("regex_baseline_extraction", |b| {
        b.iter(|| {
            for net in world.pdb.nets() {
                black_box(regex_extract(net.asn, &net.notes, &net.aka, true));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
