//! Table 6 / Figure 7 bench: mapping materialization (union-find over
//! the universe) and Organization Factor computation.

use borges_bench::medium_pipeline;
use borges_core::orgfactor::{cumulative_curve, organization_factor};
use borges_core::pipeline::FeatureSet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_orgfactor(c: &mut Criterion) {
    let borges = medium_pipeline();
    let n = borges.universe().len();
    let baseline = borges.baseline_as2org();
    let full = borges.full();

    let mut group = c.benchmark_group("table6_orgfactor");
    group.sample_size(20);

    group.bench_function("materialize_baseline", |b| {
        b.iter(|| black_box(borges.mapping(FeatureSet::NONE)))
    });
    group.bench_function("materialize_full", |b| {
        b.iter(|| black_box(borges.mapping(FeatureSet::ALL)))
    });
    group.bench_function("theta_baseline", |b| {
        b.iter(|| black_box(organization_factor(&baseline, n)))
    });
    group.bench_function("theta_full", |b| {
        b.iter(|| black_box(organization_factor(&full, n)))
    });
    group.bench_function("figure7_curve", |b| {
        b.iter(|| black_box(cumulative_curve(&full, n)))
    });
    group.bench_function("all_16_combinations", |b| {
        b.iter(|| {
            for features in FeatureSet::all_combinations() {
                let m = borges.mapping(features);
                black_box(organization_factor(&m, n));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_orgfactor);
criterion_main!(benches);
