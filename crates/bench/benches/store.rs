//! Persistent-store bench: what a `serve --store` cold start costs
//! next to the full compile it replaces.
//!
//! Four legs over the medium world (~11k ASNs): encoding the compiled
//! world to artifact bytes, decoding + validating those bytes back
//! (checksums, digest, semantic checks), replaying the decoded world
//! into a pipeline at 1 and 4 threads, and — the yardstick — the full
//! crawl-to-evidence compile. The artifact size is printed so the
//! wall-time numbers can be read against the I/O they imply.
//!
//! Decode + replay is the whole happy-path cold start; the gap between
//! that sum and the compile leg is the store's value proposition.

use borges_bench::{medium_world, SEED};
use borges_core::pipeline::Borges;
use borges_llm::SimLlm;
use borges_store::{decode_world, encode_world};
use borges_websim::{Scraper, SimWebClient};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_store(c: &mut Criterion) {
    let world = medium_world();
    let model = SimLlm::new(SEED);
    let scraper = Scraper::new(SimWebClient::browser(&world.web));
    let scrape = scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())));
    let borges = Borges::from_scrape(
        &world.whois,
        &world.pdb,
        &scrape,
        &model,
        Default::default(),
    );
    let compiled = borges.to_world();
    let bytes = encode_world(&compiled);
    eprintln!(
        "store artifact: {} bytes for {} ASNs",
        bytes.len(),
        world.whois.asn_count()
    );
    let loaded = decode_world(&bytes).expect("decode own encoding");

    let mut group = c.benchmark_group("store/medium");
    group.sample_size(10);
    group.bench_function("encode", |b| b.iter(|| black_box(encode_world(&compiled))));
    group.bench_function("decode_validate", |b| {
        b.iter(|| black_box(decode_world(&bytes).expect("decode")))
    });
    for threads in [1usize, 4] {
        group.bench_function(&format!("replay_threads_{threads}"), |b| {
            b.iter(|| black_box(Borges::from_world(&loaded.world, threads).expect("replay")))
        });
    }
    // The yardstick is what `serve` without `--store` actually does at
    // boot: crawl + extract + compile. (The sim's LLM answers in
    // microseconds; against a real model the gap widens by orders of
    // magnitude — the store also removes the boot-time dependency on
    // the web and the model being reachable at all.)
    group.bench_function("full_compile_yardstick", |b| {
        b.iter(|| {
            black_box(Borges::run(
                &world.whois,
                &world.pdb,
                SimWebClient::browser(&world.web),
                &model,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
