//! Evidence-compilation bench: full compile and 1%-churn incremental
//! remap, swept across world size (medium ~11k ASNs / large ~130k) and
//! shard count (1 / 4 / 16 workers driving the sharded
//! `DenseUnionFind` replay).
//!
//! The crawl is pre-computed outside the timed region for every leg —
//! crawling costs the same regardless of sharding — so the sweep
//! isolates what the shards actually parallelize: extraction fan-out
//! and the edge-list replay. Shard count 1 is the sequential baseline;
//! outputs are byte-identical at every count (pinned by
//! tests/scale.rs), so the sweep measures pure schedule, not drift.
//!
//! Peak RSS (VmHWM) is printed alongside wall time. The kernel lets a
//! process reset its own high-water mark via `/proc/self/clear_refs`,
//! which this bench does before each leg; on kernels where the reset
//! is refused the printed values are monotonic across legs and only
//! the first large-world number is meaningful.
//!
//! The streamed generation preamble stream-writes the large world to a
//! temp dir first and reports its wall time and RSS ceiling — the
//! bounded-memory claim of the streaming generator, measured in the
//! same process that then pays the cost of materializing that world
//! for compilation.
//!
//! The host CPU count is printed at startup so recorded baselines are
//! interpretable without trusting a hand-written note.

use borges_bench::{medium_world, SEED};
use borges_core::pipeline::Borges;
use borges_core::SnapshotState;
use borges_llm::SimLlm;
use borges_synthnet::{churn, GeneratorConfig, SyntheticInternet};
use borges_websim::{ScrapeReport, Scraper, SimWebClient};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

/// Peak resident set (VmHWM) in MiB, from /proc/self/status. Returns
/// 0.0 where procfs is unavailable (non-Linux); the bench still runs,
/// just without memory numbers.
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<f64>().ok())
            })
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Resets the high-water mark so per-leg peaks are attributable.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

fn llm() -> SimLlm {
    SimLlm::new(SEED)
}

fn crawl(world: &SyntheticInternet) -> ScrapeReport {
    let scraper = Scraper::new(SimWebClient::browser(&world.web));
    scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())))
}

/// The large world, materialized once. Compilation needs the parsed
/// registries in memory regardless of how the bundle was written, so
/// the bench generates in-process rather than round-tripping the
/// streamed files through the loader.
fn large_world() -> &'static SyntheticInternet {
    static WORLD: OnceLock<SyntheticInternet> = OnceLock::new();
    WORLD.get_or_init(|| SyntheticInternet::generate(&GeneratorConfig::large(SEED)))
}

/// Streamed-generation preamble: write the large world to disk in
/// bounded memory and report the cost. Runs before any materialized
/// fixture exists so the RSS ceiling is the streamer's own.
fn streaming_preamble() {
    let dir = std::env::temp_dir().join(format!("borges-compile-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    reset_peak_rss();
    let start = std::time::Instant::now();
    let report = borges_synthnet::generate_to_dir(&GeneratorConfig::large(SEED), &dir)
        .expect("streaming generation");
    eprintln!(
        "stream-generate large ({} ASNs, {} PeeringDB nets, {} web hosts): {:.2} s, peak RSS {:.0} MiB",
        report.asns,
        report.pdb_nets,
        report.web_hosts,
        start.elapsed().as_secs_f64(),
        peak_rss_mib()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

struct WorldFixture {
    label: &'static str,
    world: &'static SyntheticInternet,
}

fn bench_compile(c: &mut Criterion) {
    eprintln!(
        "bench host: {} CPU(s) online",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    streaming_preamble();

    let worlds = [
        WorldFixture {
            label: "medium",
            world: medium_world(),
        },
        WorldFixture {
            label: "large",
            world: large_world(),
        },
    ];

    for fixture in &worlds {
        let world = fixture.world;
        reset_peak_rss();
        let scrape = crawl(world);
        let model = llm();
        eprintln!(
            "{}: {} ASNs, {} crawl entries (fixture peak RSS {:.0} MiB)",
            fixture.label,
            world.whois.asn_count(),
            scrape.sites.len(),
            peak_rss_mib()
        );

        // The snapshot-T state the remap legs start from, and the 1%
        // churned T+1 they re-map.
        let state: SnapshotState = Borges::from_scrape(
            &world.whois,
            &world.pdb,
            &scrape,
            &model,
            Default::default(),
        )
        .snapshot_state();
        let (t1, churn_report) = churn(world, 1.0, SEED ^ 1);
        let t1_scrape = crawl(&t1);
        eprintln!(
            "{}: churn 1% mutated {} of {} ASNs",
            fixture.label,
            churn_report.selected,
            world.whois.asn_count()
        );

        let mut group = c.benchmark_group(&format!("compile/{}", fixture.label));
        group.sample_size(10);
        for threads in [1usize, 4, 16] {
            reset_peak_rss();
            group.bench_function(&format!("full_threads_{threads}"), |b| {
                b.iter(|| {
                    black_box(Borges::from_scrape_parallel(
                        &world.whois,
                        &world.pdb,
                        &scrape,
                        &model,
                        Default::default(),
                        threads,
                    ))
                })
            });
            eprintln!(
                "{}: full compile at {} thread(s) peak RSS {:.0} MiB",
                fixture.label,
                threads,
                peak_rss_mib()
            );

            reset_peak_rss();
            group.bench_function(&format!("remap_churn1_threads_{threads}"), |b| {
                b.iter(|| {
                    black_box(Borges::remap_parallel(
                        &t1.whois,
                        &t1.pdb,
                        &t1_scrape,
                        &model,
                        Default::default(),
                        &state,
                        threads,
                    ))
                })
            });
            eprintln!(
                "{}: 1%-churn remap at {} thread(s) peak RSS {:.0} MiB",
                fixture.label,
                threads,
                peak_rss_mib()
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
