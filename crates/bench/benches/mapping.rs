//! Mapping materialization bench: the compiled dense replay
//! ([`Borges::mapping`]) against the legacy per-call sparse rebuild, and
//! the Table 6 16-combination sweep sequential vs
//! [`Borges::mappings_parallel`].
//!
//! The legacy comparator reconstructs what `mapping()` did before
//! evidence compilation: re-intern the universe into a `BTreeMap`-backed
//! union-find and re-filter every evidence source against a `BTreeSet`
//! of allocated ASNs, on every call.

use borges_bench::{medium_pipeline, medium_world};
use borges_core::orgkeys::{oid_p_groups, oid_w_groups};
use borges_core::{AsOrgMapping, Borges, FeatureSet, UnionFind};
use borges_types::Asn;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

/// The pre-compilation `mapping()` algorithm, reconstructed from public
/// API: sparse union-find over `Asn` keys, per-call universe filtering.
fn sparse_rebuild(
    borges: &Borges,
    oid_w: &[Vec<Asn>],
    oid_p: &[Vec<Asn>],
    features: FeatureSet,
) -> AsOrgMapping {
    let allocated: BTreeSet<Asn> = borges.universe().iter().copied().collect();
    let mut uf = UnionFind::with_universe(borges.universe().iter().copied());
    for group in oid_w {
        uf.union_group(group);
    }
    if features.oid_p {
        for group in oid_p {
            uf.union_group(group);
        }
    }
    if features.na {
        for (a, b) in borges.ner.edges() {
            if allocated.contains(&a) && allocated.contains(&b) {
                uf.union(a, b);
            }
        }
    }
    if features.rr {
        for group in borges.rr.merging_groups() {
            let members: Vec<Asn> = group
                .iter()
                .copied()
                .filter(|a| allocated.contains(a))
                .collect();
            uf.union_group(&members);
        }
    }
    if features.favicons {
        for group in &borges.favicon.groups {
            let members: Vec<Asn> = group
                .iter()
                .copied()
                .filter(|a| allocated.contains(a))
                .collect();
            uf.union_group(&members);
        }
    }
    AsOrgMapping::from_union_find(uf)
}

fn bench_mapping(c: &mut Criterion) {
    // Surfaced in the output so recorded baselines carry the host shape
    // with them instead of relying on a hand-written (and staling) note.
    eprintln!(
        "bench host: {} CPU(s) online",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let world = medium_world();
    let borges = medium_pipeline();
    let oid_w = oid_w_groups(&world.whois);
    let oid_p = oid_p_groups(&world.pdb);
    let combinations = FeatureSet::all_combinations();

    let mut group = c.benchmark_group("mapping");
    group.sample_size(10);

    group.bench_function("single_all_compiled", |b| {
        b.iter(|| black_box(borges.mapping(FeatureSet::ALL)))
    });
    group.bench_function("single_all_sparse_rebuild", |b| {
        b.iter(|| black_box(sparse_rebuild(borges, &oid_w, &oid_p, FeatureSet::ALL)))
    });

    group.bench_function("sweep16_sequential_compiled", |b| {
        b.iter(|| {
            for &features in &combinations {
                black_box(borges.mapping(features));
            }
        })
    });
    group.bench_function("sweep16_sparse_rebuild", |b| {
        b.iter(|| {
            for &features in &combinations {
                black_box(sparse_rebuild(borges, &oid_w, &oid_p, features));
            }
        })
    });
    for threads in [2, 4, 8] {
        group.bench_function(&format!("sweep16_parallel_{threads}"), |b| {
            b.iter(|| black_box(borges.mappings_parallel(&combinations, threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
