//! Substrate bench: synthetic-Internet generation throughput (the cost
//! of producing the evaluation inputs at each scale).

use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");

    group.bench_function("tiny", |b| {
        b.iter(|| black_box(SyntheticInternet::generate(&GeneratorConfig::tiny(1))))
    });

    group.sample_size(10);
    group.bench_function("medium", |b| {
        b.iter(|| black_box(SyntheticInternet::generate(&GeneratorConfig::medium(1))))
    });
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
