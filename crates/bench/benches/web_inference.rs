//! Table 5 / §4.3 bench: the web crawl, redirect-chain resolution,
//! final-URL matching, favicon grouping, and Table 5 scoring.

use borges_bench::{llm, medium_scrape, medium_world};
use borges_core::evalsets::classifier_confusion;
use borges_core::web::favicon::favicon_inference;
use borges_core::web::rr::rr_inference;
use borges_websim::{Scraper, SimWebClient, WebClient};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_web(c: &mut Criterion) {
    let world = medium_world();
    let report = medium_scrape();
    let model = llm();

    let mut group = c.benchmark_group("table5_web");
    group.sample_size(10);

    group.bench_function("single_fetch_with_redirects", |b| {
        let client = SimWebClient::browser(&world.web);
        let url = "http://www.clearwire.com".parse().unwrap();
        b.iter(|| black_box(client.fetch(&url)))
    });

    group.bench_function("crawl_medium", |b| {
        b.iter(|| {
            let scraper = Scraper::new(SimWebClient::browser(&world.web));
            black_box(scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str()))))
        })
    });

    group.bench_function("rr_inference", |b| {
        b.iter(|| black_box(rr_inference(report)))
    });

    group.bench_function("favicon_inference", |b| {
        b.iter(|| black_box(favicon_inference(report, &model)))
    });

    group.bench_function("table5_scoring", |b| {
        let inference = favicon_inference(report, &model);
        b.iter(|| {
            black_box(classifier_confusion(&inference, |x, y| {
                world.truth.are_siblings(x, y)
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_web);
criterion_main!(benches);
