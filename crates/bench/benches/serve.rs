//! Serving-layer loopback sweep: request throughput through the full
//! stack — accept queue, worker pool, routing, JSON render — over real
//! `127.0.0.1` sockets, across client counts (1 / 4 / 16) and cache
//! temperature (cold: LRU disabled, every `/v1/map` request
//! re-materializes the mapping; warm: LRU capacity 16, every feature
//! subset served from cache after the first hit).
//!
//! The cold/warm gap isolates the cost the [`MappingCache`] exists to
//! amortize: mapping materialization over the medium (~11k ASN) world.
//! The client-count sweep shows how the fixed worker pool scales on
//! loopback, where the per-request network cost is near zero and the
//! measured time is parse + route + render + syscall overhead.
//!
//! Each iteration runs `clients × REQUESTS_PER_CLIENT` round trips:
//! every client thread opens a fresh connection per request (the server
//! speaks one request per connection) and walks a rotating probe list
//! covering map lookups across feature subsets, org rosters, evidence
//! pairs, coverage, and health.
//!
//! The host CPU count is printed at startup so recorded baselines are
//! interpretable without trusting a hand-written note.
//!
//! [`MappingCache`]: borges_serve::MappingCache

use borges_bench::medium_pipeline;
use borges_serve::{ServeClient, Server, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Round trips each client thread performs per iteration.
const REQUESTS_PER_CLIENT: usize = 8;

/// The rotating request mix. Feature subsets deliberately vary so the
/// cold server re-materializes distinct mappings while the warm one
/// holds them all (LRU capacity 16 > 6 distinct subsets).
const PROBES: &[&str] = &[
    "/v1/map/AS3356",
    "/v1/map/AS3356?features=none",
    "/v1/map/AS174?features=oid_p,rr",
    "/v1/org/AS3356?features=na,favicons",
    "/v1/evidence/AS3356/AS209",
    "/v1/coverage",
    "/healthz",
    "/v1/map/AS701?features=na,rr",
];

fn start_server(lru_capacity: usize) -> Server {
    let config = ServerConfig {
        threads: 8,
        queue_depth: 1024,
        lru_capacity,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    Server::start(config, medium_pipeline().clone(), None).expect("bind loopback")
}

fn bench_serve(c: &mut Criterion) {
    eprintln!(
        "bench host: {} CPU(s) online",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    for &clients in &[1usize, 4, 16] {
        for (mode, lru_capacity) in [("cold", 0usize), ("warm", 16)] {
            let server = start_server(lru_capacity);
            let addr = server.local_addr();
            if lru_capacity > 0 {
                // Pre-warm every probe so the warm leg measures steady
                // state, not the first-touch materializations.
                let client = ServeClient::new(addr);
                for probe in PROBES {
                    let response = client.get(probe).expect("warmup request");
                    assert_eq!(response.status, 200, "warmup {probe}");
                }
            }
            // One iteration = clients × REQUESTS_PER_CLIENT round trips;
            // divide the reported time accordingly for per-request cost.
            group.bench_function(&format!("{clients}_clients_{mode}"), |b| {
                b.iter(|| {
                    let workers: Vec<_> = (0..clients)
                        .map(|offset| {
                            std::thread::spawn(move || {
                                let client =
                                    ServeClient::new(addr).with_timeout(Duration::from_secs(60));
                                for step in 0..REQUESTS_PER_CLIENT {
                                    let probe = PROBES[(offset + step) % PROBES.len()];
                                    let response = client.get(probe).expect("bench request");
                                    assert_eq!(response.status, 200, "{probe}");
                                }
                            })
                        })
                        .collect();
                    for worker in workers {
                        worker.join().expect("client thread");
                    }
                })
            });
            server.stop();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
