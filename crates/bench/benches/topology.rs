//! Topology substrate bench: relationship-graph construction, customer
//! cones and AS-Rank at medium world scale (the inputs of Figure 8).

use borges_bench::medium_world;
use borges_topology::{customer_cones, rank, serial1};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_topology(c: &mut Criterion) {
    let world = medium_world();
    let graph = &world.topology;

    let mut group = c.benchmark_group("topology");
    group.sample_size(10);

    group.bench_function("customer_cones_medium", |b| {
        b.iter(|| black_box(customer_cones(graph)))
    });
    group.bench_function("asrank_medium", |b| b.iter(|| black_box(rank(graph))));
    group.bench_function("serial1_roundtrip_medium", |b| {
        b.iter(|| {
            let text = serial1::serialize(graph);
            black_box(serial1::parse_with_nodes(&text).expect("own output parses"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
