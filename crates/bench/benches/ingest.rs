//! Ingest bench: staged pipeline vs streaming scheduler under injected
//! fetch latency.
//!
//! The streaming scheduler's claim is *overlap*, not fan-out: while
//! fetches wait on the (simulated) network, NER and the union-find
//! precompile run on the compute thread, and up to `workers` in-flight
//! fetches hide each other's latency. To make that claim measurable on
//! any host, every fetch is wrapped in a real `thread::sleep` — the
//! only honest stand-in for network latency the simulator lacks. The
//! staged legs pay that latency serially (or across `threads` crawl
//! workers); the streaming legs pay it `workers`-wide while compiling.
//!
//! Because the win is latency hiding rather than parallel compute, it
//! shows up even on a single-CPU host; a baseline recorded there is
//! tagged "overlap-only" in results/README.md. Outputs are pinned
//! byte-identical to staged by tests/streaming.rs, so this sweep
//! measures pure schedule, not drift.
//!
//! The host CPU count is printed at startup (and recorded in the JSON
//! baseline) so recorded numbers are interpretable without trusting a
//! hand-written note.

use borges_bench::{medium_world, SEED};
use borges_core::pipeline::{Borges, StreamOptions};
use borges_llm::SimLlm;
use borges_resilience::TransportError;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_types::Url;
use borges_websim::{FetchResult, SimWebClient, WebClient};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use std::time::Duration;

/// Injects a fixed real-time delay before every fetch — the stand-in
/// for network round-trip latency the simulator otherwise elides.
struct LatentWebClient<C> {
    inner: C,
    delay: Duration,
}

impl<C: WebClient> WebClient for LatentWebClient<C> {
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
        std::thread::sleep(self.delay);
        self.inner.fetch(url)
    }
}

fn large_world() -> &'static SyntheticInternet {
    static WORLD: OnceLock<SyntheticInternet> = OnceLock::new();
    WORLD.get_or_init(|| SyntheticInternet::generate(&GeneratorConfig::large(SEED)))
}

struct IngestFixture {
    label: &'static str,
    world: &'static SyntheticInternet,
    /// Injected per-fetch latency, sized so the staged leg fits the
    /// harness time budget while still dominating the crawl stage.
    delay_us: u64,
    samples: usize,
}

fn bench_ingest(c: &mut Criterion) {
    eprintln!(
        "bench host: {} CPU(s) online",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let fixtures = [
        IngestFixture {
            label: "medium",
            world: medium_world(),
            delay_us: 200,
            samples: 5,
        },
        IngestFixture {
            label: "large",
            world: large_world(),
            delay_us: 100,
            samples: 3,
        },
    ];

    for fixture in &fixtures {
        let world = fixture.world;
        let entries = world.pdb.nets().count();
        let delay = Duration::from_micros(fixture.delay_us);
        eprintln!(
            "{}: {} ASNs, {} crawl entries, {}µs injected fetch latency \
             (serial lower bound {:.2} s)",
            fixture.label,
            world.whois.asn_count(),
            entries,
            fixture.delay_us,
            (entries as u64 * fixture.delay_us) as f64 / 1e6,
        );
        let model = SimLlm::new(SEED);
        let client = || LatentWebClient {
            inner: SimWebClient::browser(&world.web),
            delay,
        };

        let mut group = c.benchmark_group(&format!("ingest/{}", fixture.label));
        group.sample_size(fixture.samples);
        group.bench_function("staged_sequential", |b| {
            b.iter(|| black_box(Borges::run(&world.whois, &world.pdb, client(), &model)))
        });
        group.bench_function("staged_threads_4", |b| {
            b.iter(|| {
                black_box(Borges::run_parallel(
                    &world.whois,
                    &world.pdb,
                    client(),
                    &model,
                    4,
                ))
            })
        });
        for workers in [4usize, 8] {
            let opts = StreamOptions {
                workers,
                max_in_flight: workers,
                ..StreamOptions::default()
            };
            group.bench_function(&format!("streaming_workers_{workers}"), |b| {
                b.iter(|| {
                    black_box(Borges::run_streaming(
                        &world.whois,
                        &world.pdb,
                        client(),
                        &model,
                        &opts,
                    ))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
