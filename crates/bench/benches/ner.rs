//! Table 4 bench: LLM information extraction — per-record prompt build +
//! completion + parse, and whole-snapshot throughput.

use borges_bench::{llm, medium_world, tiny_world};
use borges_core::evalsets::ie_confusion;
use borges_core::ner::{extract, NerConfig};
use borges_llm::chat::{ChatModel, ChatRequest};
use borges_llm::ner::extract_siblings;
use borges_llm::prompts::{build_ie_prompt, parse_ie_reply};
use borges_types::Asn;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const DT_NOTES: &str = "Deutsche Telekom Global Carrier.\nOur European subsidiaries:\n\
- Magyar Telekom (AS5483)\n- Slovak Telekom (AS6855)\n- Hrvatski Telekom (AS5391)";

fn bench_ner(c: &mut Criterion) {
    let model = llm();

    let mut group = c.benchmark_group("table4_ner");

    group.bench_function("single_record_roundtrip", |b| {
        b.iter(|| {
            let prompt = build_ie_prompt(Asn::new(3320), black_box(DT_NOTES), "");
            let reply = model.complete(&ChatRequest::user(prompt)).unwrap();
            black_box(parse_ie_reply(&reply.text))
        })
    });

    group.bench_function("extraction_model_only", |b| {
        b.iter(|| black_box(extract_siblings(Asn::new(3320), black_box(DT_NOTES), "")))
    });

    group.bench_function("snapshot_tiny", |b| {
        let world = tiny_world();
        b.iter(|| black_box(extract(&world.pdb, &model, NerConfig::default())))
    });

    group.sample_size(10);
    group.bench_function("snapshot_medium", |b| {
        let world = medium_world();
        b.iter(|| black_box(extract(&world.pdb, &model, NerConfig::default())))
    });

    group.bench_function("table4_scoring", |b| {
        let world = medium_world();
        let ner = extract(&world.pdb, &model, NerConfig::default());
        b.iter(|| {
            black_box(ie_confusion(
                &world.pdb,
                &world.text_labels,
                &ner,
                Some(320),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ner);
criterion_main!(benches);
