//! Incremental re-mapping bench: [`Borges::remap`] against a fresh
//! [`Borges::from_scrape`] of the same T+1 snapshot, swept across churn
//! rates (0% / 1% / 10% / 100% of ASNs mutated).
//!
//! Both paths run over a *pre-computed* crawl of T+1 — crawling is the
//! same cost for both, so the bench isolates what the delta engine
//! actually saves: memoized LLM replies (the dominant term) and
//! fingerprint-retained edge segments. At low churn the incremental
//! path should win by well over the 5x acceptance floor; at 100% churn
//! it converges to full-compile cost plus the (cheap) delta accounting.
//!
//! [`SimLlm`] answers from a seeded RNG in microseconds, which would
//! price the delta engine's entire saving — avoided LLM calls — at
//! zero. Production NER and favicon calls each cost a network round
//! trip plus decode time, so [`CostedModel`] charges a flat
//! [`PER_CALL_COST`] spin per call. That is two orders of magnitude
//! *below* real API latency (hundreds of milliseconds), so the
//! measured ratios understate the production win; it keeps the sweep
//! fast while still letting the call-count asymmetry show up in
//! wall-clock. The per-path LLM call counts are printed alongside the
//! timings so the recorded baseline makes the asymmetry explicit.
//!
//! The host CPU count is printed at startup so recorded baselines are
//! interpretable without trusting a hand-written note.

use borges_bench::{medium_world, SEED};
use borges_core::pipeline::Borges;
use borges_core::SnapshotState;
use borges_llm::{ChatModel, ChatRequest, ChatResponse, SimLlm};
use borges_resilience::TransportError;
use borges_synthnet::{churn, SyntheticInternet};
use borges_websim::{ScrapeReport, Scraper, SimWebClient};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Modeled cost of one LLM API round trip. Conservative: real calls
/// run hundreds of milliseconds; 2ms keeps the 100%-churn leg of the
/// sweep under a minute while preserving the count asymmetry.
const PER_CALL_COST: Duration = Duration::from_millis(2);

/// Charges [`PER_CALL_COST`] of spin before every completion, so a
/// saved call is a saved cost — as it is against a real API.
struct CostedModel<M> {
    inner: M,
}

impl<M: ChatModel> ChatModel for CostedModel<M> {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        let start = Instant::now();
        while start.elapsed() < PER_CALL_COST {
            std::hint::spin_loop();
        }
        self.inner.complete(request)
    }
    fn model_id(&self) -> &str {
        self.inner.model_id()
    }
}

fn llm() -> CostedModel<SimLlm> {
    CostedModel {
        inner: SimLlm::new(SEED),
    }
}

fn crawl(world: &SyntheticInternet) -> ScrapeReport {
    let scraper = Scraper::new(SimWebClient::browser(&world.web));
    scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())))
}

fn llm_calls(borges: &Borges) -> usize {
    borges.ner.stats.llm_calls + borges.favicon.stats.llm_calls
}

/// The persisted snapshot-T state every remap starts from.
fn base_state() -> &'static SnapshotState {
    static STATE: OnceLock<SnapshotState> = OnceLock::new();
    STATE.get_or_init(|| {
        let world = medium_world();
        let model = llm();
        Borges::from_scrape(
            &world.whois,
            &world.pdb,
            &crawl(world),
            &model,
            Default::default(),
        )
        .snapshot_state()
    })
}

fn bench_remap(c: &mut Criterion) {
    eprintln!(
        "bench host: {} CPU(s) online",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let state = base_state();
    let mut group = c.benchmark_group("remap");
    group.sample_size(10);

    for percent in [0u32, 1, 10, 100] {
        let (t1, report) = churn(
            medium_world(),
            f64::from(percent),
            SEED ^ u64::from(percent),
        );
        let scrape = crawl(&t1);
        let model = llm();
        let full = Borges::from_scrape(&t1.whois, &t1.pdb, &scrape, &model, Default::default());
        let inc = Borges::remap(
            &t1.whois,
            &t1.pdb,
            &scrape,
            &model,
            Default::default(),
            state,
        );
        eprintln!(
            "churn {percent}%: {} of {} ASNs mutated; LLM calls full={} incremental={}",
            report.selected,
            t1.whois.asn_count(),
            llm_calls(&full),
            llm_calls(&inc),
        );
        group.bench_function(&format!("full_compile_churn_{percent}"), |b| {
            b.iter(|| {
                black_box(Borges::from_scrape(
                    &t1.whois,
                    &t1.pdb,
                    &scrape,
                    &model,
                    Default::default(),
                ))
            })
        });
        group.bench_function(&format!("incremental_churn_{percent}"), |b| {
            b.iter(|| {
                black_box(Borges::remap(
                    &t1.whois,
                    &t1.pdb,
                    &scrape,
                    &model,
                    Default::default(),
                    state,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_remap);
criterion_main!(benches);
