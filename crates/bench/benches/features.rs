//! Table 3 bench: the cost of computing each feature's merge evidence in
//! isolation on the medium world.

use borges_bench::{llm, medium_scrape, medium_world};
use borges_core::ner::{extract, NerConfig};
use borges_core::orgkeys::{oid_p_groups, oid_w_groups};
use borges_core::web::favicon::favicon_inference;
use borges_core::web::rr::rr_inference;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_features(c: &mut Criterion) {
    let world = medium_world();
    let report = medium_scrape();
    let model = llm();

    let mut group = c.benchmark_group("table3_features");
    group.sample_size(10);

    group.bench_function("oid_w_groups", |b| {
        b.iter(|| black_box(oid_w_groups(&world.whois)))
    });
    group.bench_function("oid_p_groups", |b| {
        b.iter(|| black_box(oid_p_groups(&world.pdb)))
    });
    group.bench_function("ner_extract", |b| {
        b.iter(|| black_box(extract(&world.pdb, &model, NerConfig::default())))
    });
    group.bench_function("ner_extract_parallel_4", |b| {
        b.iter(|| {
            black_box(borges_core::ner::extract_parallel(
                &world.pdb,
                &model,
                NerConfig::default(),
                4,
            ))
        })
    });
    group.bench_function("rr_inference", |b| {
        b.iter(|| black_box(rr_inference(report)))
    });
    group.bench_function("favicon_inference", |b| {
        b.iter(|| black_box(favicon_inference(report, &model)))
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
