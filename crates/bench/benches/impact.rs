//! Tables 7–9 / Figures 8–9 bench: the §6 impact analyses on the medium
//! world.

use borges_bench::{medium_pipeline, medium_world};
use borges_core::impact::{
    country_footprint, hypergiant_sizes, population_comparison, transit_growth, AsnPopulation,
};
use borges_types::Asn;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn populations() -> BTreeMap<Asn, AsnPopulation> {
    medium_world()
        .populations
        .iter()
        .map(|(asn, rec)| {
            (
                *asn,
                AsnPopulation {
                    users: rec.users,
                    country: rec.country,
                },
            )
        })
        .collect()
}

fn bench_impact(c: &mut Criterion) {
    let world = medium_world();
    let borges = medium_pipeline();
    let base = borges.baseline_as2org();
    let full = borges.full();
    let pops = populations();

    let mut group = c.benchmark_group("section6_impact");
    group.sample_size(20);

    group.bench_function("table7_8_population_comparison", |b| {
        b.iter(|| black_box(population_comparison(&base, &full, &pops)))
    });
    group.bench_function("figure8_transit_growth", |b| {
        b.iter(|| black_box(transit_growth(&base, &full, &world.asrank)))
    });
    group.bench_function("figure9_hypergiants", |b| {
        b.iter(|| black_box(hypergiant_sizes(&world.hypergiants, &[&base, &full])))
    });
    group.bench_function("table9_footprint", |b| {
        b.iter(|| black_box(country_footprint(&base, &full, &pops)))
    });
    group.finish();
}

criterion_group!(benches, bench_impact);
criterion_main!(benches);
