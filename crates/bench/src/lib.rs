//! Shared fixtures for the Criterion benchmarks.
//!
//! Every bench operates on the same deterministically generated worlds so
//! numbers are comparable across runs and benches. Worlds are built once
//! per process via `OnceLock`.

use borges_core::pipeline::Borges;
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_websim::{ScrapeReport, Scraper, SimWebClient};
use std::sync::OnceLock;

/// The bench seed.
pub const SEED: u64 = 20240724;

/// A tiny world (~400 ASNs) for micro-benchmarks of per-item costs.
pub fn tiny_world() -> &'static SyntheticInternet {
    static WORLD: OnceLock<SyntheticInternet> = OnceLock::new();
    WORLD.get_or_init(|| SyntheticInternet::generate(&GeneratorConfig::tiny(SEED)))
}

/// A medium world (~11k ASNs) for end-to-end stage benchmarks.
pub fn medium_world() -> &'static SyntheticInternet {
    static WORLD: OnceLock<SyntheticInternet> = OnceLock::new();
    WORLD.get_or_init(|| SyntheticInternet::generate(&GeneratorConfig::medium(SEED)))
}

/// The paper-calibrated model.
pub fn llm() -> SimLlm {
    SimLlm::new(SEED)
}

/// A completed crawl of the medium world (computed once).
pub fn medium_scrape() -> &'static ScrapeReport {
    static REPORT: OnceLock<ScrapeReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let world = medium_world();
        let scraper = Scraper::new(SimWebClient::browser(&world.web));
        scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())))
    })
}

/// A fully computed pipeline over the medium world (computed once).
pub fn medium_pipeline() -> &'static Borges {
    static PIPELINE: OnceLock<Borges> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let world = medium_world();
        let model = llm();
        Borges::from_scrape(
            &world.whois,
            &world.pdb,
            medium_scrape(),
            &model,
            Default::default(),
        )
    })
}
