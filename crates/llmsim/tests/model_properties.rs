//! Property tests for the transport middleware: the resilience stack
//! must be invisible whenever there is nothing (or only recoverable
//! chaos) to resist — the model-side mirror of
//! `websim/tests/web_properties.rs`.

use borges_llm::chat::{ChatModel, ChatRequest};
use borges_llm::prompts::build_ie_prompt;
use borges_llm::{CachingModel, FlakyModel, RetryingModel, SimLlm};
use borges_resilience::{EpisodePlan, RetryPolicy};
use borges_types::Asn;
use proptest::prelude::*;

fn request(asn: u32) -> ChatRequest {
    ChatRequest::user(build_ie_prompt(
        Asn::new(asn),
        &format!("Network {asn}. Our subsidiaries: AS{}.", asn + 1),
        "",
    ))
}

proptest! {
    // A zero-rate injector plus a retrying wrapper over a flawless
    // backend replies bit-identically to the bare backend, request for
    // request, whatever the seeds.
    #[test]
    fn chaos_idle_resilience_stack_is_transparent(
        model_seed in 0u64..500,
        policy_seed in 0u64..500,
        asns in proptest::collection::vec(1u32..10_000, 1..40),
    ) {
        let bare = SimLlm::new(model_seed);
        let stacked = RetryingModel::new(
            FlakyModel::new(SimLlm::new(model_seed), EpisodePlan::none()),
            RetryPolicy::standard(policy_seed),
        );
        for &asn in &asns {
            prop_assert_eq!(
                bare.complete(&request(asn)),
                stacked.complete(&request(asn))
            );
        }
        let stats = stacked.stats();
        prop_assert_eq!(stats.calls, asns.len() as u64);
        prop_assert_eq!(stats.attempts, stats.calls);
        prop_assert_eq!(stats.recovered + stats.abandoned, 0);
    }

    // Calibrated chaos (transient bursts within the retry budget) is
    // erased entirely: same replies as the bare backend, nothing
    // abandoned.
    #[test]
    fn chaos_recoverable_model_faults_are_erased(
        model_seed in 0u64..200,
        chaos_seed in 0u64..200,
        asns in proptest::collection::vec(1u32..10_000, 1..40),
    ) {
        let bare = SimLlm::new(model_seed);
        let stacked = RetryingModel::new(
            FlakyModel::new(SimLlm::new(model_seed), EpisodePlan::calibrated(chaos_seed)),
            RetryPolicy::standard(chaos_seed),
        );
        for &asn in &asns {
            prop_assert_eq!(
                bare.complete(&request(asn)),
                stacked.complete(&request(asn))
            );
        }
        prop_assert_eq!(stacked.stats().abandoned, 0);
    }

    // The full middleware sandwich — cache over retries over chaos —
    // stays transparent, and repeats are served without re-billing.
    #[test]
    fn chaos_cache_composes_with_the_resilience_stack(
        model_seed in 0u64..200,
        asns in proptest::collection::vec(1u32..100, 1..30),
    ) {
        let bare = SimLlm::new(model_seed);
        let stacked = CachingModel::new(RetryingModel::new(
            FlakyModel::new(SimLlm::new(model_seed), EpisodePlan::calibrated(model_seed)),
            RetryPolicy::standard(model_seed),
        ));
        for &asn in &asns {
            // Twice: the second round is all cache hits.
            prop_assert_eq!(
                bare.complete(&request(asn)).unwrap().text,
                stacked.complete(&request(asn)).unwrap().text
            );
            prop_assert_eq!(
                bare.complete(&request(asn)).unwrap().text,
                stacked.complete(&request(asn)).unwrap().text
            );
        }
        prop_assert!(stacked.hits() >= asns.len() as u64);
    }
}
