//! OpenAI chat-completions wire format.
//!
//! The paper drives GPT-4o-mini through OpenAI's chat-completions API.
//! This module converts between the workspace's [`ChatRequest`] /
//! [`ChatResponse`] and the exact JSON bodies that API speaks — the only
//! missing piece of a production backend is the HTTP transport (which is
//! out of scope for this offline environment, deliberately: the adapter
//! is pure and fully testable).
//!
//! ```
//! use borges_llm::openai_wire;
//! use borges_llm::chat::ChatRequest;
//!
//! let body = openai_wire::request_body(&ChatRequest::user("hi"), "gpt-4o-mini");
//! assert_eq!(body["model"], "gpt-4o-mini");
//! assert_eq!(body["temperature"], 0.0);
//! ```

use crate::chat::{ChatRequest, ChatResponse, Content, Role, Usage};
use serde_json::{json, Value};
use std::error::Error;
use std::fmt;

/// Failure to interpret an API response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was missing or malformed.
    pub reason: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "openai response: {}", self.reason)
    }
}

impl Error for WireError {}

fn role_name(role: Role) -> &'static str {
    match role {
        Role::System => "system",
        Role::User => "user",
        Role::Assistant => "assistant",
    }
}

/// Builds the JSON body for `POST /v1/chat/completions`.
///
/// Image parts become `image_url` entries with a `data:` URL carrying the
/// favicon identity — exactly the shape of Listing 3's multimodal message
/// (a production client would substitute the real base64 payload).
pub fn request_body(request: &ChatRequest, model: &str) -> Value {
    let messages: Vec<Value> = request
        .messages
        .iter()
        .map(|message| {
            let needs_parts = message.parts.iter().any(|p| matches!(p, Content::Image { .. }));
            let content: Value = if needs_parts {
                Value::Array(
                    message
                        .parts
                        .iter()
                        .map(|part| match part {
                            Content::Text(text) => json!({"type": "text", "text": text}),
                            Content::Image { favicon } => json!({
                                "type": "image_url",
                                "image_url": {
                                    "url": format!("data:image/x-favicon-hash;base64,{:016x}", favicon.raw())
                                }
                            }),
                        })
                        .collect(),
                )
            } else {
                Value::String(message.joined_text())
            };
            json!({"role": role_name(message.role), "content": content})
        })
        .collect();
    json!({
        "model": model,
        "temperature": request.params.temperature,
        "top_p": request.params.top_p,
        "messages": messages,
    })
}

/// Parses a chat-completions response body into a [`ChatResponse`].
pub fn parse_response(body: &Value) -> Result<ChatResponse, WireError> {
    let text = body["choices"]
        .get(0)
        .and_then(|c| c["message"]["content"].as_str())
        .ok_or(WireError {
            reason: "missing choices[0].message.content",
        })?
        .to_string();
    let usage = Usage {
        prompt_tokens: body["usage"]["prompt_tokens"].as_u64().unwrap_or(0),
        completion_tokens: body["usage"]["completion_tokens"].as_u64().unwrap_or(0),
    };
    Ok(ChatResponse { text, usage })
}

/// Renders the response body a conforming server would send for `response`
/// (used to test the adapter against itself and to mock servers).
pub fn response_body(response: &ChatResponse, model: &str) -> Value {
    json!({
        "id": "chatcmpl-borges",
        "object": "chat.completion",
        "model": model,
        "choices": [{
            "index": 0,
            "message": {"role": "assistant", "content": response.text},
            "finish_reason": "stop",
        }],
        "usage": {
            "prompt_tokens": response.usage.prompt_tokens,
            "completion_tokens": response.usage.completion_tokens,
            "total_tokens": response.usage.total(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::{ChatModel, DecodingParams, Message};
    use crate::prompts::build_classifier_prompt;
    use crate::SimLlm;
    use borges_types::FaviconHash;

    #[test]
    fn request_body_carries_the_papers_decoding_params() {
        let body = request_body(&ChatRequest::user("extract"), "gpt-4o-mini");
        assert_eq!(body["model"], "gpt-4o-mini");
        assert_eq!(body["temperature"], 0.0);
        assert_eq!(body["top_p"], 1.0);
        assert_eq!(body["messages"][0]["role"], "user");
        assert_eq!(body["messages"][0]["content"], "extract");
    }

    #[test]
    fn multimodal_messages_use_part_arrays() {
        let request = ChatRequest {
            messages: vec![Message {
                role: Role::User,
                parts: vec![
                    Content::Text(build_classifier_prompt(&["https://a.com/".into()])),
                    Content::Image {
                        favicon: FaviconHash::from_raw(0xabcd),
                    },
                ],
            }],
            params: DecodingParams::deterministic(),
        };
        let body = request_body(&request, "gpt-4o-mini");
        let parts = body["messages"][0]["content"].as_array().unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0]["type"], "text");
        assert_eq!(parts[1]["type"], "image_url");
        assert!(parts[1]["image_url"]["url"]
            .as_str()
            .unwrap()
            .starts_with("data:image/"));
    }

    #[test]
    fn response_roundtrip() {
        let original = ChatResponse {
            text: r#"[{"asn": 209, "reason": "sibling"}]"#.to_string(),
            usage: Usage {
                prompt_tokens: 120,
                completion_tokens: 14,
            },
        };
        let body = response_body(&original, "gpt-4o-mini");
        let back = parse_response(&body).unwrap();
        assert_eq!(back, original);
        assert_eq!(body["usage"]["total_tokens"], 134);
    }

    #[test]
    fn malformed_responses_are_rejected() {
        assert!(parse_response(&json!({})).is_err());
        assert!(parse_response(&json!({"choices": []})).is_err());
        assert!(parse_response(&json!({"choices": [{"message": {}}]})).is_err());
    }

    #[test]
    fn simllm_over_the_wire_equals_simllm_direct() {
        // A "server" backed by SimLlm, spoken to through the wire format,
        // must reproduce the direct call exactly — the adapter adds and
        // loses nothing.
        let llm = SimLlm::new(7);
        let request = ChatRequest::user(crate::prompts::build_ie_prompt(
            borges_types::Asn::new(3320),
            "Our subsidiaries: AS6855.",
            "",
        ));
        let direct = llm.complete(&request).unwrap();

        let wire_request = request_body(&request, "gpt-4o-mini");
        // The "server" reconstructs the text and answers.
        let served_text = wire_request["messages"][0]["content"].as_str().unwrap();
        let served = llm.complete(&ChatRequest::user(served_text)).unwrap();
        let wire_response = response_body(&served, "gpt-4o-mini");
        let back = parse_response(&wire_response).unwrap();
        assert_eq!(back.text, direct.text);
    }
}
