//! [`SimLlm`]: the simulated GPT-4o-mini behind [`ChatModel`].
//!
//! `SimLlm` receives the same rendered prompts a real model would, decides
//! which task it is being asked to perform by reading them, and answers in
//! the same textual formats. The pipeline cannot tell it apart from a real
//! backend — swap in an HTTP adapter implementing [`ChatModel`] and
//! nothing else changes.

use crate::chat::{ChatModel, ChatRequest, ChatResponse};
use crate::classifier::{classify_favicon_group, FaviconVerdict};
use crate::faults::FaultProfile;
use crate::ner::{all_routable_numbers, extract_siblings};
use crate::prompts::{
    parse_classifier_prompt_fields, parse_ie_prompt_fields, render_ie_reply, IeFinding,
};
use borges_resilience::TransportError;
use borges_types::{Asn, Url};

/// The deterministic simulated LLM.
///
/// Construct with [`SimLlm::new`] for paper-calibrated error rates, or
/// [`SimLlm::flawless`] to study the pipeline with a perfect extractor
/// (ablation baseline).
#[derive(Debug, Clone)]
pub struct SimLlm {
    faults: FaultProfile,
    model_id: String,
}

impl SimLlm {
    /// A model with the given fault profile.
    pub fn with_faults(faults: FaultProfile) -> Self {
        SimLlm {
            faults,
            model_id: "sim-gpt-4o-mini".to_string(),
        }
    }

    /// The paper-calibrated model (GPT-4o-mini error rates, seeded).
    pub fn new(seed: u64) -> Self {
        Self::with_faults(FaultProfile::gpt4o_mini(seed))
    }

    /// A fault-free model whose only errors are genuine reasoning limits.
    pub fn flawless() -> Self {
        Self::with_faults(FaultProfile::none())
    }

    /// The active fault profile.
    pub fn faults(&self) -> FaultProfile {
        self.faults
    }

    fn answer_ie(&self, subject: Asn, notes: &str, aka: &str) -> String {
        let mut findings: Vec<IeFinding> = extract_siblings(subject, notes, aka)
            .into_iter()
            .filter(|e| !self.faults.drops(subject, e.asn))
            .map(|e| IeFinding {
                asn: e.asn,
                reason: e.reason,
            })
            .collect();

        // Fabrications: numbers present in the text that the reasoning
        // rejected can still slip through at the spurious rate.
        let already: std::collections::BTreeSet<u32> =
            findings.iter().map(|f| f.asn.value()).collect();
        let full_text = format!("{notes}\n{aka}");
        for value in all_routable_numbers(&full_text) {
            if value != subject.value()
                && !already.contains(&value)
                && self.faults.fabricates(subject, value)
            {
                findings.push(IeFinding {
                    asn: Asn::new(value),
                    reason: "mentioned in the provided fields".to_string(),
                });
            }
        }
        render_ie_reply(&findings)
    }

    fn answer_classifier(&self, request: &ChatRequest, urls: &[String]) -> String {
        let favicon = match request.image() {
            Some(f) => f,
            None => return "I don't know".to_string(),
        };
        let parsed: Vec<Url> = urls.iter().filter_map(|u| u.parse().ok()).collect();
        if parsed.len() != urls.len() {
            return "I don't know".to_string();
        }
        match classify_favicon_group(favicon, &parsed) {
            FaviconVerdict::Company(name) => name,
            FaviconVerdict::Framework(name) => name,
            FaviconVerdict::Unknown => "I don't know".to_string(),
        }
    }
}

impl ChatModel for SimLlm {
    // The simulated backend itself is never flaky: transport faults enter
    // through `FlakyModel`, keeping fault injection orthogonal to the
    // extraction-accuracy faults `FaultProfile` models.
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        assert!(
            request.params.is_deterministic(),
            "SimLlm reproduces the paper's temperature-0/top-p-1 setting only; \
             got temperature={}, top_p={}",
            request.params.temperature,
            request.params.top_p
        );
        let text = request.full_text();
        let reply = if let Some(fields) = parse_ie_prompt_fields(&text) {
            self.answer_ie(fields.asn, &fields.notes, &fields.aka)
        } else if let Some(urls) = parse_classifier_prompt_fields(&text) {
            self.answer_classifier(request, &urls)
        } else {
            "I don't know".to_string()
        };
        let usage = crate::chat::Usage::estimate(&text, &reply);
        Ok(ChatResponse { text: reply, usage })
    }

    fn model_id(&self) -> &str {
        &self.model_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::{Content, Message, Role};
    use crate::prompts::{build_classifier_prompt, build_ie_prompt, parse_ie_reply};
    use borges_types::FaviconHash;

    fn ie_request(asn: u32, notes: &str, aka: &str) -> ChatRequest {
        ChatRequest::user(build_ie_prompt(Asn::new(asn), notes, aka))
    }

    #[test]
    fn ie_end_to_end() {
        let llm = SimLlm::flawless();
        let req = ie_request(3320, "Our subsidiaries: AS6855 and AS5391.", "");
        let reply = llm.complete(&req).unwrap();
        let findings = parse_ie_reply(&reply.text);
        let mut asns: Vec<u32> = findings.iter().map(|f| f.asn.value()).collect();
        asns.sort_unstable();
        assert_eq!(asns, vec![5391, 6855]);
    }

    #[test]
    fn classifier_end_to_end() {
        let llm = SimLlm::flawless();
        let urls = vec![
            "https://www.orange.es/".to_string(),
            "https://www.orange.pl/".to_string(),
        ];
        let req = ChatRequest {
            messages: vec![Message {
                role: Role::User,
                parts: vec![
                    Content::Text(build_classifier_prompt(&urls)),
                    Content::Image {
                        favicon: FaviconHash::of_bytes(b"brand:orange"),
                    },
                ],
            }],
            params: Default::default(),
        };
        assert_eq!(llm.complete(&req).unwrap().text, "Orange");
    }

    #[test]
    fn classifier_without_image_declines() {
        let llm = SimLlm::flawless();
        let req = ChatRequest::user(build_classifier_prompt(&["https://a.com/".to_string()]));
        assert_eq!(llm.complete(&req).unwrap().text, "I don't know");
    }

    #[test]
    fn unknown_prompt_declines() {
        let llm = SimLlm::flawless();
        assert_eq!(
            llm.complete(&ChatRequest::user("hello")).unwrap().text,
            "I don't know"
        );
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn non_deterministic_params_are_refused() {
        let llm = SimLlm::flawless();
        let mut req = ChatRequest::user("hi");
        req.params.temperature = 0.7;
        let _ = llm.complete(&req);
    }

    #[test]
    fn faulty_model_is_deterministic() {
        let llm = SimLlm::new(42);
        let req = ie_request(1, "Siblings: AS100, AS200, AS300, AS400.", "");
        let a = llm.complete(&req).unwrap().text;
        let b = llm.complete(&req).unwrap().text;
        assert_eq!(a, b);
    }

    #[test]
    fn fault_profile_changes_output_somewhere() {
        // Across many records, an injected-fault model must diverge from a
        // flawless one.
        let flawless = SimLlm::flawless();
        let faulty = SimLlm::with_faults(FaultProfile {
            miss_rate: 0.5,
            spurious_rate: 0.0,
            seed: 3,
        });
        let mut diverged = false;
        for asn in 1..50u32 {
            let req = ie_request(asn, "Our subsidiaries: AS1111, AS2222.", "");
            if flawless.complete(&req).unwrap().text != faulty.complete(&req).unwrap().text {
                diverged = true;
                break;
            }
        }
        assert!(diverged);
    }

    #[test]
    fn fabrications_only_use_numbers_present_in_text() {
        let llm = SimLlm::with_faults(FaultProfile {
            miss_rate: 0.0,
            spurious_rate: 1.0,
            seed: 1,
        });
        let req = ie_request(1, "Upstream providers: AS174. Phone 555.", "");
        let findings = parse_ie_reply(&llm.complete(&req).unwrap().text);
        for f in &findings {
            assert!(
                [174u32, 555].contains(&f.asn.value()),
                "fabricated {} out of thin air",
                f.asn
            );
        }
    }

    #[test]
    fn model_id_is_stable() {
        assert_eq!(SimLlm::flawless().model_id(), "sim-gpt-4o-mini");
    }
}
