//! The paper's prompts as templates, and reply parsing.
//!
//! Listing 2 (information extraction over `notes`/`aka`) and Listing 3
//! (favicon/URL company classification) are reproduced here as the exact
//! text the pipeline sends. Because prompts are owned by this module, so
//! are their inverses: [`parse_ie_prompt_fields`] and
//! [`parse_classifier_prompt_fields`] recover the structured fields from a
//! rendered prompt (this is what the simulated model "reads"), and
//! [`parse_ie_reply`] / [`parse_classifier_reply`] turn model completions
//! back into structured data for the pipeline.

use borges_types::Asn;
use serde::{Deserialize, Serialize};

/// The paper's JSON output contract appended to the IE prompt
/// (`{format_instructions}` in Listing 2).
pub const IE_FORMAT_INSTRUCTIONS: &str = "Reply with a JSON array, one object per sibling AS, \
shaped like [{\"asn\": 3320, \"reason\": \"...\"}]. Reply [] if there are no siblings.";

/// Renders the information-extraction prompt of Listing 2.
///
/// The wording follows the paper's released prompt: the model must report
/// only ASNs operated by the same organization, ignore upstream/connectivity
/// mentions and `as-in`/`as-out` sections, and only report numbers that are
/// explicitly present in the fields.
pub fn build_ie_prompt(asn: Asn, notes: &str, aka: &str) -> String {
    format!(
        "You are a network topology expert who wants to find Autonomous Systems (ASs) that \
belong to the same organization by reading the peeringdb information.\n\
\n\
Please inform the ASs that are peering with the original AS.\n\
Don't inform the AS that the original AS is connected to, inform the ones that are peering \
as the same organization.\n\
If some AS number is mentioned in the 'as-in' and 'as-out' sections in the Notes field, it \
doesn't mean that they belong to the same organization.\n\
\n\
The PeeringDB information for the ASN {asn_num} is:\n\
\n\
Notes: <<<{notes}>>>\n\
\n\
AKA: <<<{aka}>>>\n\
\n\
{format_instructions}\n\
\n\
Just inform an AS if its number is explicitly written in the AKA or Notes fields provided.\n\
You don't know the relation between a company name and its AS number.\n\
Also explain why you choose the ASs informed.\n",
        asn_num = asn.value(),
        notes = notes,
        aka = aka,
        format_instructions = IE_FORMAT_INSTRUCTIONS,
    )
}

/// The structured fields of a rendered IE prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IePromptFields {
    /// The subject network's ASN.
    pub asn: Asn,
    /// The `notes` field verbatim.
    pub notes: String,
    /// The `aka` field verbatim.
    pub aka: String,
}

/// Recovers [`IePromptFields`] from a rendered IE prompt. Returns `None`
/// for prompts not produced by [`build_ie_prompt`].
pub fn parse_ie_prompt_fields(prompt: &str) -> Option<IePromptFields> {
    let asn_str = substr_between(prompt, "for the ASN ", " is:")?;
    let asn: Asn = asn_str.trim().parse().ok()?;
    let notes = substr_between(prompt, "Notes: <<<", ">>>")?;
    let after_notes = &prompt[prompt.find("Notes: <<<")? + 10 + notes.len()..];
    let aka = substr_between(after_notes, "AKA: <<<", ">>>")?;
    Some(IePromptFields {
        asn,
        notes: notes.to_string(),
        aka: aka.to_string(),
    })
}

/// One sibling finding in an IE reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IeFinding {
    /// The extracted sibling ASN.
    pub asn: Asn,
    /// The model's stated justification.
    pub reason: String,
}

/// Serializes findings into the reply format the IE contract demands
/// (used by simulated models).
pub fn render_ie_reply(findings: &[IeFinding]) -> String {
    serde_json::to_string(findings).expect("findings serialize")
}

/// Parses an IE completion into findings.
///
/// Tolerates prose around the JSON array (real models often add
/// explanation despite instructions); the first well-formed JSON array in
/// the text wins. Returns an empty list when no array parses — the safe
/// reading of a confused reply.
pub fn parse_ie_reply(reply: &str) -> Vec<IeFinding> {
    for (start, _) in reply.match_indices('[') {
        let tail = &reply[start..];
        // Find the matching close bracket by scanning depth.
        let mut depth = 0usize;
        for (off, ch) in tail.char_indices() {
            match ch {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        let candidate = &tail[..=off];
                        if let Ok(findings) = serde_json::from_str::<Vec<IeFinding>>(candidate) {
                            return findings;
                        }
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    Vec::new()
}

/// Renders the classification prompt of Listing 3. The favicon image is
/// attached separately as a [`Content::Image`](crate::chat::Content) part;
/// this function renders the text part.
pub fn build_classifier_prompt(final_urls: &[String]) -> String {
    format!(
        "Accessing these URLs [{urls}] returned the attached favicon. If it is a \
telecommunications company, what is the company's name? If it is a subsidiary, provide the \
parent company's name. If it is not a telecommunications company, is it a hosting \
technology? Reply only with the name of the company or technology. If it is none of the \
above, reply 'I don't know'.",
        urls = final_urls.join(", "),
    )
}

/// Recovers the URL list from a rendered classification prompt.
pub fn parse_classifier_prompt_fields(prompt: &str) -> Option<Vec<String>> {
    let urls = substr_between(prompt, "Accessing these URLs [", "] returned")?;
    Some(
        urls.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
    )
}

/// A parsed classifier completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifierReply {
    /// The model named a company or technology.
    Name(String),
    /// The model declined (`"I don't know"`).
    DontKnow,
}

/// Parses a classification completion. Any spelling of "I don't know"
/// (case/punctuation-insensitive) maps to [`ClassifierReply::DontKnow`];
/// everything else is treated as a name, trimmed of quotes and periods.
pub fn parse_classifier_reply(reply: &str) -> ClassifierReply {
    let t = reply
        .trim()
        .trim_matches(|c: char| c == '"' || c == '\'' || c == '.' || c == '!')
        .trim();
    let folded: String = t
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    if folded == "idontknow" || folded == "idk" || folded.is_empty() {
        ClassifierReply::DontKnow
    } else {
        ClassifierReply::Name(t.to_string())
    }
}

fn substr_between<'a>(text: &'a str, open: &str, close: &str) -> Option<&'a str> {
    let start = text.find(open)? + open.len();
    let end = text[start..].find(close)? + start;
    Some(&text[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ie_prompt_roundtrips_fields() {
        let notes = "Siblings: AS209 and AS3549.\nUpstream: AS174";
        let aka = "Level 3, Lumen";
        let prompt = build_ie_prompt(Asn::new(3356), notes, aka);
        let fields = parse_ie_prompt_fields(&prompt).unwrap();
        assert_eq!(fields.asn, Asn::new(3356));
        assert_eq!(fields.notes, notes);
        assert_eq!(fields.aka, aka);
    }

    #[test]
    fn ie_prompt_mentions_the_restrictions() {
        let prompt = build_ie_prompt(Asn::new(1), "", "");
        assert!(prompt.contains("as-in"));
        assert!(prompt.contains("explicitly written"));
        assert!(prompt.contains(IE_FORMAT_INSTRUCTIONS));
    }

    #[test]
    fn ie_reply_roundtrip() {
        let findings = vec![
            IeFinding {
                asn: Asn::new(209),
                reason: "listed as sibling".into(),
            },
            IeFinding {
                asn: Asn::new(3549),
                reason: "former Global Crossing".into(),
            },
        ];
        let text = render_ie_reply(&findings);
        assert_eq!(parse_ie_reply(&text), findings);
    }

    #[test]
    fn ie_reply_tolerates_surrounding_prose() {
        let text = "Sure! Here are the siblings:\n[{\"asn\": 209, \"reason\": \"sibling\"}]\nHope that helps.";
        let parsed = parse_ie_reply(text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].asn, Asn::new(209));
    }

    #[test]
    fn ie_reply_empty_and_garbage() {
        assert!(parse_ie_reply("[]").is_empty());
        assert!(parse_ie_reply("no JSON here").is_empty());
        assert!(
            parse_ie_reply("[1, 2, 3]").is_empty(),
            "wrong element shape"
        );
    }

    #[test]
    fn ie_reply_skips_malformed_array_and_finds_later_one() {
        let text = "[broken [{\"asn\": 7, \"reason\": \"x\"}]";
        let parsed = parse_ie_reply(text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].asn, Asn::new(7));
    }

    #[test]
    fn classifier_prompt_roundtrips_urls() {
        let urls = vec![
            "https://www.clarochile.cl/personas/".to_string(),
            "https://www.claropr.com/personas/".to_string(),
        ];
        let prompt = build_classifier_prompt(&urls);
        assert_eq!(parse_classifier_prompt_fields(&prompt).unwrap(), urls);
    }

    #[test]
    fn classifier_reply_parsing() {
        assert_eq!(
            parse_classifier_reply("Claro"),
            ClassifierReply::Name("Claro".into())
        );
        assert_eq!(
            parse_classifier_reply("\"WordPress\"."),
            ClassifierReply::Name("WordPress".into())
        );
        assert_eq!(
            parse_classifier_reply("I don't know"),
            ClassifierReply::DontKnow
        );
        assert_eq!(
            parse_classifier_reply("I DON'T KNOW."),
            ClassifierReply::DontKnow
        );
        assert_eq!(parse_classifier_reply("  "), ClassifierReply::DontKnow);
    }
}
