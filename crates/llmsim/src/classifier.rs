//! The favicon/domain company-vs-framework decision.
//!
//! §4.3.3 of the paper: once final URLs are grouped by shared favicon, the
//! ambiguous groups are handed to GPT-4o-mini with the favicon image and
//! the URL list, asking whether they identify one company (possibly via a
//! parent brand) or a web technology's default icon (Bootstrap, WordPress,
//! GoDaddy, IXC Soft, …).
//!
//! The simulated model reasons the way the real one does, from two
//! information sources:
//!
//! * **Pretraining knowledge of default icons** — GPT recognizes the
//!   Bootstrap/WordPress default favicon on sight. The simulator encodes
//!   this as a well-known byte convention: a framework's default favicon is
//!   `FaviconHash::of_bytes(b"framework:<name>")` (see
//!   [`framework_favicon`]). The synthetic-web generator uses the same
//!   convention, exactly as the real web serves the same default bytes
//!   everywhere.
//! * **Brand reasoning over the URLs** — shared brand tokens across domain
//!   names (`clarochile.cl` / `claropr.com` → "claro") identify a company;
//!   structurally unrelated domains do not. This reproduces the paper's
//!   DE-CIX false negative: `de-cix.net`, `aqaba-ix.net` and `ruhr-cix.net`
//!   share a favicon but no brand token, so the classifier declines.

use borges_types::{FaviconHash, Url};

/// Well-known web technologies whose default favicons appear across many
/// unrelated sites (§4.3.3 names Bootstrap, WordPress, GoDaddy and IXC
/// Soft; the rest are common in the same ecosystem).
pub const KNOWN_FRAMEWORKS: &[&str] = &[
    "bootstrap",
    "wordpress",
    "godaddy",
    "ixc soft",
    "wix",
    "squarespace",
    "joomla",
    "drupal",
    "cpanel",
    "plesk",
    "mikrotik",
];

/// The content hash of a framework's default favicon, under the workspace
/// byte convention `framework:<name>`.
pub fn framework_favicon(name: &str) -> FaviconHash {
    FaviconHash::of_bytes(format!("framework:{}", name.to_ascii_lowercase()).as_bytes())
}

/// Looks up a favicon hash against the known default-favicon table,
/// returning the technology's display name.
pub fn known_framework_of(favicon: FaviconHash) -> Option<&'static str> {
    KNOWN_FRAMEWORKS
        .iter()
        .find(|name| framework_favicon(name) == favicon)
        .copied()
}

/// The classifier's verdict for one favicon group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaviconVerdict {
    /// The group identifies one company (the brand name follows).
    Company(String),
    /// The favicon is a web technology's default icon.
    Framework(String),
    /// The model cannot tell ("I don't know") — treated as *not* one
    /// company.
    Unknown,
}

/// Minimum shared-prefix length for brand-token matching. Shorter prefixes
/// ("te", "net") match half the industry and would conflate everyone.
const MIN_BRAND_PREFIX: usize = 4;

/// Classifies a favicon shared by a set of final URLs.
///
/// Decision order (mirroring how the multimodal model weighs evidence):
/// 1. a recognized default icon ⇒ [`FaviconVerdict::Framework`];
/// 2. all URLs share a brand token (identical brand labels, or a common
///    prefix of length ≥ 4 spanning every label) ⇒
///    [`FaviconVerdict::Company`];
/// 3. otherwise ⇒ [`FaviconVerdict::Unknown`].
pub fn classify_favicon_group(favicon: FaviconHash, urls: &[Url]) -> FaviconVerdict {
    if let Some(name) = known_framework_of(favicon) {
        return FaviconVerdict::Framework(display_name(name));
    }
    let labels: Vec<&str> = urls.iter().filter_map(Url::brand_label).collect();
    if labels.is_empty() {
        return FaviconVerdict::Unknown;
    }
    if labels.len() < urls.len() {
        // Some URL had no extractable brand (bare TLD, single label) — the
        // evidence is incomplete; decline rather than guess.
        return FaviconVerdict::Unknown;
    }
    if labels.iter().all(|l| *l == labels[0]) {
        return FaviconVerdict::Company(display_name(labels[0]));
    }
    let prefix = common_prefix(&labels);
    if prefix.len() >= MIN_BRAND_PREFIX {
        return FaviconVerdict::Company(display_name(&prefix));
    }
    FaviconVerdict::Unknown
}

fn common_prefix(labels: &[&str]) -> String {
    let first = labels[0];
    let mut len = first.len();
    for label in &labels[1..] {
        let shared = first
            .bytes()
            .zip(label.bytes())
            .take_while(|(a, b)| a == b)
            .count();
        len = len.min(shared);
        if len == 0 {
            break;
        }
    }
    // Don't cut multi-byte chars (brand labels are ASCII in practice, but
    // hosts are user input).
    while len > 0 && !first.is_char_boundary(len) {
        len -= 1;
    }
    first[..len].to_string()
}

fn display_name(token: &str) -> String {
    let mut chars = token.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls(list: &[&str]) -> Vec<Url> {
        list.iter().map(|s| s.parse().unwrap()).collect()
    }

    fn icon(name: &str) -> FaviconHash {
        FaviconHash::of_bytes(format!("brand:{name}").as_bytes())
    }

    #[test]
    fn identical_brand_labels_are_one_company() {
        let v = classify_favicon_group(
            icon("orange"),
            &urls(&["https://www.orange.es/", "https://www.orange.pl/"]),
        );
        assert_eq!(v, FaviconVerdict::Company("Orange".into()));
    }

    #[test]
    fn claro_prefix_case_resolves() {
        // The paper's running example: clarochile.cl vs claropr.com share
        // the favicon and the "claro" prefix.
        let v = classify_favicon_group(
            icon("claro"),
            &urls(&[
                "https://www.clarochile.cl/personas/",
                "https://www.claropr.com/personas/",
                "https://www.claro.com.do/personas/",
            ]),
        );
        assert_eq!(v, FaviconVerdict::Company("Claro".into()));
    }

    #[test]
    fn bootstrap_default_icon_is_a_framework() {
        let v = classify_favicon_group(
            framework_favicon("bootstrap"),
            &urls(&[
                "https://www.anosbd.com/",
                "https://www.rptechzone.in/",
                "https://bapenda.riau.go.id/",
            ]),
        );
        assert_eq!(v, FaviconVerdict::Framework("Bootstrap".into()));
    }

    #[test]
    fn decix_style_unrelated_labels_decline() {
        // §5.3's reported miss: same favicon, structurally unrelated names.
        let v = classify_favicon_group(
            icon("de-cix"),
            &urls(&[
                "https://www.de-cix.net/",
                "https://www.aqaba-ix.net/",
                "https://www.ruhr-cix.net/",
            ]),
        );
        assert_eq!(v, FaviconVerdict::Unknown);
    }

    #[test]
    fn short_shared_prefixes_do_not_conflate() {
        let v = classify_favicon_group(
            icon("x"),
            &urls(&["https://www.tela.com/", "https://www.tenet.org/"]),
        );
        assert_eq!(v, FaviconVerdict::Unknown);
    }

    #[test]
    fn single_url_is_its_own_company() {
        let v = classify_favicon_group(icon("lumen"), &urls(&["https://www.lumen.com/"]));
        assert_eq!(v, FaviconVerdict::Company("Lumen".into()));
    }

    #[test]
    fn missing_brand_labels_decline() {
        let v = classify_favicon_group(icon("x"), &urls(&["http://localhost/"]));
        assert_eq!(v, FaviconVerdict::Unknown);
        let v = classify_favicon_group(icon("x"), &[]);
        assert_eq!(v, FaviconVerdict::Unknown);
    }

    #[test]
    fn framework_table_is_self_consistent() {
        for name in KNOWN_FRAMEWORKS {
            assert_eq!(known_framework_of(framework_favicon(name)), Some(*name));
        }
        assert_eq!(known_framework_of(icon("claro")), None);
    }
}
