//! Model middleware: caching and call recording.
//!
//! Production pipelines never hit a paid API twice with the same prompt —
//! the paper's temperature-0 setting makes completions cacheable by
//! construction. [`CachingModel`] memoizes any inner [`ChatModel`];
//! [`RecordingModel`] keeps an audit log of every call (the raw material
//! for the manual accuracy audits of §5.3).

use crate::chat::{ChatModel, ChatRequest, ChatResponse, Usage};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Memoizes completions of an inner model, keyed by the full request
/// (text + attached image + decoding parameters).
///
/// With a remote backend this saves real money on re-runs; the cache also
/// makes retried pipelines deterministic even against a provider that
/// updates weights mid-experiment.
pub struct CachingModel<M> {
    inner: M,
    cache: Mutex<HashMap<String, ChatResponse>>,
    hits: Mutex<u64>,
}

impl<M: ChatModel> CachingModel<M> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: M) -> Self {
        CachingModel {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: Mutex::new(0),
        }
    }

    /// Completions served from cache so far.
    pub fn hits(&self) -> u64 {
        *self.hits.lock()
    }

    /// Distinct requests seen so far.
    pub fn entries(&self) -> usize {
        self.cache.lock().len()
    }

    fn key(request: &ChatRequest) -> String {
        let image = request.image().map(|f| f.to_string()).unwrap_or_default();
        format!(
            "{}\u{0}{}\u{0}{}\u{0}{}",
            request.full_text(),
            image,
            request.params.temperature,
            request.params.top_p
        )
    }
}

impl<M: ChatModel> ChatModel for CachingModel<M> {
    fn complete(&self, request: &ChatRequest) -> ChatResponse {
        let key = Self::key(request);
        if let Some(hit) = self.cache.lock().get(&key) {
            *self.hits.lock() += 1;
            // A cache hit costs no tokens.
            return ChatResponse {
                text: hit.text.clone(),
                usage: Usage::default(),
            };
        }
        let response = self.inner.complete(request);
        self.cache.lock().insert(key, response.clone());
        response
    }

    fn model_id(&self) -> &str {
        self.inner.model_id()
    }
}

/// One audited model call.
#[derive(Debug, Clone)]
pub struct CallRecord {
    /// The rendered prompt text.
    pub prompt: String,
    /// The completion text.
    pub reply: String,
    /// Token accounting.
    pub usage: Usage,
}

/// Records every call to an inner model — the audit log a §5.3-style
/// manual accuracy review reads.
pub struct RecordingModel<M> {
    inner: M,
    log: Mutex<Vec<CallRecord>>,
}

impl<M: ChatModel> RecordingModel<M> {
    /// Wraps `inner` with an empty log.
    pub fn new(inner: M) -> Self {
        RecordingModel {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of the call log.
    pub fn log(&self) -> Vec<CallRecord> {
        self.log.lock().clone()
    }

    /// Number of calls made.
    pub fn calls(&self) -> usize {
        self.log.lock().len()
    }

    /// Aggregate token usage across calls.
    pub fn total_usage(&self) -> Usage {
        self.log
            .lock()
            .iter()
            .fold(Usage::default(), |acc, r| acc + r.usage)
    }
}

impl<M: ChatModel> ChatModel for RecordingModel<M> {
    fn complete(&self, request: &ChatRequest) -> ChatResponse {
        let response = self.inner.complete(request);
        self.log.lock().push(CallRecord {
            prompt: request.full_text(),
            reply: response.text.clone(),
            usage: response.usage,
        });
        response
    }

    fn model_id(&self) -> &str {
        self.inner.model_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts::build_ie_prompt;
    use crate::SimLlm;
    use borges_types::Asn;

    fn request(asn: u32) -> ChatRequest {
        ChatRequest::user(build_ie_prompt(
            Asn::new(asn),
            "Our subsidiaries: AS100.",
            "",
        ))
    }

    #[test]
    fn caching_serves_repeats_for_free() {
        let model = CachingModel::new(SimLlm::flawless());
        let first = model.complete(&request(1));
        assert!(first.usage.total() > 0, "first call bills tokens");
        let second = model.complete(&request(1));
        assert_eq!(second.text, first.text);
        assert_eq!(second.usage.total(), 0, "cache hits are free");
        assert_eq!(model.hits(), 1);
        assert_eq!(model.entries(), 1);
    }

    #[test]
    fn distinct_requests_miss() {
        let model = CachingModel::new(SimLlm::flawless());
        model.complete(&request(1));
        model.complete(&request(2));
        assert_eq!(model.hits(), 0);
        assert_eq!(model.entries(), 2);
    }

    #[test]
    fn cache_is_transparent_to_the_pipeline() {
        // Same replies, with or without the cache.
        let plain = SimLlm::new(3);
        let cached = CachingModel::new(SimLlm::new(3));
        for asn in [1u32, 2, 1, 3, 2] {
            assert_eq!(
                plain.complete(&request(asn)).text,
                cached.complete(&request(asn)).text
            );
        }
    }

    #[test]
    fn recording_keeps_the_audit_trail() {
        let model = RecordingModel::new(SimLlm::flawless());
        model.complete(&request(1));
        model.complete(&request(2));
        assert_eq!(model.calls(), 2);
        let log = model.log();
        assert!(log[0].prompt.contains("ASN 1"));
        assert!(log[1].prompt.contains("ASN 2"));
        assert!(log[0].reply.contains("100"));
        assert!(model.total_usage().total() > 0);
    }

    #[test]
    fn middleware_composes() {
        let model = RecordingModel::new(CachingModel::new(SimLlm::flawless()));
        model.complete(&request(1));
        model.complete(&request(1));
        assert_eq!(model.calls(), 2, "recorder sees both calls");
        assert_eq!(model.model_id(), "sim-gpt-4o-mini", "id passes through");
    }
}
