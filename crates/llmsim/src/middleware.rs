//! Model middleware: caching, call recording, fault injection, recovery.
//!
//! Production pipelines never hit a paid API twice with the same prompt —
//! the paper's temperature-0 setting makes completions cacheable by
//! construction. [`CachingModel`] memoizes any inner [`ChatModel`];
//! [`RecordingModel`] keeps an audit log of every call (the raw material
//! for the manual accuracy audits of §5.3); [`FlakyModel`] injects the
//! seeded transport faults a hosted chat API really produces (429s, 500s,
//! timeouts, truncated streaming replies); [`RetryingModel`] absorbs the
//! recoverable ones with deterministic backoff and accounts for the rest.

use crate::chat::{ChatModel, ChatRequest, ChatResponse, Usage};
use borges_resilience::{
    stable_hash, BreakerConfig, BreakerVerdict, CircuitBreaker, Clock, EpisodePlan, FaultInjector,
    ResilienceStats, RetryPolicy, SimClock, TransportError,
};
use borges_telemetry::{BreakerEvent, CacheStats, Telemetry};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// The canonical identity of a request: full text, attached image, and
/// decoding parameters. Both the cache and the fault injector key by it,
/// so "the same request" means the same thing everywhere.
fn request_fingerprint(request: &ChatRequest) -> String {
    let image = request.image().map(|f| f.to_string()).unwrap_or_default();
    format!(
        "{}\u{0}{}\u{0}{}\u{0}{}",
        request.full_text(),
        image,
        request.params.temperature,
        request.params.top_p
    )
}

/// Cache map, insertion order, and counters behind ONE mutex: a reader
/// always observes a consistent `(hits, entries, evictions)` triple.
/// (The previous design kept `hits` under its own lock, so a concurrent
/// reader could see the hit counted before the entry existed — a torn
/// read this struct makes impossible by construction.)
struct CacheState {
    entries: HashMap<String, ChatResponse>,
    /// Insertion order, oldest first — the eviction queue.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Memoizes completions of an inner model, keyed by the full request
/// (text + attached image + decoding parameters).
///
/// With a remote backend this saves real money on re-runs; the cache also
/// makes retried pipelines deterministic even against a provider that
/// updates weights mid-experiment. Transport errors are never cached —
/// only a delivered completion is a fact worth memoizing.
///
/// An optional entry cap bounds memory: when full, the oldest entry (by
/// insertion) is evicted. Unbounded by default, matching a single
/// pipeline run where every distinct prompt is needed again.
pub struct CachingModel<M> {
    inner: M,
    state: Mutex<CacheState>,
    capacity: Option<usize>,
}

impl<M: ChatModel> CachingModel<M> {
    /// Wraps `inner` with an empty, unbounded cache.
    pub fn new(inner: M) -> Self {
        CachingModel {
            inner,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: None,
        }
    }

    /// Wraps `inner` with a cache holding at most `capacity` entries
    /// (oldest-first eviction). `capacity` must be nonzero.
    pub fn with_capacity(inner: M, capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-entry cache cannot hold anything");
        let mut model = CachingModel::new(inner);
        model.capacity = Some(capacity);
        model
    }

    /// Completions served from cache so far.
    pub fn hits(&self) -> u64 {
        self.state.lock().hits
    }

    /// Distinct requests currently cached.
    pub fn entries(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Requests that fell through to the inner model.
    pub fn misses(&self) -> u64 {
        self.state.lock().misses
    }

    /// Entries evicted to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.state.lock().evictions
    }

    /// One consistent `(hits, misses, evictions, entries)` reading, as a
    /// run-ledger row. A failed inner call still counts as a miss — the
    /// cache was consulted and could not help.
    pub fn cache_stats(&self) -> CacheStats {
        let state = self.state.lock();
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.entries.len() as u64,
        }
    }
}

impl<M: ChatModel> ChatModel for CachingModel<M> {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        let key = request_fingerprint(request);
        if let Some(hit) = {
            let mut state = self.state.lock();
            let found = state.entries.get(&key).map(|r| r.text.clone());
            if found.is_some() {
                state.hits += 1;
            } else {
                state.misses += 1;
            }
            found
        } {
            // A cache hit costs no tokens.
            return Ok(ChatResponse {
                text: hit,
                usage: Usage::default(),
            });
        }
        // The inner call runs outside the lock: a slow (or retrying)
        // backend must not serialize unrelated cache traffic.
        let response = self.inner.complete(request)?;
        let mut state = self.state.lock();
        if state
            .entries
            .insert(key.clone(), response.clone())
            .is_none()
        {
            state.order.push_back(key);
            if let Some(cap) = self.capacity {
                while state.entries.len() > cap {
                    let oldest = state.order.pop_front().expect("order tracks entries");
                    state.entries.remove(&oldest);
                    state.evictions += 1;
                }
            }
        }
        Ok(response)
    }

    fn model_id(&self) -> &str {
        self.inner.model_id()
    }
}

/// One audited model call.
#[derive(Debug, Clone)]
pub struct CallRecord {
    /// The rendered prompt text.
    pub prompt: String,
    /// The completion text.
    pub reply: String,
    /// Token accounting.
    pub usage: Usage,
}

/// Records every delivered completion of an inner model — the audit log a
/// §5.3-style manual accuracy review reads. Transport errors propagate
/// without an entry: there is no reply to audit.
pub struct RecordingModel<M> {
    inner: M,
    log: Mutex<Vec<CallRecord>>,
}

impl<M: ChatModel> RecordingModel<M> {
    /// Wraps `inner` with an empty log.
    pub fn new(inner: M) -> Self {
        RecordingModel {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of the call log.
    pub fn log(&self) -> Vec<CallRecord> {
        self.log.lock().clone()
    }

    /// Number of calls made.
    pub fn calls(&self) -> usize {
        self.log.lock().len()
    }

    /// Aggregate token usage across calls.
    pub fn total_usage(&self) -> Usage {
        self.log
            .lock()
            .iter()
            .fold(Usage::default(), |acc, r| acc + r.usage)
    }
}

impl<M: ChatModel> ChatModel for RecordingModel<M> {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        let response = self.inner.complete(request)?;
        self.log.lock().push(CallRecord {
            prompt: request.full_text(),
            reply: response.text.clone(),
            usage: response.usage,
        });
        Ok(response)
    }

    fn model_id(&self) -> &str {
        self.inner.model_id()
    }
}

/// The transient fault kinds a hosted chat API produces.
pub const LLM_FAULT_KINDS: [TransportError; 4] = [
    TransportError::RateLimited,
    TransportError::ServerError,
    TransportError::Timeout,
    TransportError::TruncatedReply,
];

/// A [`ChatModel`] middleware injecting seeded per-request fault episodes
/// — the API-side sibling of `websim`'s `FlakyWebClient`.
///
/// Episodes are keyed by the request fingerprint, so a given seed always
/// breaks the same prompts, for the same number of consecutive attempts,
/// with the same error ([`TransportError::TruncatedReply`] standing in for
/// a streaming reply cut off mid-JSON — the content is unusable, so it
/// surfaces as a transport error rather than a mangled `Ok`).
pub struct FlakyModel<M> {
    inner: M,
    injector: FaultInjector,
}

impl<M: ChatModel> FlakyModel<M> {
    /// Wraps `inner` with the fault episodes `plan` prescribes.
    pub fn new(inner: M, plan: EpisodePlan) -> Self {
        FlakyModel {
            inner,
            injector: FaultInjector::new(plan, &LLM_FAULT_KINDS),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> EpisodePlan {
        self.injector.plan()
    }
}

impl<M: ChatModel> ChatModel for FlakyModel<M> {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        let key = stable_hash(request_fingerprint(request).as_bytes());
        if let Some(error) = self.injector.intercept(key) {
            return Err(error);
        }
        self.inner.complete(request)
    }

    fn model_id(&self) -> &str {
        self.inner.model_id()
    }
}

/// A [`ChatModel`] middleware that retries transient transport failures
/// under a [`RetryPolicy`] (deterministic backoff on an injectable clock)
/// with an optional circuit breaker guarding the single backend.
pub struct RetryingModel<M> {
    inner: M,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    breaker: Option<CircuitBreaker>,
    stats: Mutex<ResilienceStats>,
    telemetry: Telemetry,
    boundary: String,
}

impl<M: ChatModel> RetryingModel<M> {
    /// Wraps `inner` under `policy`, sleeping on a virtual [`SimClock`]
    /// and without a breaker.
    pub fn new(inner: M, policy: RetryPolicy) -> Self {
        RetryingModel {
            inner,
            policy,
            clock: Arc::new(SimClock::new()),
            breaker: None,
            stats: Mutex::new(ResilienceStats::default()),
            telemetry: Telemetry::disabled(),
            boundary: "llm".to_string(),
        }
    }

    /// Adds a circuit breaker over the backend (one breaker: unlike the
    /// crawl's many hosts, there is a single API behind this model).
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(CircuitBreaker::new(config));
        self
    }

    /// Replaces the clock (a production deployment passes
    /// [`borges_resilience::SystemClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a telemetry context under a boundary label (e.g. `ner`,
    /// `favicon` — there may be several model stacks in one run): every
    /// logical completion records attempt/recovery/abandonment counters
    /// named `borges_llm_<boundary>_*`, a call-duration histogram on this
    /// stack's clock (backoff spend included), and a [`BreakerEvent`]
    /// when the backend's breaker opens.
    pub fn with_telemetry(mut self, telemetry: Telemetry, boundary: &str) -> Self {
        self.telemetry = telemetry;
        self.boundary = format!("llm.{boundary}");
        self
    }

    /// What the stack has spent so far.
    pub fn stats(&self) -> ResilienceStats {
        *self.stats.lock()
    }

    fn metric(&self, suffix: &str) -> String {
        // "llm.ner" → "borges_llm_ner_<suffix>".
        format!("borges_{}_{suffix}", self.boundary.replace('.', "_"))
    }
}

impl<M: ChatModel> ChatModel for RetryingModel<M> {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        let key = stable_hash(request_fingerprint(request).as_bytes());
        let mut trips = 0u64;
        let mut fast_fails = 0u64;
        let started_ms = self.clock.now_ms();

        let outcome = self.policy.run(&*self.clock, key, |_attempt| {
            if let Some(b) = &self.breaker {
                if !b.allow(&*self.clock) {
                    fast_fails += 1;
                    return Err(TransportError::CircuitOpen);
                }
            }
            match self.inner.complete(request) {
                Ok(response) => {
                    if let Some(b) = &self.breaker {
                        b.record_success();
                    }
                    Ok(response)
                }
                Err(e) => {
                    if let Some(b) = &self.breaker {
                        if b.record_failure(&*self.clock) == BreakerVerdict::Tripped {
                            trips += 1;
                        }
                    }
                    Err(e)
                }
            }
        });

        let mut stats = self.stats.lock();
        stats.calls += 1;
        stats.attempts += outcome.attempts as u64;
        stats.breaker_trips += trips;
        stats.breaker_fast_fails += fast_fails;
        if outcome.recovered() {
            stats.recovered += 1;
        }
        if outcome.result.is_err() {
            stats.abandoned += 1;
        }
        drop(stats);

        if self.telemetry.is_enabled() {
            self.telemetry.counter(&self.metric("calls_total"), 1);
            self.telemetry
                .counter(&self.metric("attempts_total"), outcome.attempts as u64);
            if outcome.recovered() {
                self.telemetry.counter(&self.metric("recovered_total"), 1);
            }
            if outcome.result.is_err() {
                self.telemetry.counter(&self.metric("abandoned_total"), 1);
            }
            if fast_fails > 0 {
                self.telemetry
                    .counter(&self.metric("breaker_fast_fails_total"), fast_fails);
            }
            let now_ms = self.clock.now_ms();
            self.telemetry
                .observe_ms(&self.metric("call_ms"), now_ms.saturating_sub(started_ms));
            if trips > 0 {
                self.telemetry
                    .counter(&self.metric("breaker_trips_total"), trips);
                self.telemetry.record_breaker_event(BreakerEvent {
                    boundary: self.boundary.clone(),
                    key: self.inner.model_id().to_string(),
                    transition: "open".to_string(),
                    at_ms: now_ms,
                });
            }
        }
        outcome.result
    }

    fn model_id(&self) -> &str {
        self.inner.model_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts::build_ie_prompt;
    use crate::SimLlm;
    use borges_types::Asn;

    fn request(asn: u32) -> ChatRequest {
        ChatRequest::user(build_ie_prompt(
            Asn::new(asn),
            "Our subsidiaries: AS100.",
            "",
        ))
    }

    #[test]
    fn caching_serves_repeats_for_free() {
        let model = CachingModel::new(SimLlm::flawless());
        let first = model.complete(&request(1)).unwrap();
        assert!(first.usage.total() > 0, "first call bills tokens");
        let second = model.complete(&request(1)).unwrap();
        assert_eq!(second.text, first.text);
        assert_eq!(second.usage.total(), 0, "cache hits are free");
        assert_eq!(model.hits(), 1);
        assert_eq!(model.entries(), 1);
        assert_eq!(model.evictions(), 0);
    }

    #[test]
    fn distinct_requests_miss() {
        let model = CachingModel::new(SimLlm::flawless());
        model.complete(&request(1)).unwrap();
        model.complete(&request(2)).unwrap();
        assert_eq!(model.hits(), 0);
        assert_eq!(model.entries(), 2);
    }

    #[test]
    fn capped_cache_evicts_oldest_first() {
        let model = CachingModel::with_capacity(SimLlm::flawless(), 2);
        model.complete(&request(1)).unwrap();
        model.complete(&request(2)).unwrap();
        model.complete(&request(3)).unwrap(); // evicts request(1)
        assert_eq!(model.entries(), 2);
        assert_eq!(model.evictions(), 1);
        // 2 and 3 still hit…
        model.complete(&request(2)).unwrap();
        model.complete(&request(3)).unwrap();
        assert_eq!(model.hits(), 2);
        // …1 misses (and re-enters, evicting 2, the now-oldest).
        let refetched = model.complete(&request(1)).unwrap();
        assert!(refetched.usage.total() > 0, "evicted entry re-bills");
        assert_eq!(model.evictions(), 2);
        assert_eq!(model.entries(), 2);
    }

    #[test]
    fn repeat_hits_do_not_grow_the_eviction_queue() {
        let model = CachingModel::with_capacity(SimLlm::flawless(), 2);
        for _ in 0..10 {
            model.complete(&request(1)).unwrap();
        }
        model.complete(&request(2)).unwrap();
        assert_eq!(model.entries(), 2);
        assert_eq!(model.evictions(), 0, "hits never evict");
    }

    #[test]
    fn cache_is_transparent_to_the_pipeline() {
        // Same replies, with or without the cache.
        let plain = SimLlm::new(3);
        let cached = CachingModel::new(SimLlm::new(3));
        for asn in [1u32, 2, 1, 3, 2] {
            assert_eq!(
                plain.complete(&request(asn)).unwrap().text,
                cached.complete(&request(asn)).unwrap().text
            );
        }
    }

    #[test]
    fn cache_stats_read_consistently() {
        let model = CachingModel::with_capacity(SimLlm::flawless(), 2);
        model.complete(&request(1)).unwrap();
        model.complete(&request(1)).unwrap();
        model.complete(&request(2)).unwrap();
        model.complete(&request(3)).unwrap(); // evicts request(1)
        let stats = model.cache_stats();
        assert_eq!(
            stats,
            CacheStats {
                hits: 1,
                misses: 3,
                evictions: 1,
                entries: 2,
            }
        );
        assert_eq!(stats.hits + stats.misses, 4, "every lookup is accounted");
    }

    #[test]
    fn failed_inner_calls_count_as_misses() {
        let model = CachingModel::new(FlakyModel::new(
            SimLlm::flawless(),
            EpisodePlan {
                transient_rate: 1.0,
                permanent_rate: 0.0,
                max_burst: 1,
                seed: 1,
            },
        ));
        // Burst of 1: first attempt fails (a miss, nothing cached),
        // second reaches the model and caches.
        assert!(model.complete(&request(1)).is_err());
        assert!(model.complete(&request(1)).is_ok());
        let stats = model.cache_stats();
        assert_eq!((stats.misses, stats.hits, stats.entries), (2, 0, 1));
    }

    #[test]
    fn telemetry_counts_model_calls_under_a_boundary_label() {
        use borges_telemetry::Verbosity;
        let tel = Telemetry::sim(Verbosity::Quiet);
        let model = RetryingModel::new(
            FlakyModel::new(SimLlm::new(5), EpisodePlan::calibrated(13)),
            RetryPolicy::standard(13),
        )
        .with_clock(tel.clock())
        .with_telemetry(tel.clone(), "ner");
        for asn in 1u32..50 {
            let _ = model.complete(&request(asn));
        }
        let snap = tel.metrics_snapshot();
        let stats = model.stats();
        assert_eq!(snap.counter("borges_llm_ner_calls_total"), stats.calls);
        assert_eq!(
            snap.counter("borges_llm_ner_attempts_total"),
            stats.attempts
        );
        assert_eq!(
            snap.counter("borges_llm_ner_recovered_total"),
            stats.recovered
        );
        assert!(stats.recovered > 0, "chaos actually exercised retries");
        let hist = snap.histogram("borges_llm_ner_call_ms").unwrap();
        assert_eq!(hist.count, stats.calls);
        assert!(hist.sum_ms > 0, "backoff spend lands in the histogram");
    }

    #[test]
    fn recording_keeps_the_audit_trail() {
        let model = RecordingModel::new(SimLlm::flawless());
        model.complete(&request(1)).unwrap();
        model.complete(&request(2)).unwrap();
        assert_eq!(model.calls(), 2);
        let log = model.log();
        assert!(log[0].prompt.contains("ASN 1"));
        assert!(log[1].prompt.contains("ASN 2"));
        assert!(log[0].reply.contains("100"));
        assert!(model.total_usage().total() > 0);
    }

    #[test]
    fn middleware_composes() {
        let model = RecordingModel::new(CachingModel::new(SimLlm::flawless()));
        model.complete(&request(1)).unwrap();
        model.complete(&request(1)).unwrap();
        assert_eq!(model.calls(), 2, "recorder sees both calls");
        assert_eq!(model.model_id(), "sim-gpt-4o-mini", "id passes through");
    }

    #[test]
    fn chaos_zero_rate_flaky_model_is_transparent() {
        let plain = SimLlm::new(7);
        let flaky = FlakyModel::new(SimLlm::new(7), EpisodePlan::none());
        for asn in 1u32..40 {
            assert_eq!(plain.complete(&request(asn)), flaky.complete(&request(asn)));
        }
    }

    #[test]
    fn chaos_flaky_model_rates_are_roughly_honored() {
        let flaky = FlakyModel::new(
            SimLlm::flawless(),
            EpisodePlan {
                transient_rate: 0.10,
                permanent_rate: 0.0,
                max_burst: 1,
                seed: 41,
            },
        );
        let n = 5_000u32;
        let failed = (0..n)
            .filter(|&asn| flaky.complete(&request(asn)).is_err())
            .count() as f64;
        let frac = failed / n as f64;
        assert!((0.08..0.12).contains(&frac), "observed {frac}");
    }

    #[test]
    fn chaos_retries_erase_recoverable_model_faults() {
        let plain = SimLlm::new(5);
        let model = RetryingModel::new(
            FlakyModel::new(SimLlm::new(5), EpisodePlan::calibrated(13)),
            RetryPolicy::standard(13),
        );
        for asn in 1u32..200 {
            assert_eq!(
                model.complete(&request(asn)),
                plain.complete(&request(asn)),
                "bit-identical replies under recoverable chaos"
            );
        }
        let stats = model.stats();
        assert_eq!(stats.calls, 199);
        assert_eq!(stats.abandoned, 0);
        assert!(stats.recovered > 0, "chaos actually exercised retries");
    }

    #[test]
    fn chaos_exhausted_budgets_surface_the_last_error() {
        let model = RetryingModel::new(
            FlakyModel::new(
                SimLlm::flawless(),
                EpisodePlan {
                    transient_rate: 1.0,
                    permanent_rate: 0.0,
                    max_burst: 30,
                    seed: 3,
                },
            ),
            RetryPolicy::standard(3),
        );
        let result = model.complete(&request(1));
        assert!(result.is_err());
        let stats = model.stats();
        assert_eq!(stats.abandoned, 1);
        assert_eq!(stats.attempts, 5, "full budget spent");
    }

    #[test]
    fn chaos_model_breaker_trips_and_fast_fails() {
        let model = RetryingModel::new(
            FlakyModel::new(
                SimLlm::flawless(),
                EpisodePlan {
                    transient_rate: 1.0,
                    permanent_rate: 0.0,
                    max_burst: 200,
                    seed: 8,
                },
            ),
            RetryPolicy {
                max_attempts: 4,
                base_delay_ms: 1,
                max_delay_ms: 1,
                deadline_ms: u64::MAX,
                jitter_seed: 8,
            },
        )
        .with_breaker(BreakerConfig {
            failure_threshold: 4,
            open_ms: 1_000_000,
        });
        // First call spends its budget and trips the breaker at 4 failures.
        assert!(model.complete(&request(1)).is_err());
        assert_eq!(model.stats().breaker_trips, 1);
        // Subsequent calls fast-fail without touching the backend.
        assert!(model.complete(&request(2)).is_err());
        assert!(model.stats().breaker_fast_fails > 0);
    }
}
