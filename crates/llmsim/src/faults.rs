//! Seeded error injection.
//!
//! A perfect extractor would be an oracle, not a model. GPT-4o-mini, as
//! measured in the paper, misses ~6% of embedded siblings and fabricates a
//! sibling from an unrelated numeral in ~4% of clean records (Table 4).
//! [`FaultProfile`] reproduces those imperfections deterministically: each
//! potential error is decided by a hash of `(seed, subject, value)`, so the
//! same snapshot always yields the same mistakes — the simulated analogue
//! of temperature-0 decoding, where errors are systematic rather than
//! sampled.

use borges_types::Asn;

/// Error rates for the simulated model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability that a genuinely extracted sibling is dropped from the
    /// reply (false negative).
    pub miss_rate: f64,
    /// Probability that a rejected numeric candidate is reported anyway
    /// (false positive).
    pub spurious_rate: f64,
    /// Seed decorrelating fault decisions between experiments.
    pub seed: u64,
}

impl FaultProfile {
    /// No injected faults — the extractor's only errors are its genuine
    /// reasoning limits.
    pub const fn none() -> Self {
        FaultProfile {
            miss_rate: 0.0,
            spurious_rate: 0.0,
            seed: 0,
        }
    }

    /// Rates calibrated to the paper's Table 4 measurements of GPT-4o-mini
    /// (FN 12/199 ≈ 0.06, FP 5/121 ≈ 0.04 — a share of which already
    /// arises naturally from the extractor's conservatism, so the injected
    /// rates are set slightly below the headline numbers).
    pub const fn gpt4o_mini(seed: u64) -> Self {
        FaultProfile {
            miss_rate: 0.04,
            spurious_rate: 0.008,
            seed,
        }
    }

    /// Should this (subject, sibling) extraction be dropped?
    pub fn drops(&self, subject: Asn, sibling: Asn) -> bool {
        self.decide(0x5149_4c4c, subject, sibling.value(), self.miss_rate)
    }

    /// Should this rejected candidate value be fabricated into a finding?
    pub fn fabricates(&self, subject: Asn, value: u32) -> bool {
        self.decide(0x4641_4b45, subject, value, self.spurious_rate)
    }

    fn decide(&self, domain: u64, subject: Asn, value: u32, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(domain)
            .wrapping_add((subject.value() as u64) << 32)
            .wrapping_add(value as u64);
        // splitmix64 finalizer
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let p = FaultProfile::none();
        for i in 1..2000 {
            assert!(!p.drops(Asn::new(1), Asn::new(i)));
            assert!(!p.fabricates(Asn::new(1), i));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultProfile::gpt4o_mini(42);
        let a: Vec<bool> = (1..500)
            .map(|i| p.drops(Asn::new(7), Asn::new(i)))
            .collect();
        let b: Vec<bool> = (1..500)
            .map(|i| p.drops(Asn::new(7), Asn::new(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultProfile {
            miss_rate: 0.10,
            spurious_rate: 0.10,
            seed: 7,
        };
        let n = 20_000u32;
        let drops = (1..=n)
            .filter(|&i| p.drops(Asn::new(i), Asn::new(i.wrapping_mul(31))))
            .count() as f64;
        let frac = drops / n as f64;
        assert!((0.08..0.12).contains(&frac), "observed {frac}");
    }

    #[test]
    fn seeds_decorrelate() {
        let p1 = FaultProfile {
            miss_rate: 0.5,
            spurious_rate: 0.5,
            seed: 1,
        };
        let p2 = FaultProfile { seed: 2, ..p1 };
        let a: Vec<bool> = (1..200)
            .map(|i| p1.drops(Asn::new(3), Asn::new(i)))
            .collect();
        let b: Vec<bool> = (1..200)
            .map(|i| p2.drops(Asn::new(3), Asn::new(i)))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn extreme_rates() {
        let always = FaultProfile {
            miss_rate: 1.0,
            spurious_rate: 1.0,
            seed: 0,
        };
        assert!(always.drops(Asn::new(1), Asn::new(2)));
        assert!(always.fabricates(Asn::new(1), 2));
    }

    #[test]
    fn drop_and_fabricate_domains_are_independent() {
        let p = FaultProfile {
            miss_rate: 0.5,
            spurious_rate: 0.5,
            seed: 9,
        };
        let drops: Vec<bool> = (1..300)
            .map(|i| p.drops(Asn::new(5), Asn::new(i)))
            .collect();
        let fabs: Vec<bool> = (1..300).map(|i| p.fabricates(Asn::new(5), i)).collect();
        assert_ne!(drops, fabs);
    }
}
