//! The chat-model boundary.
//!
//! Borges treats the LLM as a black box that maps a message list to a text
//! completion. [`ChatModel`] captures exactly that; the pipeline depends on
//! nothing else. The message shape follows the OpenAI chat API closely
//! enough that a production implementation is a thin HTTP adapter.

use borges_resilience::TransportError;
use borges_types::FaviconHash;
use serde::{Deserialize, Serialize};

/// Message author role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// System instructions.
    System,
    /// End-user (the pipeline).
    User,
    /// The model.
    Assistant,
}

/// One content part of a message. The classifier prompt attaches the
/// favicon image alongside the text (Listing 3 of the paper); the simulator
/// carries the image as its content hash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Content {
    /// Plain text.
    Text(String),
    /// An attached image, identified by content hash (standing in for the
    /// base64 payload the real API receives).
    Image {
        /// Content hash of the attached image.
        favicon: FaviconHash,
    },
}

impl Content {
    /// The text of a [`Content::Text`] part, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Content::Text(t) => Some(t),
            Content::Image { .. } => None,
        }
    }
}

/// One chat message: a role plus one or more content parts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Author role.
    pub role: Role,
    /// Content parts (usually one text part; classifier messages add an
    /// image part).
    pub parts: Vec<Content>,
}

impl Message {
    /// A plain text message.
    pub fn text(role: Role, text: impl Into<String>) -> Self {
        Message {
            role,
            parts: vec![Content::Text(text.into())],
        }
    }

    /// All text parts concatenated.
    pub fn joined_text(&self) -> String {
        self.parts
            .iter()
            .filter_map(Content::as_text)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The first attached image, if any.
    pub fn image(&self) -> Option<FaviconHash> {
        self.parts.iter().find_map(|p| match p {
            Content::Image { favicon } => Some(*favicon),
            Content::Text(_) => None,
        })
    }
}

/// Decoding parameters. The paper pins `temperature = 0`, `top_p = 1` for
/// reproducibility (§4.2); the simulator *requires* that setting and
/// refuses anything else, making the reproducibility contract explicit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodingParams {
    /// Sampling temperature.
    pub temperature: f32,
    /// Nucleus probability mass.
    pub top_p: f32,
}

impl DecodingParams {
    /// The paper's reproducible setting: temperature 0, top-p 1.
    pub const fn deterministic() -> Self {
        DecodingParams {
            temperature: 0.0,
            top_p: 1.0,
        }
    }

    /// `true` for the deterministic setting.
    pub fn is_deterministic(&self) -> bool {
        self.temperature == 0.0 && self.top_p == 1.0
    }
}

impl Default for DecodingParams {
    fn default() -> Self {
        DecodingParams::deterministic()
    }
}

/// A chat completion request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatRequest {
    /// The conversation so far.
    pub messages: Vec<Message>,
    /// Decoding parameters.
    pub params: DecodingParams,
}

impl ChatRequest {
    /// A single-user-message request with deterministic decoding.
    pub fn user(text: impl Into<String>) -> Self {
        ChatRequest {
            messages: vec![Message::text(Role::User, text)],
            params: DecodingParams::deterministic(),
        }
    }

    /// All user-visible text concatenated (prompt reconstruction for
    /// template-parsing models).
    pub fn full_text(&self) -> String {
        self.messages
            .iter()
            .map(Message::joined_text)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The first attached image across all messages.
    pub fn image(&self) -> Option<FaviconHash> {
        self.messages.iter().find_map(Message::image)
    }
}

/// Token accounting for one completion (the billing unit of every hosted
/// chat API — at the paper's scale, thousands of extraction calls, cost
/// is an explicit design constraint: it is why the input dropout filter
/// exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Usage {
    /// Tokens in the prompt.
    pub prompt_tokens: u64,
    /// Tokens in the completion.
    pub completion_tokens: u64,
}

impl Usage {
    /// Total tokens.
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }

    /// A crude, deterministic token estimate for simulated models
    /// (≈ 1 token per 4 characters, the usual English heuristic).
    pub fn estimate(prompt: &str, completion: &str) -> Self {
        Usage {
            prompt_tokens: (prompt.len() as u64).div_ceil(4),
            completion_tokens: (completion.len() as u64).div_ceil(4),
        }
    }
}

impl std::ops::Add for Usage {
    type Output = Usage;
    fn add(self, rhs: Usage) -> Usage {
        Usage {
            prompt_tokens: self.prompt_tokens + rhs.prompt_tokens,
            completion_tokens: self.completion_tokens + rhs.completion_tokens,
        }
    }
}

impl std::ops::AddAssign for Usage {
    fn add_assign(&mut self, rhs: Usage) {
        *self = *self + rhs;
    }
}

/// GPT-4o-mini list pricing (USD per million tokens) at the paper's
/// snapshot date — used to estimate what a pipeline run would bill.
pub const GPT4O_MINI_INPUT_PER_MTOK: f64 = 0.15;
/// Output-token price (USD per million tokens).
pub const GPT4O_MINI_OUTPUT_PER_MTOK: f64 = 0.60;

/// Estimated cost in USD of `usage` at GPT-4o-mini list prices.
pub fn estimate_cost_usd(usage: Usage) -> f64 {
    usage.prompt_tokens as f64 / 1e6 * GPT4O_MINI_INPUT_PER_MTOK
        + usage.completion_tokens as f64 / 1e6 * GPT4O_MINI_OUTPUT_PER_MTOK
}

/// A chat completion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChatResponse {
    /// The completion text.
    pub text: String,
    /// Token accounting.
    #[serde(default)]
    pub usage: Usage,
}

/// A model that completes chats. Object-safe so pipelines can hold
/// `Box<dyn ChatModel>`.
///
/// `complete` is fallible: `Err(`[`TransportError`]`)` means the call never
/// produced a usable completion (timeout, 429/5xx, a reply truncated
/// mid-payload). Semantic mistakes — a model extracting the wrong sibling
/// — are *not* transport errors; those stay inside `Ok` replies exactly as
/// before. [`crate::sim::SimLlm`] itself never fails; faults enter through
/// [`crate::middleware::FlakyModel`] and are absorbed by
/// [`crate::middleware::RetryingModel`].
pub trait ChatModel {
    /// Produces a completion for `request`, or reports that the transport
    /// failed to deliver one.
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError>;

    /// A short model identifier (for logs and experiment records).
    fn model_id(&self) -> &str;
}

impl<M: ChatModel + ?Sized> ChatModel for &M {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        (**self).complete(request)
    }
    fn model_id(&self) -> &str {
        (**self).model_id()
    }
}

impl<M: ChatModel + ?Sized> ChatModel for Box<M> {
    fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
        (**self).complete(request)
    }
    fn model_id(&self) -> &str {
        (**self).model_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_params_are_the_default() {
        assert!(DecodingParams::default().is_deterministic());
        let p = DecodingParams {
            temperature: 0.7,
            top_p: 1.0,
        };
        assert!(!p.is_deterministic());
    }

    #[test]
    fn message_text_helpers() {
        let m = Message {
            role: Role::User,
            parts: vec![
                Content::Text("a".into()),
                Content::Image {
                    favicon: FaviconHash::from_raw(1),
                },
                Content::Text("b".into()),
            ],
        };
        assert_eq!(m.joined_text(), "a\nb");
        assert_eq!(m.image(), Some(FaviconHash::from_raw(1)));
    }

    #[test]
    fn request_full_text_spans_messages() {
        let r = ChatRequest {
            messages: vec![
                Message::text(Role::System, "sys"),
                Message::text(Role::User, "usr"),
            ],
            params: DecodingParams::deterministic(),
        };
        assert_eq!(r.full_text(), "sys\nusr");
        assert!(r.image().is_none());
    }

    #[test]
    fn trait_is_object_safe() {
        struct Echo;
        impl ChatModel for Echo {
            fn complete(&self, request: &ChatRequest) -> Result<ChatResponse, TransportError> {
                Ok(ChatResponse {
                    text: request.full_text(),
                    usage: Usage::default(),
                })
            }
            fn model_id(&self) -> &str {
                "echo"
            }
        }
        let boxed: Box<dyn ChatModel> = Box::new(Echo);
        let resp = boxed.complete(&ChatRequest::user("hello")).unwrap();
        assert_eq!(resp.text, "hello");
        assert_eq!(boxed.model_id(), "echo");
    }
}
