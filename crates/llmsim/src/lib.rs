//! # borges-llm
//!
//! The LLM substrate of Borges.
//!
//! The paper drives OpenAI's GPT-4o-mini (temperature 0, top-p 1) with two
//! few-shot prompts: an *information-extraction* prompt that pulls sibling
//! ASNs out of PeeringDB `notes`/`aka` free text (§4.2, Listing 2), and a
//! *classification* prompt that decides whether a favicon shared by a set
//! of final URLs identifies one company or a web framework (§4.3.3,
//! Listing 3). OpenAI is unreachable from this environment, so this crate
//! supplies:
//!
//! * [`chat`] — the [`chat::ChatModel`] boundary trait (messages,
//!   roles, image attachments, decoding parameters). A production binding
//!   to any real chat API implements this one trait.
//! * [`prompts`] — the paper's prompts, reimplemented as templates, plus
//!   the parsing of model replies back into structured data.
//! * [`ner`] — the deterministic extraction model behind
//!   [`sim::SimLlm`]: a tokenizer, ASN-candidate scanner, and a
//!   multilingual context classifier that separates sibling reports from
//!   upstream/peer/BGP-community mentions and from decoy numerals (phone
//!   numbers, years, street addresses, prefix limits).
//! * [`classifier`] — the favicon/domain company-vs-framework decision.
//! * [`faults`] — seeded error injection so the simulated model's confusion
//!   matrix matches the accuracies the paper measured for GPT-4o-mini
//!   (Tables 4 and 5), instead of being unrealistically perfect.
//!   (Transport-level faults — 429s, 500s, timeouts, truncated replies —
//!   are separate: [`middleware::FlakyModel`] injects them and
//!   [`middleware::RetryingModel`] recovers from them.)
//! * [`sim`] — [`sim::SimLlm`], tying it together behind
//!   [`chat::ChatModel`].
//!
//! The simulated model is *not* an oracle: it reads the same prompt text a
//! real model would receive, reasons only over that text, and makes the
//! same kinds of mistakes the paper reports (e.g. trusting wrong
//! self-reports, missing reciprocal claims).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chat;
pub mod classifier;
pub mod faults;
pub mod middleware;
pub mod ner;
pub mod openai_wire;
pub mod prompts;
pub mod sim;

pub use chat::{ChatModel, ChatRequest, ChatResponse, Content, DecodingParams, Message, Role};
pub use classifier::{classify_favicon_group, FaviconVerdict};
pub use faults::FaultProfile;
pub use middleware::{CachingModel, FlakyModel, RecordingModel, RetryingModel, LLM_FAULT_KINDS};
pub use ner::{extract_siblings, Extraction, ExtractionContext};
pub use prompts::{
    build_classifier_prompt, build_ie_prompt, parse_classifier_reply, parse_ie_reply,
};
pub use sim::SimLlm;
