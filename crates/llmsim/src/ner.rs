//! The deterministic sibling-extraction model.
//!
//! This is the "reasoning" behind [`SimLlm`](crate::sim::SimLlm) for the
//! information-extraction prompt (§4.2 of the paper). It does what a
//! few-shot-prompted LLM does with a PeeringDB `notes`/`aka` field, using
//! classic NLP machinery instead of a transformer:
//!
//! 1. **Segmentation** — the text is split into lines and sentences;
//!    header lines ending in `:` (or `,` before a list) open a *block*
//!    whose polarity (sibling vs connectivity) is inherited by the list
//!    items under it. This is what resolves the paper's two running
//!    examples: Deutsche Telekom's `notes` ("…subsidiaries: - AS6805 …")
//!    and Maxihost/Latitude.sh's `notes` ("We connect directly with the
//!    following ISPs, - Algar (AS16735) …" — Listing 1).
//! 2. **Candidate scanning** — digit runs are located with their immediate
//!    context: `AS`/`ASN` prefixes, phone/IP/decimal adjacency, unit
//!    suffixes (`10G`, `100ms`).
//! 3. **Context classification** — a multilingual cue lexicon votes each
//!    segment *sibling* (filial, subsidiária, Tochtergesellschaft, "part
//!    of", …) or *connectivity/other* (upstream, transit, peering, IX,
//!    communities, …); decoy filters reject years, phone numbers, street
//!    addresses and prefix limits.
//!
//! The model only sees the prompt text — it has no access to ground truth,
//! and its mistakes are genuine (e.g. a sibling mentioned with no cue at
//! all in `notes` is conservatively dropped, which is exactly the AT&T
//! AS7132→AS7018 false negative the paper discusses in §5.3).

use borges_types::Asn;

/// Which free-text field a finding came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionContext {
    /// The `notes` field.
    Notes,
    /// The `aka` field.
    Aka,
}

/// One extracted sibling candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extraction {
    /// The sibling ASN.
    pub asn: Asn,
    /// Where it was found.
    pub field: ExtractionContext,
    /// A human-readable justification (the "Also explain why" part of the
    /// prompt).
    pub reason: String,
}

/// Cues indicating co-ownership. Lower-case; matched on word boundaries in
/// lower-cased text. Multilingual: en/es/pt/de/fr/it/id.
const SIBLING_CUES: &[&str] = &[
    // English
    "sibling",
    "siblings",
    "same organization",
    "same organisation",
    "same company",
    "same group",
    "part of",
    "belongs to",
    "belong to",
    "owned by",
    "owns",
    "subsidiary",
    "subsidiaries",
    "sister company",
    "sister companies",
    "sister network",
    "sister networks",
    "parent company",
    "merged with",
    "merged into",
    "acquired",
    "acquisition",
    "formerly",
    "formerly known as",
    "also operate",
    "also operates",
    "also operating",
    "our other",
    "other asns of",
    "division of",
    "branch of",
    "group of companies",
    "holding",
    "rebranded",
    "now known as",
    "doing business as",
    // Spanish
    "filial",
    "filiales",
    "subsidiaria",
    "subsidiarias",
    "parte de",
    "pertenece a",
    "misma organización",
    "mismo grupo",
    "también operamos",
    "empresa hermana",
    // Portuguese
    "subsidiária",
    "subsidiárias",
    "pertence a",
    "faz parte de",
    "mesmo grupo",
    "empresa irmã",
    "também operamos",
    // German
    "tochtergesellschaft",
    "tochtergesellschaften",
    "gehört zu",
    "teil der",
    "teil von",
    "schwestergesellschaft",
    "konzern",
    // French
    "filiale",
    "filiales",
    "fait partie de",
    "appartient à",
    "même groupe",
    // Italian
    "controllata",
    "fa parte di",
    "stesso gruppo",
    // Indonesian
    "anak perusahaan",
    "bagian dari",
    "grup yang sama",
];

/// Cues indicating connectivity or other non-sibling relations.
const CONNECTIVITY_CUES: &[&str] = &[
    // English
    "upstream",
    "upstreams",
    "transit",
    "provider",
    "providers",
    "peering with",
    "peers with",
    "peer with",
    "we peer",
    "peering policy",
    "exchange",
    "exchanges",
    "ix",
    "ixp",
    "route server",
    "route servers",
    "community",
    "communities",
    "as-in",
    "as-out",
    "customer of",
    "customers of",
    "we connect",
    "connected to",
    "connect with",
    "connectivity",
    "directly with",
    "blackhole",
    "prepend",
    "looking glass",
    "downstream",
    "downstreams",
    "session",
    "sessions",
    "bgp community",
    // Spanish
    "proveedor",
    "proveedores",
    "tránsito",
    "transito",
    "conectamos",
    "conectados a",
    "intercambio de tráfico",
    // Portuguese
    "fornecedor",
    "fornecedores",
    "trânsito",
    "conectamos",
    "conectados a",
    // German
    "anbieter",
    "zusammenschaltung",
    // French
    "fournisseur",
    "fournisseurs",
    "transitaire",
];

/// Cues marking a number as a year.
const YEAR_CUES: &[&str] = &[
    "since",
    "founded",
    "established",
    "est.",
    "desde",
    "seit",
    "depuis",
    "dal",
    "sejak",
    "operating since",
    "in business since",
];

/// Cues marking a number as part of a phone/fax contact.
const PHONE_CUES: &[&str] = &[
    "phone",
    "tel",
    "tel.",
    "telephone",
    "fax",
    "call us",
    "whatsapp",
    "noc:",
    "contact",
    "teléfono",
    "telefone",
    "telefon",
    "téléphone",
];

/// Cues marking a number as part of a street address.
const ADDRESS_CUES: &[&str] = &[
    "suite",
    "floor",
    "ave",
    "avenue",
    "street",
    "st.",
    "road",
    "rd.",
    "zip",
    "p.o. box",
    "po box",
    "postal",
    "caixa postal",
    "piso",
    "oficina",
    "carrera",
    "calle",
    "rua",
    "km",
];

/// Cues marking a number as a prefix limit / routing parameter.
const LIMIT_CUES: &[&str] = &[
    "prefix",
    "prefixes",
    "prefijos",
    "prefixos",
    "max-prefix",
    "maximum",
    "limit",
    "mtu",
    "asn32",
    "med",
    "localpref",
    "local-pref",
];

/// Unit suffixes that disqualify a digit run (`10G`, `100ms`, `95th`…).
const UNIT_SUFFIXES: &[&str] = &[
    "g", "gb", "gbps", "gbit", "m", "mb", "mbps", "mbit", "t", "tb", "tbps", "ms", "th", "k", "kb",
    "kbps", "x", "u", "gbe",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Polarity {
    Sibling,
    Connectivity,
    Neutral,
}

/// Extracts sibling ASNs from one network's `notes` and `aka` fields.
///
/// `subject` is the network whose record is being read; its own ASN is
/// never reported as its sibling.
pub fn extract_siblings(subject: Asn, notes: &str, aka: &str) -> Vec<Extraction> {
    let mut out: Vec<Extraction> = Vec::new();
    scan_field(subject, notes, ExtractionContext::Notes, &mut out);
    scan_field(subject, aka, ExtractionContext::Aka, &mut out);
    // Deduplicate by ASN keeping the first (highest-confidence) reason.
    let mut seen = std::collections::BTreeSet::new();
    out.retain(|e| seen.insert(e.asn));
    out
}

fn scan_field(subject: Asn, text: &str, field: ExtractionContext, out: &mut Vec<Extraction>) {
    if text.trim().is_empty() {
        return;
    }
    let mut block_polarity = Polarity::Neutral;
    for raw_line in text.lines() {
        let line = raw_line.trim();
        if line.is_empty() {
            // Blank lines end a block.
            block_polarity = Polarity::Neutral;
            continue;
        }
        let lower = line.to_lowercase();

        for sentence in split_sentences(&lower) {
            let polarity = classify_segment(sentence);
            let effective = match polarity {
                Polarity::Neutral => block_polarity,
                p => p,
            };
            let candidates = scan_candidates(sentence);
            // When the writer uses the `AS<number>` convention anywhere in
            // the sentence, bare numbers there are ordinals/quantities,
            // not ASNs ("Backbone 2 (AS160)").
            let has_prefixed = candidates.iter().any(|c| c.as_prefixed);
            for candidate in candidates {
                if has_prefixed && !candidate.as_prefixed {
                    continue;
                }
                let asn = Asn::new(candidate.value);
                if asn == subject || !asn.is_routable() {
                    continue;
                }
                if is_decoy(sentence, &candidate) {
                    continue;
                }
                let accept = match effective {
                    Polarity::Sibling => true,
                    Polarity::Connectivity => false,
                    Polarity::Neutral => {
                        // No cue anywhere: `aka` entries list alternative
                        // identities, so AS-prefixed numbers there are
                        // credible; bare numbers and uncued `notes`
                        // mentions are conservatively dropped (the prompt
                        // demands explicit sibling context).
                        field == ExtractionContext::Aka && candidate.as_prefixed
                    }
                };
                if accept {
                    let reason = match effective {
                        Polarity::Sibling => format!(
                            "mentioned in a sibling/ownership context: \"{}\"",
                            truncate(sentence, 80)
                        ),
                        _ => format!(
                            "listed as an alternative identity in the {} field",
                            match field {
                                ExtractionContext::Aka => "aka",
                                ExtractionContext::Notes => "notes",
                            }
                        ),
                    };
                    out.push(Extraction { asn, field, reason });
                }
            }
        }

        // Header lines (ending with ':' or ',') set the block polarity
        // for the list items that follow; the header's own polarity is
        // that of its final sentence.
        let is_header = line.ends_with(':') || line.ends_with(',');
        if is_header {
            if let Some(last) = split_sentences(&lower).last() {
                let p = classify_segment(last);
                if p != Polarity::Neutral {
                    block_polarity = p;
                }
            }
        }
    }
}

/// Every routable-ASN-shaped number appearing in `text`, in order of first
/// appearance, deduplicated. This is the candidate universe: the output
/// hallucination filter (§4.2) restricts model replies to it, and the
/// fault injector fabricates false positives only from it.
pub fn all_routable_numbers(text: &str) -> Vec<u32> {
    let lower = text.to_lowercase();
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for c in scan_candidates(&lower) {
        let asn = Asn::new(c.value);
        if asn.is_routable() && seen.insert(c.value) {
            out.push(c.value);
        }
    }
    out
}

/// Splits a line into sentences on `". "` / `"; "` boundaries. Dots inside
/// IP addresses or decimals (no following space) do not split.
fn split_sentences(lower: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let bytes = lower.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if (bytes[i] == b'.' || bytes[i] == b';' || bytes[i] == b'!' || bytes[i] == b'?')
            && bytes[i + 1] == b' '
        {
            let seg = lower[start..=i].trim();
            if !seg.is_empty() {
                out.push(seg);
            }
            start = i + 2;
            i += 2;
            continue;
        }
        i += 1;
    }
    let seg = lower[start..].trim();
    if !seg.is_empty() {
        out.push(seg);
    }
    out
}

fn classify_segment(lower: &str) -> Polarity {
    let sibling = SIBLING_CUES.iter().any(|cue| contains_phrase(lower, cue));
    let connectivity = CONNECTIVITY_CUES
        .iter()
        .any(|cue| contains_phrase(lower, cue));
    match (sibling, connectivity) {
        // Connectivity cues dominate: "our subsidiary peers with AS174" is
        // about peering. This mirrors the prompt's explicit restrictions.
        (_, true) => Polarity::Connectivity,
        (true, false) => Polarity::Sibling,
        (false, false) => Polarity::Neutral,
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    value: u32,
    as_prefixed: bool,
    /// Byte offset of the first digit in the segment.
    start: usize,
    /// Byte offset just past the last digit.
    end: usize,
}

/// Finds digit runs and their `AS`-prefix status.
fn scan_candidates(lower: &str) -> Vec<Candidate> {
    let bytes = lower.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let end = i;
            let digits = &lower[start..end];
            if digits.len() > 10 {
                continue;
            }
            let value: u32 = match digits.parse() {
                Ok(v) => v,
                Err(_) => continue,
            };
            let as_prefixed = has_as_prefix(lower, start);
            out.push(Candidate {
                value,
                as_prefixed,
                start,
                end,
            });
        } else {
            i += 1;
        }
    }
    out
}

/// `true` when the digit run at `start` is preceded by `AS`/`ASN` (with an
/// optional separator: `AS3320`, `AS 3320`, `AS-3320`, `ASN:3320`).
fn has_as_prefix(lower: &str, start: usize) -> bool {
    let head = &lower[..start];
    let trimmed = head.trim_end_matches([' ', '-', ':', '#']);
    let t = trimmed.as_bytes();
    let ends_with_word = |word: &str| {
        if !trimmed.ends_with(word) {
            return false;
        }
        let before = trimmed.len() - word.len();
        before == 0 || !t[before - 1].is_ascii_alphanumeric()
    };
    ends_with_word("as") || ends_with_word("asn")
}

/// Rejects decoy numerals: IPs, decimals, phones, years, addresses,
/// prefix limits, unit-suffixed quantities.
fn is_decoy(lower: &str, c: &Candidate) -> bool {
    let bytes = lower.as_bytes();

    // Adjacent '.' + digit on either side ⇒ IP address or decimal.
    let dotted_before =
        c.start >= 2 && bytes[c.start - 1] == b'.' && bytes[c.start - 2].is_ascii_digit();
    let dotted_after =
        c.end + 1 < bytes.len() && bytes[c.end] == b'.' && bytes[c.end + 1].is_ascii_digit();
    if dotted_before || dotted_after {
        return true;
    }

    // '+' immediately before (international phone), or digit-hyphen-digit
    // chains longer than the run itself (555-1234).
    if c.start >= 1 && bytes[c.start - 1] == b'+' {
        return true;
    }
    let hyphen_chain = (c.end < bytes.len()
        && bytes[c.end] == b'-'
        && c.end + 1 < bytes.len()
        && bytes[c.end + 1].is_ascii_digit())
        || (c.start >= 2 && bytes[c.start - 1] == b'-' && bytes[c.start - 2].is_ascii_digit());
    if hyphen_chain && !c.as_prefixed {
        return true;
    }

    // Unit suffix (10g, 100ms…): letters immediately after the run forming
    // a known unit.
    if c.end < bytes.len() && bytes[c.end].is_ascii_alphabetic() {
        let tail: String = lower[c.end..]
            .chars()
            .take_while(|ch| ch.is_ascii_alphabetic())
            .collect();
        if UNIT_SUFFIXES.contains(&tail.as_str()) {
            return true;
        }
    }

    if c.as_prefixed {
        // An explicit AS prefix overrides the remaining contextual decoy
        // heuristics.
        return false;
    }

    // Years.
    if (1900..=2035).contains(&c.value) && YEAR_CUES.iter().any(|cue| contains_phrase(lower, cue)) {
        return true;
    }
    // Contact/address/limit contexts poison bare numbers in the segment.
    if PHONE_CUES.iter().any(|cue| contains_phrase(lower, cue))
        || ADDRESS_CUES.iter().any(|cue| contains_phrase(lower, cue))
        || LIMIT_CUES.iter().any(|cue| contains_phrase(lower, cue))
    {
        return true;
    }
    false
}

/// Word-boundary-aware phrase containment over lower-cased text.
fn contains_phrase(lower: &str, phrase: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = lower[from..].find(phrase) {
        let start = from + pos;
        let end = start + phrase.len();
        let ok_before = start == 0 || !lower.as_bytes()[start - 1].is_ascii_alphanumeric();
        let ok_after = end >= lower.len() || {
            let b = lower.as_bytes()[end];
            !b.is_ascii_alphanumeric()
        };
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        let mut end = max;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(out: &[Extraction]) -> Vec<u32> {
        let mut v: Vec<u32> = out.iter().map(|e| e.asn.value()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn deutsche_telekom_style_subsidiary_list() {
        // Mirrors Figure 4: DT reports European subsidiaries in notes.
        let notes = "Deutsche Telekom Global Carrier.\n\
                     Our European subsidiaries:\n\
                     - Magyar Telekom (AS5483)\n\
                     - Slovak Telekom (AS6855)\n\
                     - Hrvatski Telekom (AS5391)";
        let out = extract_siblings(Asn::new(3320), notes, "");
        assert_eq!(asns(&out), vec![5391, 5483, 6855]);
    }

    #[test]
    fn maxihost_style_upstream_list_is_ignored() {
        // Mirrors Listing 1 (Appendix B): upstream connectivity is NOT
        // sibling information.
        let notes = "Maxihost deploys high-performance physical servers.\n\
                     \n\
                     We connect directly with the following ISPs,\n\
                     - Algar (AS16735)\n\
                     - Sparkle (AS6762)\n\
                     - Voxility (AS3223)\n\
                     - GTT (AS3257)\n\
                     - Cogent (AS174)";
        let out = extract_siblings(Asn::new(262287), notes, "");
        assert!(out.is_empty(), "extracted {:?}", out);
    }

    #[test]
    fn blank_line_resets_block_polarity() {
        let notes = "Our subsidiaries:\n- AS100 West\n\nUpstreams:\n- AS200";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![100]);
    }

    #[test]
    fn inline_sibling_sentence() {
        let notes = "AS6470 is part of the Acme group, same organization as AS2914.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![2914, 6470]);
    }

    #[test]
    fn connectivity_cue_dominates_mixed_sentence() {
        let notes = "Our subsidiary network peers with AS174 at multiple locations.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert!(out.is_empty());
    }

    #[test]
    fn aka_as_prefixed_numbers_are_credible_without_cues() {
        let out = extract_siblings(Asn::new(22822), "", "Edgecast, AS15133");
        assert_eq!(asns(&out), vec![15133]);
    }

    #[test]
    fn aka_bare_numbers_are_not_extracted_without_cues() {
        let out = extract_siblings(Asn::new(1), "", "Established 2010, 500 employees");
        assert!(out.is_empty());
    }

    #[test]
    fn notes_uncued_as_mention_is_dropped() {
        // The AT&T case from §5.3: AS7132 claims AS7018 with no ownership
        // cue → conservatively dropped (a real FN of the method).
        let notes = "See AS7018 for peering details.";
        let out = extract_siblings(Asn::new(7132), notes, "");
        assert!(out.is_empty());
    }

    #[test]
    fn own_asn_is_never_a_sibling() {
        let notes = "Sibling networks: AS100, AS200";
        let out = extract_siblings(Asn::new(100), notes, "");
        assert_eq!(asns(&out), vec![200]);
    }

    #[test]
    fn phone_numbers_are_rejected() {
        let notes = "Part of Acme group. NOC: phone +1 555 0100, ext 3356.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert!(out.is_empty(), "extracted {:?}", out);
    }

    #[test]
    fn years_are_rejected() {
        let notes = "Subsidiary of Acme, founded 1998.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert!(out.is_empty());
    }

    #[test]
    fn prefix_limits_are_rejected() {
        let notes = "Same organization as AS5511. Max prefixes: 2000.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![5511]);
    }

    #[test]
    fn ip_addresses_are_rejected() {
        let notes = "Sibling AS2914. Route server at 192.0.2.1.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![2914]);
    }

    #[test]
    fn unit_suffixed_quantities_are_rejected() {
        let notes = "Our sister company AS3257 offers 100G ports.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![3257]);
    }

    #[test]
    fn spanish_sibling_cue() {
        let notes = "Somos filial de Telefónica, también operamos AS6147.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![6147]);
    }

    #[test]
    fn portuguese_sibling_cue() {
        let notes = "Esta rede pertence a Claro Brasil, mesmo grupo que AS4230.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![4230]);
    }

    #[test]
    fn german_sibling_cue() {
        let notes = "Tochtergesellschaft der Deutsche Telekom, siehe AS3320.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![3320]);
    }

    #[test]
    fn spanish_connectivity_cue() {
        let notes = "Conectamos con los proveedores AS174 y AS3356.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert!(out.is_empty());
    }

    #[test]
    fn private_and_reserved_asns_are_dropped() {
        let notes = "Siblings: AS64512, AS0, AS23456, AS65001, AS2914";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![2914]);
    }

    #[test]
    fn duplicates_collapse() {
        let notes = "Siblings: AS100. Our sibling AS100 again.";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![100]);
    }

    #[test]
    fn as_prefix_variants() {
        let notes = "Siblings: AS100, AS 200, AS-300, ASN:400, asn 500";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert_eq!(asns(&out), vec![100, 200, 300, 400, 500]);
    }

    #[test]
    fn word_ending_in_as_is_not_a_prefix() {
        // "gas 3356" must not read as AS3356 — but in a sibling-cued line
        // bare numbers are accepted anyway; use a neutral aka line where
        // only AS-prefixed numbers count.
        let out = extract_siblings(Asn::new(1), "", "texas 3356 gas 209");
        assert!(out.is_empty());
    }

    #[test]
    fn empty_fields_yield_nothing() {
        assert!(extract_siblings(Asn::new(1), "", "").is_empty());
        assert!(extract_siblings(Asn::new(1), "   \n ", " \t").is_empty());
    }

    #[test]
    fn reasons_are_informative() {
        let notes = "Our subsidiaries: AS100";
        let out = extract_siblings(Asn::new(1), notes, "");
        assert!(out[0].reason.contains("sibling/ownership"));
    }
}
