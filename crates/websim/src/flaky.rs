//! Seeded transport faults for the crawl boundary.
//!
//! [`FlakyWebClient`] wraps any [`WebClient`] and injects the failures a
//! real Selenium fleet meets: timeouts, connection resets, 503s and 429s —
//! decided per *host* by a seeded [`EpisodePlan`] (splitmix-style, like
//! `llmsim::FaultProfile::decide`), so a given world + seed always breaks
//! in exactly the same places. Transient episodes are bursts: the first
//! `k` fetches against an afflicted host fail, then the host recovers —
//! which is what makes recovery *verifiable*: wrap this client in
//! [`crate::retry::RetryingWebClient`] with a budget that covers the burst
//! and the crawl must reproduce the flawless crawl bit for bit.

use crate::client::{FetchResult, WebClient};
use borges_resilience::{stable_hash, EpisodePlan, FaultInjector, TransportError};
use borges_types::Url;

/// The transient fault kinds a crawl can meet.
pub const WEB_FAULT_KINDS: [TransportError; 4] = [
    TransportError::Timeout,
    TransportError::ConnectionReset,
    TransportError::ServiceUnavailable,
    TransportError::RateLimited,
];

/// A [`WebClient`] middleware injecting seeded per-host fault episodes.
pub struct FlakyWebClient<C> {
    inner: C,
    injector: FaultInjector,
}

impl<C: WebClient> FlakyWebClient<C> {
    /// Wraps `inner` with the fault episodes `plan` prescribes.
    pub fn new(inner: C, plan: EpisodePlan) -> Self {
        FlakyWebClient {
            inner,
            injector: FaultInjector::new(plan, &WEB_FAULT_KINDS),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> EpisodePlan {
        self.injector.plan()
    }

    /// The stable key episodes are decided by: the URL's host. Every URL
    /// on a host shares its episode — outages afflict servers, not paths.
    pub fn episode_key(url: &Url) -> u64 {
        stable_hash(url.host().as_str().as_bytes())
    }
}

impl<C: WebClient> WebClient for FlakyWebClient<C> {
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
        if let Some(error) = self.injector.intercept(Self::episode_key(url)) {
            return Err(error);
        }
        self.inner.fetch(url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SimWebClient;
    use crate::hosting::SimWeb;

    fn web(hosts: usize) -> SimWeb {
        let mut b = SimWeb::builder();
        for i in 0..hosts {
            b = b.page(&format!("h{i}.example"), None);
        }
        b.build()
    }

    #[test]
    fn chaos_zero_rate_is_transparent() {
        let web = web(50);
        let bare = SimWebClient::browser(&web);
        let flaky = FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::none());
        for i in 0..50 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            assert_eq!(flaky.fetch(&url), bare.fetch(&url));
        }
    }

    #[test]
    fn chaos_bursts_recover_and_match_the_bare_client() {
        let web = web(200);
        let bare = SimWebClient::browser(&web);
        let flaky = FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::calibrated(11));
        let mut faulted_hosts = 0;
        for i in 0..200 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            let mut failures = 0;
            let result = loop {
                match flaky.fetch(&url) {
                    Ok(r) => break r,
                    Err(e) => {
                        assert!(e.is_transient(), "calibrated plan is transient-only");
                        failures += 1;
                        assert!(failures <= 3, "calibrated burst is at most 3");
                    }
                }
            };
            if failures > 0 {
                faulted_hosts += 1;
            }
            // After the burst, the flaky client is the bare client.
            assert_eq!(Ok(result), bare.fetch(&url));
        }
        // ~15% of 200 hosts; loose bounds to stay seed-robust.
        assert!((10..=60).contains(&faulted_hosts), "got {faulted_hosts}");
    }

    #[test]
    fn chaos_episodes_afflict_hosts_not_urls() {
        let web = SimWeb::builder().page("h.example", None).build();
        let flaky = FlakyWebClient::new(
            SimWebClient::browser(&web),
            EpisodePlan {
                transient_rate: 1.0,
                permanent_rate: 0.0,
                max_burst: 1,
                seed: 3,
            },
        );
        let a: Url = "https://h.example/a".parse().unwrap();
        let b: Url = "https://h.example/b".parse().unwrap();
        assert_eq!(FlakyWebClient::<SimWebClient<'_>>::episode_key(&a), {
            FlakyWebClient::<SimWebClient<'_>>::episode_key(&b)
        });
        // The single-failure burst is shared across the host's URLs.
        assert!(flaky.fetch(&a).is_err());
        assert!(flaky.fetch(&b).is_ok());
    }
}
