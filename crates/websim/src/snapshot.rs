//! Web-snapshot serialization.
//!
//! The paper notes (§7) that no longitudinal archive exists for the
//! websites referenced in PeeringDB — once scraped, the observations are
//! gone unless someone stores them. This module gives the simulated web a
//! dated, diffable on-disk form (JSON), so crawls can be archived,
//! reloaded, and compared across snapshots, and so the CLI can ship a
//! whole world as files.

use crate::hosting::{SimWeb, SimWebBuilder};
use crate::site::SiteNode;
use borges_types::Host;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A serialization failure.
#[derive(Debug)]
pub enum WebSnapshotError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// A host string failed validation.
    BadHost(borges_types::ParseError),
}

impl fmt::Display for WebSnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebSnapshotError::Json(e) => write!(f, "web snapshot json: {e}"),
            WebSnapshotError::BadHost(e) => write!(f, "web snapshot host: {e}"),
        }
    }
}

impl Error for WebSnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WebSnapshotError::Json(e) => Some(e),
            WebSnapshotError::BadHost(e) => Some(e),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct HostEntry {
    host: String,
    node: SiteNode,
}

#[derive(Serialize, Deserialize)]
struct Dump {
    hosts: Vec<HostEntry>,
}

/// Serializes a web to JSON (hosts in deterministic order).
pub fn to_json(web: &SimWeb) -> String {
    let dump = Dump {
        hosts: web
            .hosts()
            .map(|(host, node)| HostEntry {
                host: host.as_str().to_string(),
                node: node.clone(),
            })
            .collect(),
    };
    serde_json::to_string_pretty(&dump).expect("web dump serialization cannot fail")
}

/// Streams a web snapshot to a writer one host at a time, so a
/// million-host simulated web never has to exist in memory. The output
/// is the same `{"hosts":[{"host":…,"node":…},…]}` shape [`from_json`]
/// reads (compact rather than pretty-printed).
pub struct SnapshotWriter<W: std::io::Write> {
    out: W,
    count: usize,
}

impl<W: std::io::Write> SnapshotWriter<W> {
    /// Starts a snapshot on `out`.
    pub fn new(mut out: W) -> std::io::Result<Self> {
        out.write_all(b"{\"hosts\":[")?;
        Ok(SnapshotWriter { out, count: 0 })
    }

    /// Appends one host. Hosts may arrive in any order; re-registering a
    /// host is the caller's bug ([`from_json`] would keep the last one,
    /// like [`SimWebBuilder::node`]).
    pub fn node(&mut self, host: &str, node: &SiteNode) -> std::io::Result<()> {
        if self.count > 0 {
            self.out.write_all(b",\n")?;
        } else {
            self.out.write_all(b"\n")?;
        }
        let entry = HostEntry {
            host: host.to_string(),
            node: node.clone(),
        };
        let json = serde_json::to_string(&entry).expect("host entry serialization cannot fail");
        self.out.write_all(json.as_bytes())?;
        self.count += 1;
        Ok(())
    }

    /// Hosts written so far.
    pub fn host_count(&self) -> usize {
        self.count
    }

    /// Closes the JSON document and flushes, returning the host count.
    pub fn finish(mut self) -> std::io::Result<usize> {
        self.out.write_all(b"\n]}\n")?;
        self.out.flush()?;
        Ok(self.count)
    }
}

/// Parses a web snapshot back.
pub fn from_json(text: &str) -> Result<SimWeb, WebSnapshotError> {
    let dump: Dump = serde_json::from_str(text).map_err(WebSnapshotError::Json)?;
    let mut builder = SimWebBuilder::new();
    for entry in dump.hosts {
        let host: Host = entry.host.parse().map_err(WebSnapshotError::BadHost)?;
        builder = builder.node(host, entry.node);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::RedirectKind;
    use borges_types::FaviconHash;

    #[test]
    fn streaming_writer_output_loads_identically() {
        let original = web();
        let mut buf: Vec<u8> = Vec::new();
        let mut writer = SnapshotWriter::new(&mut buf).unwrap();
        for (host, node) in original.hosts() {
            writer.node(host.as_str(), node).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), original.host_count());
        let back = from_json(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back.host_count(), original.host_count());
        for (host, node) in original.hosts() {
            assert_eq!(back.lookup(host), Some(node), "{host} changed");
        }
    }

    #[test]
    fn streaming_writer_empty_snapshot_is_valid() {
        let mut buf: Vec<u8> = Vec::new();
        let writer = SnapshotWriter::new(&mut buf).unwrap();
        assert_eq!(writer.finish().unwrap(), 0);
        let back = from_json(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back.host_count(), 0);
    }

    fn web() -> SimWeb {
        SimWeb::builder()
            .page("www.edg.io", Some(FaviconHash::of_bytes(b"edgio")))
            .page_at(
                "www.clarochile.cl",
                "https://www.clarochile.cl/personas/",
                Some(FaviconHash::of_bytes(b"claro")),
            )
            .redirect(
                "www.limelight.com",
                "https://www.edg.io/",
                RedirectKind::Http,
            )
            .redirect(
                "www.edgecast.com",
                "https://www.edg.io/",
                RedirectKind::JavaScript,
            )
            .down("www.gone.example")
            .build()
    }

    #[test]
    fn roundtrip_preserves_every_node() {
        let original = web();
        let text = to_json(&original);
        let back = from_json(&text).unwrap();
        assert_eq!(back.host_count(), original.host_count());
        for (host, node) in original.hosts() {
            assert_eq!(back.lookup(host), Some(node), "{host} changed");
        }
        assert_eq!(to_json(&back), text, "serialization is stable");
    }

    #[test]
    fn fetch_behaviour_survives_roundtrip() {
        use crate::client::{SimWebClient, WebClient};
        let original = web();
        let back = from_json(&to_json(&original)).unwrap();
        for start in ["www.limelight.com", "www.edgecast.com", "www.gone.example"] {
            let url = format!("http://{start}").parse().unwrap();
            let a = SimWebClient::browser(&original).fetch(&url);
            let b = SimWebClient::browser(&back).fetch(&url);
            assert_eq!(a, b, "fetch of {start} diverged");
        }
    }

    #[test]
    fn malformed_json_is_reported() {
        assert!(matches!(from_json("{"), Err(WebSnapshotError::Json(_))));
    }

    #[test]
    fn bad_host_is_reported() {
        let text = r#"{"hosts":[{"host":"bad host!","node":"Down"}]}"#;
        assert!(matches!(from_json(text), Err(WebSnapshotError::BadHost(_))));
    }
}
