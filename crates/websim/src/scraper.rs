//! The bulk crawl engine.
//!
//! §4.3.1 of the paper: Borges loads every website referenced in PeeringDB
//! records, collecting the final URL each settles on and the favicon that
//! final page serves. This module drives any [`WebClient`] over a batch of
//! `(ASN, raw website string)` pairs, de-duplicating identical URLs through
//! a cache, and produces both per-ASN observations and the funnel
//! statistics reported in §5.2 (entries with websites → unique URLs →
//! reachable sites → unique final URLs → unique favicons).
//!
//! The crawl degrades gracefully: an entry whose fetch fails at the
//! transport layer (after whatever retries the client stack performs) is
//! *abandoned* — counted in [`ScrapeStats::entries_abandoned`], dropped
//! from the observations, and the crawl proceeds. Nothing panics; nothing
//! disappears silently.

use crate::client::{FetchResult, WebClient};
use borges_resilience::{ResilienceStats, TransportError};
use borges_telemetry::CacheStats;
use borges_types::{Asn, FaviconHash, Url};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// What the crawl observed for one network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapedSite {
    /// The URL parsed from the PeeringDB `website` field.
    pub requested: Url,
    /// Where the browser ended up, when the site answered.
    pub final_url: Option<Url>,
    /// The favicon of the final page, when it serves one.
    pub favicon: Option<FaviconHash>,
}

/// Funnel statistics for a crawl, mirroring the §5.2 narrative.
///
/// # Merging
///
/// Stats combine with `+=` for accumulating funnels across *disjoint*
/// crawl batches (e.g. per-region shards of a production crawl). The
/// `unique_*` fields are distinct counts *within each batch*; summing them
/// is exact only when the batches share no URLs/favicons. Concretely: if
/// batch A crawls `{limelight.com, gone.example}` and batch B crawls
/// `{limelight.com, cogentco.com}`, the merged `unique_urls` is
/// 2 + 2 = 4, but a single crawl of the union would report 3 — the shared
/// `limelight.com` is double-counted. The merge still *debug-asserts* the
/// funnel's monotonicity invariants (each stage no larger than the one
/// above it), which hold for any merge; what overlap breaks is only the
/// "distinct across the union" reading. See the
/// `overlapping_batches_overcount_the_funnel` test for the pinned
/// semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrapeStats {
    /// Input pairs whose website field held a parseable URL.
    pub entries_with_website: usize,
    /// Input pairs whose website field was present but unparseable.
    pub entries_with_invalid_url: usize,
    /// Input pairs whose fetch failed at the transport layer after all
    /// recovery was exhausted — abandoned, not silently dropped.
    pub entries_abandoned: usize,
    /// Distinct requested URLs (the paper: 24,200 unique URLs).
    pub unique_urls: usize,
    /// Distinct requested URLs that resolved to a page (paper: 20,742).
    pub reachable_urls: usize,
    /// Distinct final URLs (paper: 20,094).
    pub unique_final_urls: usize,
    /// Distinct final URLs serving a favicon.
    pub final_urls_with_favicon: usize,
    /// Distinct favicons (paper: 14,516).
    pub unique_favicons: usize,
    /// What the resilient client stack spent getting here (zero when the
    /// crawl ran over a bare client).
    pub resilience: ResilienceStats,
}

impl ScrapeStats {
    /// The funnel's internal ordering: every stage is at most as large as
    /// the stage above it. These hold for a single crawl *and* for any
    /// `+=`-merge of crawls (sums preserve `<=`), so a violation always
    /// means corrupted accounting rather than batch overlap.
    fn debug_check_funnel(&self) {
        debug_assert!(self.unique_urls <= self.entries_with_website);
        debug_assert!(self.reachable_urls <= self.unique_urls);
        debug_assert!(self.unique_final_urls <= self.reachable_urls);
        debug_assert!(self.final_urls_with_favicon <= self.unique_final_urls);
        debug_assert!(self.unique_favicons <= self.final_urls_with_favicon);
        debug_assert!(self.entries_abandoned <= self.entries_with_website);
    }
}

impl std::ops::AddAssign for ScrapeStats {
    fn add_assign(&mut self, rhs: Self) {
        // Full destructuring: adding a field to ScrapeStats without
        // deciding how it merges is a compile error here.
        let ScrapeStats {
            entries_with_website,
            entries_with_invalid_url,
            entries_abandoned,
            unique_urls,
            reachable_urls,
            unique_final_urls,
            final_urls_with_favicon,
            unique_favicons,
            resilience,
        } = rhs;
        self.entries_with_website += entries_with_website;
        self.entries_with_invalid_url += entries_with_invalid_url;
        self.entries_abandoned += entries_abandoned;
        self.unique_urls += unique_urls;
        self.reachable_urls += reachable_urls;
        self.unique_final_urls += unique_final_urls;
        self.final_urls_with_favicon += final_urls_with_favicon;
        self.unique_favicons += unique_favicons;
        self.resilience += resilience;
        self.debug_check_funnel();
    }
}

/// The result of a crawl.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrapeReport {
    /// Per-ASN observations, for ASNs whose website parsed and whose fetch
    /// completed (abandoned entries appear only in the stats).
    pub sites: BTreeMap<Asn, ScrapedSite>,
    /// Funnel statistics.
    pub stats: ScrapeStats,
}

impl ScrapeReport {
    /// Groups ASNs by canonical final URL — the input of final-URL matching
    /// (§4.3.2). Only ASNs that landed on a page appear.
    pub fn asns_by_final_url(&self) -> BTreeMap<String, Vec<Asn>> {
        let mut map: BTreeMap<String, Vec<Asn>> = BTreeMap::new();
        for (asn, site) in &self.sites {
            if let Some(final_url) = &site.final_url {
                map.entry(final_url.canonical()).or_default().push(*asn);
            }
        }
        map
    }

    /// Groups final URLs (with their ASNs) by favicon — the input of the
    /// favicon decision tree (§4.3.3).
    pub fn asns_by_favicon(&self) -> BTreeMap<FaviconHash, Vec<(Url, Asn)>> {
        let mut map: BTreeMap<FaviconHash, Vec<(Url, Asn)>> = BTreeMap::new();
        for (asn, site) in &self.sites {
            if let (Some(final_url), Some(favicon)) = (&site.final_url, site.favicon) {
                map.entry(favicon)
                    .or_default()
                    .push((final_url.clone(), *asn));
            }
        }
        map
    }
}

/// The crawl engine. Wraps a [`WebClient`] with a fetch cache so each
/// distinct URL is loaded once regardless of how many networks reference
/// it. Terminal transport errors are cached too (negative caching): once
/// the client stack has exhausted its budget on a URL, other entries
/// referencing it share the verdict instead of re-hammering the host.
pub struct Scraper<C> {
    client: C,
    cache: Mutex<HashMap<String, Result<FetchResult, TransportError>>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl<C: WebClient> Scraper<C> {
    /// Creates a scraper over a client.
    pub fn new(client: C) -> Self {
        Scraper {
            client,
            cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Fetches one URL through the cache.
    pub fn fetch_cached(&self, url: &Url) -> Result<FetchResult, TransportError> {
        let key = url.canonical();
        if let Some(hit) = self.cache.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let result = self.client.fetch(url);
        self.cache.lock().insert(key, result.clone());
        result
    }

    /// Hit/miss counters for the fetch (redirect) cache. The cache is
    /// unbounded, so `evictions` is always 0. Under a parallel crawl,
    /// threads racing on the same uncached URL may each count a miss —
    /// the counters are observational and feed the run ledger only, never
    /// the `PartialEq`-compared funnel stats.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            evictions: 0,
            entries: self.cache.lock().len() as u64,
        }
    }

    /// Crawls a batch of `(asn, raw website field)` pairs.
    ///
    /// Entries with empty or unparseable website fields are counted in the
    /// stats but produce no observation — exactly how a scraper must treat
    /// operator junk. Entries whose fetch fails at the transport layer are
    /// likewise counted ([`ScrapeStats::entries_abandoned`]) and skipped:
    /// the crawl completes on partial evidence rather than dying.
    pub fn crawl<'a>(&self, entries: impl IntoIterator<Item = (Asn, &'a str)>) -> ScrapeReport {
        let resolved = entries
            .into_iter()
            .map(|(asn, raw)| (asn, self.resolve(raw)));
        assemble(resolved)
    }

    /// Like [`Scraper::crawl`], fetching with `threads` worker threads.
    ///
    /// Fetches are pure and per-entry independent, and assembly is
    /// order-canonical (ASN-keyed maps), so the report is byte-identical
    /// to the sequential one — parallelism only changes wall-clock time.
    /// In a production deployment this is where a pool of headless
    /// browsers would sit.
    pub fn crawl_parallel(&self, entries: Vec<(Asn, &str)>, threads: usize) -> ScrapeReport
    where
        C: Sync,
    {
        let resolved =
            borges_parallel::map_items(&entries, threads, |(asn, raw)| (*asn, self.resolve(raw)));
        assemble(resolved)
    }

    /// Parses and fetches one raw website field — the per-entry unit of
    /// crawl work. Public so the streaming ingest path can schedule
    /// resolutions individually (per-host rate-limited, bounded
    /// in-flight) and feed the outcomes to a [`ReportAssembler`]; the
    /// batch paths above are thin wrappers over the same call.
    pub fn resolve(&self, raw: &str) -> Resolution {
        let raw = raw.trim();
        if raw.is_empty() {
            return Resolution::Empty;
        }
        match raw.parse::<Url>() {
            Ok(url) => match self.fetch_cached(&url) {
                Ok(fetched) => Resolution::Fetched(Box::new((url, fetched))),
                Err(e) => Resolution::Failed(url, e),
            },
            Err(_) => Resolution::Invalid,
        }
    }
}

/// The per-entry outcome of parsing + fetching a website field.
#[derive(Debug, Clone)]
pub enum Resolution {
    /// The website field was empty (after trimming).
    Empty,
    /// The website field did not parse as a URL.
    Invalid,
    /// The fetch completed (boxed to keep the variant small).
    Fetched(Box<(Url, FetchResult)>),
    /// The fetch failed at the transport layer after all recovery.
    Failed(Url, TransportError),
}

impl Resolution {
    /// The host key this resolution's fetch hits, when it fetches at
    /// all — the string per-host breakers and rate-limit buckets key
    /// on. `Empty`/`Invalid` entries never reach the network.
    pub fn host(&self) -> Option<&str> {
        match self {
            Resolution::Empty | Resolution::Invalid => None,
            Resolution::Fetched(boxed) => Some(boxed.0.host().as_str()),
            Resolution::Failed(url, _) => Some(url.host().as_str()),
        }
    }
}

/// Incrementally folds resolved entries into a [`ScrapeReport`] — the
/// streaming twin of the batch fold inside [`Scraper::crawl`].
///
/// `push` entries in canonical input order (the streaming reassembly
/// buffer guarantees it), then `finish`. Because the batch paths
/// delegate to this same assembler, a streaming crawl that pushes in
/// input order produces a byte-identical report.
#[derive(Debug, Default)]
pub struct ReportAssembler {
    report: ScrapeReport,
    requested: BTreeSet<String>,
    reachable: BTreeSet<String>,
    finals: BTreeSet<String>,
    finals_with_icon: BTreeSet<String>,
    favicons: BTreeSet<FaviconHash>,
}

impl ReportAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one entry's resolution.
    pub fn push(&mut self, asn: Asn, resolution: Resolution) {
        let (url, fetched) = match resolution {
            Resolution::Empty => return,
            Resolution::Invalid => {
                self.report.stats.entries_with_invalid_url += 1;
                return;
            }
            Resolution::Failed(url, _error) => {
                // The URL was real and we tried: it stays in the funnel's
                // top stages, but produces no observation. abandoned +
                // observed == entries_with_website, always.
                self.report.stats.entries_with_website += 1;
                self.report.stats.entries_abandoned += 1;
                self.requested.insert(url.canonical());
                return;
            }
            Resolution::Fetched(boxed) => *boxed,
        };
        self.report.stats.entries_with_website += 1;
        self.requested.insert(url.canonical());
        if fetched.is_ok() {
            self.reachable.insert(url.canonical());
        }
        if let Some(final_url) = &fetched.final_url {
            self.finals.insert(final_url.canonical());
            if let Some(icon) = fetched.favicon {
                self.finals_with_icon.insert(final_url.canonical());
                self.favicons.insert(icon);
            }
        }
        self.report.sites.insert(
            asn,
            ScrapedSite {
                requested: url,
                final_url: fetched.final_url,
                favicon: fetched.favicon,
            },
        );
    }

    /// Entries folded in that produced an observation or an accounted
    /// skip — i.e. everything pushed (observational convenience for
    /// ledger rows).
    pub fn observed_sites(&self) -> usize {
        self.report.sites.len()
    }

    /// Seals the funnel's distinct-count stages and returns the report.
    pub fn finish(self) -> ScrapeReport {
        let mut report = self.report;
        report.stats.unique_urls = self.requested.len();
        report.stats.reachable_urls = self.reachable.len();
        report.stats.unique_final_urls = self.finals.len();
        report.stats.final_urls_with_favicon = self.finals_with_icon.len();
        report.stats.unique_favicons = self.favicons.len();
        report.stats.debug_check_funnel();
        report
    }
}

/// Folds resolved entries into a report (single-threaded; canonical).
fn assemble(entries: impl IntoIterator<Item = (Asn, Resolution)>) -> ScrapeReport {
    let mut assembler = ReportAssembler::new();
    for (asn, resolution) in entries {
        assembler.push(asn, resolution);
    }
    assembler.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SimWebClient;
    use crate::hosting::SimWeb;
    use crate::site::RedirectKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn icon(name: &str) -> FaviconHash {
        FaviconHash::of_bytes(name.as_bytes())
    }

    fn web() -> SimWeb {
        SimWeb::builder()
            .page("www.edg.io", Some(icon("edgio")))
            .redirect(
                "www.limelight.com",
                "https://www.edg.io/",
                RedirectKind::Http,
            )
            .redirect(
                "www.edgecast.com",
                "https://www.edg.io/",
                RedirectKind::JavaScript,
            )
            .page("www.cogentco.com", Some(icon("cogent")))
            .down("www.gone.example")
            .build()
    }

    #[test]
    fn crawl_collects_final_urls_and_favicons() {
        let web = web();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let report = scraper.crawl(vec![
            (Asn::new(22822), "www.limelight.com"),
            (Asn::new(15133), "www.edgecast.com"),
            (Asn::new(174), "https://www.cogentco.com/"),
            (Asn::new(99), "www.gone.example"),
            (Asn::new(98), ""),
            (Asn::new(97), "not a url at all"),
        ]);
        // The Limelight/Edgecast merger becomes visible: same final URL.
        let groups = report.asns_by_final_url();
        let edgio = groups.get("https://www.edg.io/").unwrap();
        assert_eq!(edgio, &vec![Asn::new(15133), Asn::new(22822)]);

        assert_eq!(report.stats.entries_with_website, 4);
        assert_eq!(report.stats.entries_with_invalid_url, 1);
        assert_eq!(report.stats.entries_abandoned, 0);
        assert_eq!(report.stats.unique_urls, 4);
        assert_eq!(report.stats.reachable_urls, 3);
        assert_eq!(report.stats.unique_final_urls, 2);
        assert_eq!(report.stats.unique_favicons, 2);
    }

    #[test]
    fn dead_sites_yield_no_observation_urls() {
        let web = web();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let report = scraper.crawl(vec![(Asn::new(99), "www.gone.example")]);
        let site = report.sites.get(&Asn::new(99)).unwrap();
        assert!(site.final_url.is_none());
        assert!(site.favicon.is_none());
        assert_eq!(report.stats.unique_final_urls, 0);
    }

    #[test]
    fn favicon_grouping_carries_urls() {
        let web = web();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let report = scraper.crawl(vec![
            (Asn::new(22822), "www.limelight.com"),
            (Asn::new(174), "www.cogentco.com"),
        ]);
        let by_icon = report.asns_by_favicon();
        assert_eq!(by_icon.len(), 2);
        let edgio_group = by_icon.get(&icon("edgio")).unwrap();
        assert_eq!(edgio_group.len(), 1);
        assert_eq!(edgio_group[0].1, Asn::new(22822));
    }

    #[test]
    fn cache_deduplicates_fetches() {
        struct CountingClient<'w> {
            inner: SimWebClient<'w>,
            calls: AtomicUsize,
        }
        impl WebClient for CountingClient<'_> {
            fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.fetch(url)
            }
        }
        let web = web();
        let counting = CountingClient {
            inner: SimWebClient::browser(&web),
            calls: AtomicUsize::new(0),
        };
        let scraper = Scraper::new(&counting);
        scraper.crawl(vec![
            (Asn::new(1), "www.cogentco.com"),
            (Asn::new(2), "www.cogentco.com"),
            (Asn::new(3), "http://www.cogentco.com/"),
        ]);
        // All three normalize to the same canonical URL → exactly one fetch.
        assert_eq!(counting.calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let web = web();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        assert_eq!(scraper.cache_stats(), CacheStats::default());
        scraper.crawl(vec![
            (Asn::new(1), "www.cogentco.com"),
            (Asn::new(2), "www.cogentco.com"),
            (Asn::new(3), "http://www.cogentco.com/"),
            (Asn::new(4), "www.gone.example"),
        ]);
        let stats = scraper.cache_stats();
        assert_eq!(stats.misses, 2, "two distinct canonical URLs fetched");
        assert_eq!(stats.hits, 2, "two entries reused the cogentco result");
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 0, "the fetch cache is unbounded");
        // Negative caching counts as a hit too.
        let url: Url = "www.gone.example".parse().unwrap();
        let _ = scraper.fetch_cached(&url);
        assert_eq!(scraper.cache_stats().hits, 3);
    }

    #[test]
    fn transport_failures_are_abandoned_not_dropped() {
        /// Fails permanently for one host, passes everything else through.
        struct BlockingClient<'w> {
            inner: SimWebClient<'w>,
            blocked_host: &'static str,
        }
        impl WebClient for BlockingClient<'_> {
            fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
                if url.host().as_str() == self.blocked_host {
                    Err(TransportError::Forbidden)
                } else {
                    self.inner.fetch(url)
                }
            }
        }
        let web = web();
        let client = BlockingClient {
            inner: SimWebClient::browser(&web),
            blocked_host: "www.limelight.com",
        };
        let scraper = Scraper::new(&client);
        let report = scraper.crawl(vec![
            (Asn::new(22822), "www.limelight.com"),
            (Asn::new(174), "www.cogentco.com"),
            (Asn::new(97), "not a url at all"),
        ]);
        // The blocked entry is accounted, not silently dropped…
        assert_eq!(report.stats.entries_with_website, 2);
        assert_eq!(report.stats.entries_abandoned, 1);
        assert_eq!(report.stats.unique_urls, 2);
        // …and produces no observation.
        assert!(!report.sites.contains_key(&Asn::new(22822)));
        assert!(report.sites.contains_key(&Asn::new(174)));
        // abandoned + observed == entries_with_website.
        assert_eq!(
            report.stats.entries_abandoned + report.sites.len(),
            report.stats.entries_with_website
        );
    }

    #[test]
    fn parallel_crawl_is_identical_to_sequential() {
        let web = web();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let entries = vec![
            (Asn::new(22822), "www.limelight.com"),
            (Asn::new(15133), "www.edgecast.com"),
            (Asn::new(174), "www.cogentco.com"),
            (Asn::new(99), "www.gone.example"),
            (Asn::new(98), ""),
            (Asn::new(97), "not a url at all"),
        ];
        let sequential = scraper.crawl(entries.clone());
        for threads in [1, 2, 3, 8] {
            let scraper = Scraper::new(SimWebClient::browser(&web));
            let parallel = scraper.crawl_parallel(entries.clone(), threads);
            assert_eq!(parallel, sequential, "diverged with {threads} threads");
        }
    }

    #[test]
    fn stats_accumulate_across_disjoint_batches() {
        let web = web();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let batch_a = vec![
            (Asn::new(22822), "www.limelight.com"),
            (Asn::new(99), "www.gone.example"),
        ];
        let batch_b = vec![
            (Asn::new(174), "www.cogentco.com"),
            (Asn::new(97), "not a url at all"),
        ];
        let combined: Vec<_> = batch_a.iter().chain(&batch_b).cloned().collect();

        let mut summed = scraper.crawl(batch_a).stats;
        summed += scraper.crawl(batch_b).stats;
        // Disjoint URL sets → the funnel sums exactly.
        let fresh = Scraper::new(SimWebClient::browser(&web));
        assert_eq!(summed, fresh.crawl(combined).stats);
    }

    /// Pins the documented `+=` caveat: merging batches that *share* URLs
    /// overcounts the `unique_*` stages relative to a single crawl of the
    /// union, while the per-entry counters still sum exactly.
    #[test]
    fn overlapping_batches_overcount_the_funnel() {
        let web = web();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        // Both batches crawl limelight.com — the overlap.
        let batch_a = vec![
            (Asn::new(22822), "www.limelight.com"),
            (Asn::new(99), "www.gone.example"),
        ];
        let batch_b = vec![
            (Asn::new(23), "www.limelight.com"),
            (Asn::new(174), "www.cogentco.com"),
        ];
        let union = vec![
            (Asn::new(22822), "www.limelight.com"),
            (Asn::new(99), "www.gone.example"),
            (Asn::new(23), "www.limelight.com"),
            (Asn::new(174), "www.cogentco.com"),
        ];

        let mut summed = scraper.crawl(batch_a).stats;
        summed += scraper.crawl(batch_b).stats;
        let single = Scraper::new(SimWebClient::browser(&web)).crawl(union).stats;

        // Per-entry counters sum exactly regardless of overlap…
        assert_eq!(summed.entries_with_website, single.entries_with_website);
        // …but every distinct-count stage double-counts the shared URL.
        assert_eq!(single.unique_urls, 3);
        assert_eq!(summed.unique_urls, 4);
        assert_eq!(single.reachable_urls, 2);
        assert_eq!(summed.reachable_urls, 3);
        assert_eq!(single.unique_favicons, 2);
        assert_eq!(summed.unique_favicons, 3);
    }

    #[test]
    fn whitespace_websites_are_skipped_silently() {
        let web = web();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let report = scraper.crawl(vec![(Asn::new(1), "   ")]);
        assert!(report.sites.is_empty());
        assert_eq!(report.stats.entries_with_website, 0);
        assert_eq!(report.stats.entries_with_invalid_url, 0);
    }
}
