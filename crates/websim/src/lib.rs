//! # borges-websim
//!
//! A deterministic hosted-web simulator — the substrate behind Borges's
//! web-based sibling inference (§4.3 of the paper).
//!
//! The paper scrapes the live web with Selenium in headless-browser mode so
//! that JavaScript-driven "refreshes and redirects" (R&R) resolve the same
//! way they do for a human visitor, and fetches favicons through Google's
//! favicon API. Neither resource is reachable here, so this crate provides
//! the closest synthetic equivalent that exercises the same code paths:
//!
//! * [`site`] — what a virtual host serves: a page with a favicon, a
//!   redirect (HTTP, meta-refresh or JavaScript), or nothing (dead site);
//! * [`hosting`] — [`hosting::SimWeb`], the host table of the whole
//!   simulated web;
//! * [`client`] — the [`client::WebClient`] trait and
//!   [`client::SimWebClient`], which follows redirect chains
//!   with loop/TTL guards. The client models the headless-browser
//!   distinction: a non-JS client does not follow JavaScript redirects,
//!   reproducing why the paper needed Selenium rather than plain HTTP;
//! * [`scraper`] — the bulk crawl engine producing final URLs and favicons
//!   for every PeeringDB `website` entry, with the funnel statistics §5.2
//!   reports;
//! * [`flaky`] — [`flaky::FlakyWebClient`], seeded per-host transport-fault
//!   episodes (timeouts, resets, 503/429) for chaos testing the crawl;
//! * [`retry`] — [`retry::RetryingWebClient`], the recovery stack
//!   (deterministic backoff, budgets, per-host circuit breakers) that
//!   absorbs recoverable faults and accounts for the rest.
//!
//! Everything is deterministic; the "web" is a value you construct.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod faviconapi;
pub mod flaky;
pub mod hosting;
pub mod retry;
pub mod scraper;
pub mod site;
pub mod snapshot;
pub mod streaming;

pub use client::{FetchOutcome, FetchResult, SimWebClient, WebClient, MAX_REDIRECTS};
pub use flaky::{FlakyWebClient, WEB_FAULT_KINDS};
pub use hosting::{SimWeb, SimWebBuilder};
pub use retry::RetryingWebClient;
pub use scraper::{ReportAssembler, Resolution, ScrapeReport, ScrapeStats, ScrapedSite, Scraper};
pub use site::{RedirectKind, SiteNode};
pub use snapshot::SnapshotWriter;
pub use streaming::StreamingWebClient;
