//! The simulated web: a host table.

use crate::site::{RedirectKind, SiteNode};
use borges_types::{FaviconHash, Host, Url};
use std::collections::BTreeMap;

/// Builder for a [`SimWeb`].
#[derive(Debug, Default)]
pub struct SimWebBuilder {
    hosts: BTreeMap<Host, SiteNode>,
}

impl SimWebBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a host serving `node`. Re-registering a host replaces the
    /// previous node (last writer wins, like re-deploying a site).
    pub fn host(mut self, host: &str, node: SiteNode) -> Self {
        let host: Host = host.parse().expect("valid host literal");
        self.hosts.insert(host, node);
        self
    }

    /// Registers a page at `https://<host>/` with the given favicon.
    pub fn page(self, host: &str, favicon: Option<FaviconHash>) -> Self {
        let node = SiteNode::page(host, favicon);
        self.host(host, node)
    }

    /// Registers a page whose canonical URL carries a path, e.g. the
    /// paper's `https://www.clarochile.cl/personas/`.
    pub fn page_at(self, host: &str, canonical: &str, favicon: Option<FaviconHash>) -> Self {
        let canonical: Url = canonical.parse().expect("valid canonical url literal");
        self.host(host, SiteNode::Page { canonical, favicon })
    }

    /// Registers a redirect from `host` to `to` (full URL).
    pub fn redirect(self, host: &str, to: &str, kind: RedirectKind) -> Self {
        let to: Url = to.parse().expect("valid redirect target literal");
        self.host(host, SiteNode::Redirect { to, kind })
    }

    /// Registers a dead host.
    pub fn down(self, host: &str) -> Self {
        self.host(host, SiteNode::Down)
    }

    /// Registers a node directly (used by the generator, which already has
    /// parsed values).
    pub fn node(mut self, host: Host, node: SiteNode) -> Self {
        self.hosts.insert(host, node);
        self
    }

    /// Freezes the web.
    pub fn build(self) -> SimWeb {
        SimWeb { hosts: self.hosts }
    }
}

/// The simulated web — an immutable host table the clients resolve against.
///
/// Hosts absent from the table behave like NXDOMAIN: fetches fail the same
/// way they do for [`SiteNode::Down`].
#[derive(Debug, Clone, Default)]
pub struct SimWeb {
    hosts: BTreeMap<Host, SiteNode>,
}

impl SimWeb {
    /// A builder for a new web.
    pub fn builder() -> SimWebBuilder {
        SimWebBuilder::new()
    }

    /// What `host` serves, if registered.
    pub fn lookup(&self, host: &Host) -> Option<&SiteNode> {
        self.hosts.get(host)
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Iterates all `(host, node)` pairs in host order.
    pub fn hosts(&self) -> impl Iterator<Item = (&Host, &SiteNode)> {
        self.hosts.iter()
    }

    /// The favicon a final URL serves, mimicking the Google favicon API the
    /// paper queries (§4.3.1): given a URL, return the favicon of the host's
    /// page, if the host is up and serves one.
    pub fn favicon_of(&self, url: &Url) -> Option<FaviconHash> {
        match self.lookup(url.host())? {
            SiteNode::Page { favicon, .. } => *favicon,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let web = SimWeb::builder()
            .page("www.lumen.com", Some(FaviconHash::of_bytes(b"lumen")))
            .down("www.dead.example")
            .redirect(
                "www.sprint.com",
                "https://www.t-mobile.com/",
                RedirectKind::Http,
            )
            .build();
        assert_eq!(web.host_count(), 3);
        let host: Host = "www.lumen.com".parse().unwrap();
        assert!(matches!(web.lookup(&host), Some(SiteNode::Page { .. })));
        let missing: Host = "nxdomain.example".parse().unwrap();
        assert!(web.lookup(&missing).is_none());
    }

    #[test]
    fn last_registration_wins() {
        let web = SimWeb::builder().page("a.com", None).down("a.com").build();
        let host: Host = "a.com".parse().unwrap();
        assert!(matches!(web.lookup(&host), Some(SiteNode::Down)));
        assert_eq!(web.host_count(), 1);
    }

    #[test]
    fn favicon_of_returns_page_favicon_only() {
        let icon = FaviconHash::of_bytes(b"claro");
        let web = SimWeb::builder()
            .page_at(
                "www.clarochile.cl",
                "https://www.clarochile.cl/personas/",
                Some(icon),
            )
            .redirect(
                "old.claro.cl",
                "https://www.clarochile.cl/",
                RedirectKind::Http,
            )
            .build();
        let url: Url = "https://www.clarochile.cl/personas/".parse().unwrap();
        assert_eq!(web.favicon_of(&url), Some(icon));
        let url: Url = "https://old.claro.cl/".parse().unwrap();
        assert_eq!(web.favicon_of(&url), None, "redirects serve no favicon");
        let url: Url = "https://unknown.example/".parse().unwrap();
        assert_eq!(web.favicon_of(&url), None);
    }
}
