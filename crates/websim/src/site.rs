//! What a virtual host serves.

use borges_types::{FaviconHash, Url};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a redirect is implemented on the wire.
///
/// The distinction matters because only a browser-grade client executes
/// JavaScript: the paper uses Selenium headless precisely so that
/// [`RedirectKind::JavaScript`] hops resolve (§4.3.1). A plain HTTP client
/// sees a 200 page and stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RedirectKind {
    /// An HTTP `3xx` + `Location:` header. Any client follows it.
    Http,
    /// `<meta http-equiv="refresh">`. Any HTML-aware client follows it.
    MetaRefresh,
    /// `window.location = …` in page JavaScript. Only a JS-executing
    /// (headless-browser) client follows it.
    JavaScript,
}

impl fmt::Display for RedirectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RedirectKind::Http => "http-3xx",
            RedirectKind::MetaRefresh => "meta-refresh",
            RedirectKind::JavaScript => "javascript",
        })
    }
}

/// What one virtual host serves.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteNode {
    /// A landing page.
    Page {
        /// The canonical URL the site settles on (a host may serve its
        /// content under a path, e.g. `/personas/` in the paper's Claro
        /// examples).
        canonical: Url,
        /// The favicon served with the page, if any (3 of the paper's
        /// 20,094 final URLs had none).
        favicon: Option<FaviconHash>,
    },
    /// A redirect to another URL.
    Redirect {
        /// Redirect target.
        to: Url,
        /// Mechanism.
        kind: RedirectKind,
    },
    /// The host does not answer (DNS failure, timeout, 5xx…). The paper
    /// found ~17% of referenced websites unavailable.
    Down,
}

impl SiteNode {
    /// Convenience: a page whose canonical URL is `https://<host>/`.
    pub fn page(host: &str, favicon: Option<FaviconHash>) -> SiteNode {
        SiteNode::Page {
            canonical: Url::https(host).expect("valid host literal"),
            favicon,
        }
    }

    /// Convenience: an HTTP redirect to `https://<host>/`.
    pub fn redirect_to(host: &str, kind: RedirectKind) -> SiteNode {
        SiteNode::Redirect {
            to: Url::https(host).expect("valid host literal"),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_helper_builds_https_canonical() {
        let n = SiteNode::page("www.lumen.com", None);
        match n {
            SiteNode::Page { canonical, favicon } => {
                assert_eq!(canonical.to_string(), "https://www.lumen.com/");
                assert!(favicon.is_none());
            }
            _ => panic!("expected page"),
        }
    }

    #[test]
    fn redirect_kinds_display() {
        assert_eq!(RedirectKind::Http.to_string(), "http-3xx");
        assert_eq!(RedirectKind::JavaScript.to_string(), "javascript");
    }
}
