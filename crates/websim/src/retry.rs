//! The resilient crawl client.
//!
//! [`RetryingWebClient`] wraps any [`WebClient`] with the recovery stack
//! from `borges-resilience`: a [`RetryPolicy`] (exponential backoff,
//! deterministic jitter, attempt + deadline budgets) and an optional
//! per-host [`BreakerRegistry`]. Backoff sleeps on an injectable [`Clock`]
//! — the default [`SimClock`] makes retried crawls as fast as unretried
//! ones — and everything the stack spends is tallied in a
//! [`ResilienceStats`] the scraper folds into its funnel.

use crate::client::{FetchResult, WebClient};
use borges_resilience::{
    stable_hash, BreakerConfig, BreakerRegistry, BreakerVerdict, Clock, ResilienceStats,
    RetryPolicy, SimClock, TransportError,
};
use borges_telemetry::{BreakerEvent, Telemetry};
use borges_types::Url;
use parking_lot::Mutex;
use std::sync::Arc;

/// A [`WebClient`] middleware that retries transient transport failures
/// and (optionally) fast-fails hosts whose circuit breaker is open.
pub struct RetryingWebClient<C> {
    inner: C,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    breakers: Option<BreakerRegistry>,
    stats: Mutex<ResilienceStats>,
    telemetry: Telemetry,
}

impl<C: WebClient> RetryingWebClient<C> {
    /// Wraps `inner` under `policy`, sleeping on a virtual [`SimClock`]
    /// and with no circuit breakers.
    pub fn new(inner: C, policy: RetryPolicy) -> Self {
        RetryingWebClient {
            inner,
            policy,
            clock: Arc::new(SimClock::new()),
            breakers: None,
            stats: Mutex::new(ResilienceStats::default()),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Adds per-host circuit breakers.
    pub fn with_breakers(mut self, config: BreakerConfig) -> Self {
        self.breakers = Some(BreakerRegistry::new(config));
        self
    }

    /// Replaces the clock (a production deployment passes
    /// [`borges_resilience::SystemClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a telemetry context: every logical fetch records attempt,
    /// recovery, and abandonment counters, a call-duration histogram on
    /// this stack's clock (so backoff spend is included), and a
    /// [`BreakerEvent`] whenever a host's breaker opens. Pair with
    /// [`RetryingWebClient::with_clock`] on the telemetry's own clock so
    /// trace timestamps and backoff agree.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// What the stack has spent so far.
    pub fn stats(&self) -> ResilienceStats {
        *self.stats.lock()
    }

    /// Hosts whose breaker is currently open (empty without breakers).
    pub fn open_hosts(&self) -> Vec<String> {
        self.breakers
            .as_ref()
            .map(|r| r.open_keys())
            .unwrap_or_default()
    }
}

impl<C: WebClient> WebClient for RetryingWebClient<C> {
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
        let host = url.host().as_str().to_string();
        let key = stable_hash(host.as_bytes());
        let breaker = self.breakers.as_ref().map(|r| r.breaker(&host));
        let mut trips = 0u64;
        let mut fast_fails = 0u64;
        let started_ms = self.clock.now_ms();

        let outcome = self.policy.run(&*self.clock, key, |_attempt| {
            if let Some(b) = &breaker {
                if !b.allow(&*self.clock) {
                    fast_fails += 1;
                    return Err(TransportError::CircuitOpen);
                }
            }
            match self.inner.fetch(url) {
                Ok(result) => {
                    if let Some(b) = &breaker {
                        b.record_success();
                    }
                    Ok(result)
                }
                Err(e) => {
                    if let Some(b) = &breaker {
                        if b.record_failure(&*self.clock) == BreakerVerdict::Tripped {
                            trips += 1;
                        }
                    }
                    Err(e)
                }
            }
        });

        let mut stats = self.stats.lock();
        stats.calls += 1;
        stats.attempts += outcome.attempts as u64;
        stats.breaker_trips += trips;
        stats.breaker_fast_fails += fast_fails;
        if outcome.recovered() {
            stats.recovered += 1;
        }
        if outcome.result.is_err() {
            stats.abandoned += 1;
        }
        drop(stats);

        if self.telemetry.is_enabled() {
            self.telemetry.counter("borges_web_calls_total", 1);
            self.telemetry
                .counter("borges_web_attempts_total", outcome.attempts as u64);
            if outcome.recovered() {
                self.telemetry.counter("borges_web_recovered_total", 1);
            }
            if outcome.result.is_err() {
                self.telemetry.counter("borges_web_abandoned_total", 1);
            }
            if fast_fails > 0 {
                self.telemetry
                    .counter("borges_web_breaker_fast_fails_total", fast_fails);
            }
            let now_ms = self.clock.now_ms();
            self.telemetry
                .observe_ms("borges_web_call_ms", now_ms.saturating_sub(started_ms));
            if trips > 0 {
                self.telemetry
                    .counter("borges_web_breaker_trips_total", trips);
                self.telemetry.record_breaker_event(BreakerEvent {
                    boundary: "web".to_string(),
                    key: host,
                    transition: "open".to_string(),
                    at_ms: now_ms,
                });
            }
        }
        outcome.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SimWebClient;
    use crate::flaky::FlakyWebClient;
    use crate::hosting::SimWeb;
    use borges_resilience::EpisodePlan;

    fn web(hosts: usize) -> SimWeb {
        let mut b = SimWeb::builder();
        for i in 0..hosts {
            b = b.page(&format!("h{i}.example"), None);
        }
        b.build()
    }

    #[test]
    fn chaos_retries_erase_recoverable_faults() {
        let web = web(100);
        let bare = SimWebClient::browser(&web);
        let client = RetryingWebClient::new(
            FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::calibrated(5)),
            RetryPolicy::standard(5),
        );
        for i in 0..100 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            assert_eq!(client.fetch(&url), bare.fetch(&url));
        }
        let stats = client.stats();
        assert_eq!(stats.calls, 100);
        assert_eq!(stats.abandoned, 0, "calibrated chaos is fully recoverable");
        assert!(stats.recovered > 0, "some hosts needed retries");
        assert!(stats.attempts > stats.calls);
    }

    #[test]
    fn chaos_permanent_blocks_are_abandoned_with_budget_left() {
        let web = web(1);
        let client = RetryingWebClient::new(
            FlakyWebClient::new(
                SimWebClient::browser(&web),
                EpisodePlan {
                    transient_rate: 0.0,
                    permanent_rate: 1.0,
                    max_burst: 0,
                    seed: 1,
                },
            ),
            RetryPolicy::standard(1),
        );
        let url: Url = "https://h0.example/".parse().unwrap();
        assert_eq!(client.fetch(&url), Err(TransportError::Forbidden));
        let stats = client.stats();
        assert_eq!(stats.abandoned, 1);
        assert_eq!(stats.attempts, 1, "permanent errors are not retried");
    }

    #[test]
    fn chaos_breaker_fast_fails_a_dead_host_then_reprobes() {
        let web = web(1);
        let clock = Arc::new(SimClock::new());
        let client = RetryingWebClient::new(
            FlakyWebClient::new(
                SimWebClient::browser(&web),
                EpisodePlan {
                    transient_rate: 1.0,
                    permanent_rate: 0.0,
                    // A burst far beyond the retry budget: the host is
                    // effectively down for many consecutive fetches.
                    max_burst: 40,
                    seed: 2,
                },
            ),
            RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 10,
                max_delay_ms: 10,
                deadline_ms: u64::MAX,
                jitter_seed: 2,
            },
        )
        .with_breakers(BreakerConfig {
            failure_threshold: 4,
            open_ms: 1_000_000,
        })
        .with_clock(clock);
        let url: Url = "https://h0.example/".parse().unwrap();

        // First logical call: 3 real attempts, breaker still closed.
        assert!(client.fetch(&url).is_err());
        // Second: one more real failure trips the breaker at 4.
        assert!(client.fetch(&url).is_err());
        assert_eq!(client.stats().breaker_trips, 1);
        assert_eq!(client.open_hosts(), vec!["h0.example".to_string()]);

        // Third: the open breaker fast-fails without touching the host.
        let before = client.stats().breaker_fast_fails;
        assert_eq!(client.fetch(&url), Err(TransportError::CircuitOpen));
        assert!(client.stats().breaker_fast_fails > before);
    }

    #[test]
    fn telemetry_counts_attempts_and_records_breaker_trips() {
        use borges_telemetry::Verbosity;
        let web = web(1);
        let tel = Telemetry::sim(Verbosity::Quiet);
        let client = RetryingWebClient::new(
            FlakyWebClient::new(
                SimWebClient::browser(&web),
                EpisodePlan {
                    transient_rate: 1.0,
                    permanent_rate: 0.0,
                    max_burst: 40,
                    seed: 2,
                },
            ),
            RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 10,
                max_delay_ms: 10,
                deadline_ms: u64::MAX,
                jitter_seed: 2,
            },
        )
        .with_breakers(BreakerConfig {
            failure_threshold: 4,
            open_ms: 1_000_000,
        })
        .with_clock(tel.clock())
        .with_telemetry(tel.clone());
        let url: Url = "https://h0.example/".parse().unwrap();
        assert!(client.fetch(&url).is_err());
        assert!(client.fetch(&url).is_err());

        let snap = tel.metrics_snapshot();
        assert_eq!(snap.counter("borges_web_calls_total"), 2);
        assert_eq!(
            snap.counter("borges_web_attempts_total"),
            client.stats().attempts
        );
        assert_eq!(snap.counter("borges_web_abandoned_total"), 2);
        assert_eq!(snap.counter("borges_web_breaker_trips_total"), 1);
        // Backoff slept on the shared clock → the histogram saw real
        // (virtual) durations.
        let hist = snap.histogram("borges_web_call_ms").unwrap();
        assert_eq!(hist.count, 2);
        assert!(hist.sum_ms > 0, "backoff spend lands in the histogram");
        // The trip surfaced as a breaker event with the host as key.
        let events = tel.breaker_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].boundary, "web");
        assert_eq!(events[0].key, "h0.example");
        assert_eq!(events[0].transition, "open");
    }

    #[test]
    fn chaos_stats_account_for_every_call() {
        let web = web(300);
        let client = RetryingWebClient::new(
            FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::with_outages(9)),
            RetryPolicy::standard(9),
        );
        let mut ok = 0u64;
        for i in 0..300 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            if client.fetch(&url).is_ok() {
                ok += 1;
            }
        }
        let stats = client.stats();
        assert_eq!(stats.calls, 300);
        assert_eq!(stats.succeeded(), ok, "no silent drops");
        assert!(stats.abandoned > 0, "outage plan blocks some hosts");
        assert_eq!(stats.succeeded() + stats.abandoned, stats.calls);
    }
}
