//! The resilient crawl client.
//!
//! [`RetryingWebClient`] wraps any [`WebClient`] with the recovery stack
//! from `borges-resilience`: a [`RetryPolicy`] (exponential backoff,
//! deterministic jitter, attempt + deadline budgets) and an optional
//! per-host [`BreakerRegistry`]. Backoff sleeps on an injectable [`Clock`]
//! — the default [`SimClock`] makes retried crawls as fast as unretried
//! ones — and everything the stack spends is tallied in a
//! [`ResilienceStats`] the scraper folds into its funnel.

use crate::client::{FetchResult, WebClient};
use borges_resilience::{
    stable_hash, BreakerConfig, BreakerRegistry, BreakerVerdict, Clock, ResilienceStats,
    RetryPolicy, SimClock, TransportError,
};
use borges_types::Url;
use parking_lot::Mutex;
use std::sync::Arc;

/// A [`WebClient`] middleware that retries transient transport failures
/// and (optionally) fast-fails hosts whose circuit breaker is open.
pub struct RetryingWebClient<C> {
    inner: C,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    breakers: Option<BreakerRegistry>,
    stats: Mutex<ResilienceStats>,
}

impl<C: WebClient> RetryingWebClient<C> {
    /// Wraps `inner` under `policy`, sleeping on a virtual [`SimClock`]
    /// and with no circuit breakers.
    pub fn new(inner: C, policy: RetryPolicy) -> Self {
        RetryingWebClient {
            inner,
            policy,
            clock: Arc::new(SimClock::new()),
            breakers: None,
            stats: Mutex::new(ResilienceStats::default()),
        }
    }

    /// Adds per-host circuit breakers.
    pub fn with_breakers(mut self, config: BreakerConfig) -> Self {
        self.breakers = Some(BreakerRegistry::new(config));
        self
    }

    /// Replaces the clock (a production deployment passes
    /// [`borges_resilience::SystemClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// What the stack has spent so far.
    pub fn stats(&self) -> ResilienceStats {
        *self.stats.lock()
    }

    /// Hosts whose breaker is currently open (empty without breakers).
    pub fn open_hosts(&self) -> Vec<String> {
        self.breakers
            .as_ref()
            .map(|r| r.open_keys())
            .unwrap_or_default()
    }
}

impl<C: WebClient> WebClient for RetryingWebClient<C> {
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
        let host = url.host().as_str().to_string();
        let key = stable_hash(host.as_bytes());
        let breaker = self.breakers.as_ref().map(|r| r.breaker(&host));
        let mut trips = 0u64;
        let mut fast_fails = 0u64;

        let outcome = self.policy.run(&*self.clock, key, |_attempt| {
            if let Some(b) = &breaker {
                if !b.allow(&*self.clock) {
                    fast_fails += 1;
                    return Err(TransportError::CircuitOpen);
                }
            }
            match self.inner.fetch(url) {
                Ok(result) => {
                    if let Some(b) = &breaker {
                        b.record_success();
                    }
                    Ok(result)
                }
                Err(e) => {
                    if let Some(b) = &breaker {
                        if b.record_failure(&*self.clock) == BreakerVerdict::Tripped {
                            trips += 1;
                        }
                    }
                    Err(e)
                }
            }
        });

        let mut stats = self.stats.lock();
        stats.calls += 1;
        stats.attempts += outcome.attempts as u64;
        stats.breaker_trips += trips;
        stats.breaker_fast_fails += fast_fails;
        if outcome.recovered() {
            stats.recovered += 1;
        }
        if outcome.result.is_err() {
            stats.abandoned += 1;
        }
        outcome.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SimWebClient;
    use crate::flaky::FlakyWebClient;
    use crate::hosting::SimWeb;
    use borges_resilience::EpisodePlan;

    fn web(hosts: usize) -> SimWeb {
        let mut b = SimWeb::builder();
        for i in 0..hosts {
            b = b.page(&format!("h{i}.example"), None);
        }
        b.build()
    }

    #[test]
    fn chaos_retries_erase_recoverable_faults() {
        let web = web(100);
        let bare = SimWebClient::browser(&web);
        let client = RetryingWebClient::new(
            FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::calibrated(5)),
            RetryPolicy::standard(5),
        );
        for i in 0..100 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            assert_eq!(client.fetch(&url), bare.fetch(&url));
        }
        let stats = client.stats();
        assert_eq!(stats.calls, 100);
        assert_eq!(stats.abandoned, 0, "calibrated chaos is fully recoverable");
        assert!(stats.recovered > 0, "some hosts needed retries");
        assert!(stats.attempts > stats.calls);
    }

    #[test]
    fn chaos_permanent_blocks_are_abandoned_with_budget_left() {
        let web = web(1);
        let client = RetryingWebClient::new(
            FlakyWebClient::new(
                SimWebClient::browser(&web),
                EpisodePlan {
                    transient_rate: 0.0,
                    permanent_rate: 1.0,
                    max_burst: 0,
                    seed: 1,
                },
            ),
            RetryPolicy::standard(1),
        );
        let url: Url = "https://h0.example/".parse().unwrap();
        assert_eq!(client.fetch(&url), Err(TransportError::Forbidden));
        let stats = client.stats();
        assert_eq!(stats.abandoned, 1);
        assert_eq!(stats.attempts, 1, "permanent errors are not retried");
    }

    #[test]
    fn chaos_breaker_fast_fails_a_dead_host_then_reprobes() {
        let web = web(1);
        let clock = Arc::new(SimClock::new());
        let client = RetryingWebClient::new(
            FlakyWebClient::new(
                SimWebClient::browser(&web),
                EpisodePlan {
                    transient_rate: 1.0,
                    permanent_rate: 0.0,
                    // A burst far beyond the retry budget: the host is
                    // effectively down for many consecutive fetches.
                    max_burst: 40,
                    seed: 2,
                },
            ),
            RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 10,
                max_delay_ms: 10,
                deadline_ms: u64::MAX,
                jitter_seed: 2,
            },
        )
        .with_breakers(BreakerConfig {
            failure_threshold: 4,
            open_ms: 1_000_000,
        })
        .with_clock(clock);
        let url: Url = "https://h0.example/".parse().unwrap();

        // First logical call: 3 real attempts, breaker still closed.
        assert!(client.fetch(&url).is_err());
        // Second: one more real failure trips the breaker at 4.
        assert!(client.fetch(&url).is_err());
        assert_eq!(client.stats().breaker_trips, 1);
        assert_eq!(client.open_hosts(), vec!["h0.example".to_string()]);

        // Third: the open breaker fast-fails without touching the host.
        let before = client.stats().breaker_fast_fails;
        assert_eq!(client.fetch(&url), Err(TransportError::CircuitOpen));
        assert!(client.stats().breaker_fast_fails > before);
    }

    #[test]
    fn chaos_stats_account_for_every_call() {
        let web = web(300);
        let client = RetryingWebClient::new(
            FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::with_outages(9)),
            RetryPolicy::standard(9),
        );
        let mut ok = 0u64;
        for i in 0..300 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            if client.fetch(&url).is_ok() {
                ok += 1;
            }
        }
        let stats = client.stats();
        assert_eq!(stats.calls, 300);
        assert_eq!(stats.succeeded(), ok, "no silent drops");
        assert!(stats.abandoned > 0, "outage plan blocks some hosts");
        assert_eq!(stats.succeeded() + stats.abandoned, stats.calls);
    }
}
