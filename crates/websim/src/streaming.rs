//! The streaming crawl client.
//!
//! [`StreamingWebClient`] is the concurrent sibling of
//! [`crate::RetryingWebClient`]. The staged client backs off on **one
//! shared clock** — correct for a sequential crawl, where each call's
//! sleeps are the only thing advancing time — but under the streaming
//! scheduler many fetches are in flight at once, and a shared virtual
//! clock would entangle their backoff readings (call A's duration would
//! include call B's sleeps), destroying the staged run's byte-for-byte
//! telemetry.
//!
//! The fix is per-call clock isolation: every logical fetch runs its
//! retry loop on a **fresh private [`SimClock`] starting at zero**.
//! Backoff delays depend only on the attempt number and the per-host
//! jitter key, and the deadline budget is measured from the call's own
//! start, so the retry schedule — and therefore the per-call duration,
//! which is exactly the call's own backoff spend — is identical to what
//! the staged sequential client would have produced for the same fault
//! tape. The per-call spends are also accumulated into a running total
//! ([`StreamingWebClient::backoff_total_ms`]) so the pipeline can replay
//! the stage's total backoff onto the shared telemetry clock afterwards,
//! keeping trace spans byte-identical to the staged run.
//!
//! Breaker state (failure streaks) is still shared per host across
//! calls; under the scheduler's per-host FIFO serialization each host's
//! fetch sequence matches the staged order, so streak accounting is
//! identical. Open-window *timing* is the one thing per-call clocks
//! cannot reproduce — irrelevant under recoverable chaos (calibrated
//! bursts never reach the trip threshold), and documented as
//! ledger-balance-only equivalence under outage plans.
//!
//! With no policy attached the client is a transparent pass-through:
//! no stats, no metrics — matching the staged bare-client paths.

use crate::client::{FetchResult, WebClient};
use borges_resilience::{
    stable_hash, BreakerConfig, BreakerRegistry, BreakerVerdict, Clock, ResilienceStats,
    RetryPolicy, SimClock, TransportError,
};
use borges_telemetry::{BreakerEvent, Telemetry};
use borges_types::Url;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`WebClient`] middleware for concurrent crawls: retries transient
/// faults on a private per-call clock, shares per-host breakers, and
/// tallies backoff spend for later replay onto the run clock.
pub struct StreamingWebClient<C> {
    inner: C,
    policy: Option<RetryPolicy>,
    breakers: Option<BreakerRegistry>,
    stats: Mutex<ResilienceStats>,
    backoff_total_ms: AtomicU64,
    telemetry: Telemetry,
}

impl<C: WebClient> StreamingWebClient<C> {
    /// A transparent pass-through (no retries, no stats, no metrics) —
    /// the streaming twin of crawling over a bare client.
    pub fn bare(inner: C) -> Self {
        StreamingWebClient {
            inner,
            policy: None,
            breakers: None,
            stats: Mutex::new(ResilienceStats::default()),
            backoff_total_ms: AtomicU64::new(0),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Wraps `inner` under `policy`, retrying each logical fetch on its
    /// own private clock.
    pub fn resilient(inner: C, policy: RetryPolicy) -> Self {
        StreamingWebClient {
            inner,
            policy: Some(policy),
            breakers: None,
            stats: Mutex::new(ResilienceStats::default()),
            backoff_total_ms: AtomicU64::new(0),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Adds per-host circuit breakers (shared across calls; streak
    /// accounting matches the staged client under per-host FIFO).
    pub fn with_breakers(mut self, config: BreakerConfig) -> Self {
        self.breakers = Some(BreakerRegistry::new(config));
        self
    }

    /// Attaches a telemetry context — same counters, histogram, and
    /// breaker events as [`crate::RetryingWebClient::with_telemetry`],
    /// with per-call durations measured on each call's private clock.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// What the stack has spent so far.
    pub fn stats(&self) -> ResilienceStats {
        *self.stats.lock()
    }

    /// Total backoff milliseconds across all calls so far — what the
    /// pipeline replays onto the shared run clock after the stage.
    pub fn backoff_total_ms(&self) -> u64 {
        self.backoff_total_ms.load(Ordering::SeqCst)
    }

    /// Hosts whose breaker is currently open (empty without breakers).
    pub fn open_hosts(&self) -> Vec<String> {
        self.breakers
            .as_ref()
            .map(|r| r.open_keys())
            .unwrap_or_default()
    }
}

impl<C: WebClient> WebClient for StreamingWebClient<C> {
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
        let Some(policy) = &self.policy else {
            return self.inner.fetch(url);
        };
        let host = url.host().as_str().to_string();
        let key = stable_hash(host.as_bytes());
        let breaker = self.breakers.as_ref().map(|r| r.breaker(&host));
        let mut trips = 0u64;
        let mut fast_fails = 0u64;
        // The call's private clock: starts at zero, advanced only by
        // this call's own backoff sleeps.
        let clock = SimClock::new();

        let outcome = policy.run(&clock, key, |_attempt| {
            if let Some(b) = &breaker {
                if !b.allow(&clock) {
                    fast_fails += 1;
                    return Err(TransportError::CircuitOpen);
                }
            }
            match self.inner.fetch(url) {
                Ok(result) => {
                    if let Some(b) = &breaker {
                        b.record_success();
                    }
                    Ok(result)
                }
                Err(e) => {
                    if let Some(b) = &breaker {
                        if b.record_failure(&clock) == BreakerVerdict::Tripped {
                            trips += 1;
                        }
                    }
                    Err(e)
                }
            }
        });

        // Final private-clock reading == this call's backoff spend.
        let call_ms = clock.now_ms();
        self.backoff_total_ms.fetch_add(call_ms, Ordering::SeqCst);

        let mut stats = self.stats.lock();
        stats.calls += 1;
        stats.attempts += outcome.attempts as u64;
        stats.breaker_trips += trips;
        stats.breaker_fast_fails += fast_fails;
        if outcome.recovered() {
            stats.recovered += 1;
        }
        if outcome.result.is_err() {
            stats.abandoned += 1;
        }
        drop(stats);

        if self.telemetry.is_enabled() {
            self.telemetry.counter("borges_web_calls_total", 1);
            self.telemetry
                .counter("borges_web_attempts_total", outcome.attempts as u64);
            if outcome.recovered() {
                self.telemetry.counter("borges_web_recovered_total", 1);
            }
            if outcome.result.is_err() {
                self.telemetry.counter("borges_web_abandoned_total", 1);
            }
            if fast_fails > 0 {
                self.telemetry
                    .counter("borges_web_breaker_fast_fails_total", fast_fails);
            }
            self.telemetry.observe_ms("borges_web_call_ms", call_ms);
            if trips > 0 {
                self.telemetry
                    .counter("borges_web_breaker_trips_total", trips);
                self.telemetry.record_breaker_event(BreakerEvent {
                    boundary: "web".to_string(),
                    key: host,
                    transition: "open".to_string(),
                    at_ms: call_ms,
                });
            }
        }
        outcome.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SimWebClient;
    use crate::flaky::FlakyWebClient;
    use crate::hosting::SimWeb;
    use crate::retry::RetryingWebClient;
    use borges_resilience::EpisodePlan;

    fn web(hosts: usize) -> SimWeb {
        let mut b = SimWeb::builder();
        for i in 0..hosts {
            b = b.page(&format!("h{i}.example"), None);
        }
        b.build()
    }

    #[test]
    fn bare_mode_is_a_transparent_pass_through() {
        let web = web(3);
        let bare = SimWebClient::browser(&web);
        let client = StreamingWebClient::bare(SimWebClient::browser(&web));
        for i in 0..3 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            assert_eq!(client.fetch(&url), bare.fetch(&url));
        }
        assert_eq!(client.stats(), ResilienceStats::default());
        assert_eq!(client.backoff_total_ms(), 0);
    }

    #[test]
    fn chaos_per_call_outcomes_and_stats_match_the_staged_client() {
        // Same fault tape through both middlewares, sequentially: every
        // outcome, the stats block, and the total backoff must agree —
        // the per-call private clocks reproduce the shared-clock retry
        // schedule exactly.
        let web = web(120);
        let plan = EpisodePlan::calibrated(5);
        let policy = RetryPolicy::standard(5);
        let staged = RetryingWebClient::new(
            FlakyWebClient::new(SimWebClient::browser(&web), plan),
            policy,
        );
        let streaming = StreamingWebClient::resilient(
            FlakyWebClient::new(SimWebClient::browser(&web), plan),
            policy,
        );
        for i in 0..120 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            assert_eq!(streaming.fetch(&url), staged.fetch(&url), "host {i}");
        }
        assert_eq!(streaming.stats(), staged.stats());
        assert!(streaming.stats().recovered > 0, "chaos actually retried");
        // The staged client's shared clock only ever advances by backoff
        // sleeps, so its final reading is the total backoff — which the
        // streaming client accumulated per call.
        assert!(streaming.backoff_total_ms() > 0);
    }

    #[test]
    fn chaos_concurrent_fetches_keep_per_call_durations_isolated() {
        use borges_telemetry::Verbosity;
        let web = web(64);
        let plan = EpisodePlan::calibrated(9);
        let policy = RetryPolicy::standard(9);

        // Sequential reference run.
        let reference = StreamingWebClient::resilient(
            FlakyWebClient::new(SimWebClient::browser(&web), plan),
            policy,
        );
        let urls: Vec<Url> = (0..64)
            .map(|i| format!("https://h{i}.example/").parse().unwrap())
            .collect();
        for url in &urls {
            reference.fetch(url).unwrap();
        }

        // Concurrent run over distinct hosts (no per-host ordering to
        // preserve): totals and the call-duration histogram must match
        // the sequential run exactly.
        let tel = Telemetry::sim(Verbosity::Quiet);
        let concurrent = StreamingWebClient::resilient(
            FlakyWebClient::new(SimWebClient::browser(&web), plan),
            policy,
        )
        .with_telemetry(tel.clone());
        borges_parallel::map_items(&urls, 8, |url| concurrent.fetch(url).unwrap());
        assert_eq!(concurrent.stats(), reference.stats());
        assert_eq!(
            concurrent.backoff_total_ms(),
            reference.backoff_total_ms(),
            "per-call spends are schedule-independent"
        );
        let snap = tel.metrics_snapshot();
        let hist = snap.histogram("borges_web_call_ms").unwrap();
        assert_eq!(hist.count, 64);
        assert_eq!(hist.sum_ms, reference.backoff_total_ms());
    }

    #[test]
    fn chaos_breaker_streaks_trip_like_the_staged_client() {
        let plan = EpisodePlan {
            transient_rate: 1.0,
            permanent_rate: 0.0,
            max_burst: 40,
            seed: 2,
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 10,
            max_delay_ms: 10,
            deadline_ms: u64::MAX,
            jitter_seed: 2,
        };
        let config = BreakerConfig {
            failure_threshold: 4,
            open_ms: 1_000_000,
        };
        let web = web(1);
        let client = StreamingWebClient::resilient(
            FlakyWebClient::new(SimWebClient::browser(&web), plan),
            policy,
        )
        .with_breakers(config);
        let url: Url = "https://h0.example/".parse().unwrap();
        assert!(client.fetch(&url).is_err());
        assert!(client.fetch(&url).is_err());
        assert_eq!(client.stats().breaker_trips, 1);
        assert_eq!(client.open_hosts(), vec!["h0.example".to_string()]);
    }

    #[test]
    fn coverage_ledger_balances_under_outages() {
        let web = web(200);
        let client = StreamingWebClient::resilient(
            FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::with_outages(9)),
            RetryPolicy::standard(9),
        );
        let mut ok = 0u64;
        for i in 0..200 {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            if client.fetch(&url).is_ok() {
                ok += 1;
            }
        }
        let stats = client.stats();
        assert_eq!(stats.calls, 200);
        assert_eq!(stats.succeeded(), ok);
        assert!(stats.abandoned > 0, "outage plan blocks some hosts");
        assert_eq!(stats.succeeded() + stats.abandoned, stats.calls);
    }
}
