//! Web clients: redirect-chain resolution.
//!
//! [`WebClient`] is the boundary trait between the pipeline and the web.
//! The pipeline only ever asks one question — *"starting from this URL,
//! where does a browser end up, and what favicon does that page serve?"* —
//! which is exactly what [`FetchResult`] answers. A production deployment
//! would implement `WebClient` with Selenium/chromedriver; this crate's
//! [`SimWebClient`] resolves against a [`crate::hosting::SimWeb`].
//!
//! `fetch` is fallible: transport-level failures (timeouts, resets,
//! 429/503, circuit-breaker fast-fails) surface as
//! `Err(`[`TransportError`]`)`, distinct from the *content-level* terminal
//! states in [`FetchOutcome`]. An unreachable host is an answer ("that
//! site is dead"); a timeout is the absence of one. [`SimWebClient`]
//! itself never fails — faults enter through
//! [`crate::flaky::FlakyWebClient`] and are absorbed by
//! [`crate::retry::RetryingWebClient`].

use crate::hosting::SimWeb;
use crate::site::{RedirectKind, SiteNode};
use borges_resilience::TransportError;
use borges_types::{FaviconHash, Url};
use std::collections::BTreeSet;

/// Redirect-chain TTL: the maximum number of *redirect hops* a fetch
/// follows. Browsers give up around 20 hops; the simulator uses a slightly
/// tighter bound since synthetic chains are short.
///
/// The contract is exact: a chain that resolves after `MAX_REDIRECTS`
/// redirect hops succeeds; one that needs a `MAX_REDIRECTS + 1`-th hop is
/// refused with [`FetchOutcome::TooManyRedirects`]. The final on-site
/// canonical-path hop (a page normalizing `/` to `/personas/`, say) is not
/// a redirect and does not count against the budget — so
/// [`FetchResult::hops`], which counts every chain edge, can legitimately
/// report `MAX_REDIRECTS + 1` on a successful fetch.
pub const MAX_REDIRECTS: usize = 16;

/// Terminal state of a fetch (content-level — transport failures are the
/// `Err` arm of [`WebClient::fetch`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Landed on a page.
    Ok,
    /// The start host (or a host mid-chain) did not answer.
    Unreachable,
    /// The chain revisited a URL.
    RedirectLoop,
    /// The chain needed more than [`MAX_REDIRECTS`] redirect hops.
    TooManyRedirects,
}

/// The observable result of loading a URL in a browser-grade client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// The URL the browser settles on, when [`FetchOutcome::Ok`].
    pub final_url: Option<Url>,
    /// The favicon of the final page, if it serves one.
    pub favicon: Option<FaviconHash>,
    /// Every URL visited, in order, starting with the requested one.
    pub chain: Vec<Url>,
    /// Why the fetch terminated.
    pub outcome: FetchOutcome,
}

impl FetchResult {
    /// `true` when the fetch landed on a page.
    pub fn is_ok(&self) -> bool {
        self.outcome == FetchOutcome::Ok
    }

    /// Number of chain edges traversed (0 when the first URL was final).
    /// Counts redirect hops *plus* the final on-site canonical-path hop,
    /// so it can exceed [`MAX_REDIRECTS`] by one on a successful fetch.
    pub fn hops(&self) -> usize {
        self.chain.len().saturating_sub(1)
    }
}

/// Anything that can load a URL and report where it ended up — or fail at
/// the transport layer trying.
pub trait WebClient {
    /// Loads `url`, following refreshes and redirects, and reports the
    /// final URL and favicon. `Err` means the transport failed (the
    /// request never completed); content-level dead ends are `Ok` results
    /// with a non-[`FetchOutcome::Ok`] outcome.
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError>;
}

impl<C: WebClient + ?Sized> WebClient for &C {
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
        (**self).fetch(url)
    }
}

impl<C: WebClient + ?Sized> WebClient for Box<C> {
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
        (**self).fetch(url)
    }
}

/// A deterministic client resolving against a [`SimWeb`].
///
/// `js_enabled` models the headless-browser distinction (§4.3.1): with it
/// off, [`RedirectKind::JavaScript`] hops do not fire and the client stops
/// on the hosting page — the behaviour of a plain HTTP scraper, and the
/// reason the paper needed Selenium.
#[derive(Debug, Clone)]
pub struct SimWebClient<'w> {
    web: &'w SimWeb,
    js_enabled: bool,
}

impl<'w> SimWebClient<'w> {
    /// A browser-grade client (follows every redirect kind).
    pub fn browser(web: &'w SimWeb) -> Self {
        SimWebClient {
            web,
            js_enabled: true,
        }
    }

    /// A plain HTTP client (does not execute JavaScript redirects).
    pub fn plain_http(web: &'w SimWeb) -> Self {
        SimWebClient {
            web,
            js_enabled: false,
        }
    }

    /// Whether this client executes JavaScript.
    pub fn js_enabled(&self) -> bool {
        self.js_enabled
    }
}

impl WebClient for SimWebClient<'_> {
    fn fetch(&self, url: &Url) -> Result<FetchResult, TransportError> {
        let mut chain = vec![url.clone()];
        let mut visited: BTreeSet<String> = BTreeSet::new();
        visited.insert(url.canonical());
        let mut current = url.clone();
        // Explicit hop accounting pins the TTL contract: `redirect_hops`
        // counts only redirect edges, never the final canonical-path hop,
        // and the budget check refuses exactly the (MAX_REDIRECTS + 1)-th
        // redirect hop.
        let mut redirect_hops = 0usize;

        loop {
            let node = match self.web.lookup(current.host()) {
                Some(node) => node,
                None => {
                    return Ok(FetchResult {
                        final_url: None,
                        favicon: None,
                        chain,
                        outcome: FetchOutcome::Unreachable,
                    })
                }
            };
            match node {
                SiteNode::Down => {
                    return Ok(FetchResult {
                        final_url: None,
                        favicon: None,
                        chain,
                        outcome: FetchOutcome::Unreachable,
                    })
                }
                SiteNode::Page { canonical, favicon } => {
                    // A page may still normalize the URL (e.g. land on
                    // /personas/). That is one final on-site hop, exempt
                    // from the redirect budget.
                    let landed = canonical.clone();
                    if landed != current {
                        chain.push(landed.clone());
                    }
                    return Ok(FetchResult {
                        final_url: Some(landed),
                        favicon: *favicon,
                        chain,
                        outcome: FetchOutcome::Ok,
                    });
                }
                SiteNode::Redirect { to, kind } => {
                    if *kind == RedirectKind::JavaScript && !self.js_enabled {
                        // A non-JS client sees a 200 page containing a
                        // script it never runs: it believes it has arrived,
                        // but there is no real page (and no favicon).
                        return Ok(FetchResult {
                            final_url: Some(current),
                            favicon: None,
                            chain,
                            outcome: FetchOutcome::Ok,
                        });
                    }
                    if redirect_hops == MAX_REDIRECTS {
                        return Ok(FetchResult {
                            final_url: None,
                            favicon: None,
                            chain,
                            outcome: FetchOutcome::TooManyRedirects,
                        });
                    }
                    if !visited.insert(to.canonical()) {
                        return Ok(FetchResult {
                            final_url: None,
                            favicon: None,
                            chain,
                            outcome: FetchOutcome::RedirectLoop,
                        });
                    }
                    redirect_hops += 1;
                    chain.push(to.clone());
                    current = to.clone();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosting::SimWeb;

    fn icon(name: &str) -> FaviconHash {
        FaviconHash::of_bytes(name.as_bytes())
    }

    /// The paper's Clearwire example: clearwire → sprint → t-mobile.
    fn sprint_web() -> SimWeb {
        SimWeb::builder()
            .redirect(
                "www.clearwire.com",
                "https://www.sprint.com/",
                RedirectKind::Http,
            )
            .redirect(
                "www.sprint.com",
                "https://www.t-mobile.com/",
                RedirectKind::JavaScript,
            )
            .page("www.t-mobile.com", Some(icon("t-mobile")))
            .build()
    }

    /// A web holding one pure-redirect chain of exactly `hops` edges:
    /// h0 → h1 → … → h{hops}, with a page (serving a favicon) at the end.
    fn chain_web(hops: usize) -> SimWeb {
        let mut b = SimWeb::builder();
        for i in 0..hops {
            b = b.redirect(
                &format!("h{i}.com"),
                &format!("https://h{}.com/", i + 1),
                RedirectKind::Http,
            );
        }
        b.page(&format!("h{hops}.com"), Some(icon("end"))).build()
    }

    #[test]
    fn direct_page_fetch() {
        let web = sprint_web();
        let client = SimWebClient::browser(&web);
        let r = client
            .fetch(&"https://www.t-mobile.com/".parse().unwrap())
            .unwrap();
        assert!(r.is_ok());
        assert_eq!(r.hops(), 0);
        assert_eq!(r.favicon, Some(icon("t-mobile")));
    }

    #[test]
    fn multi_hop_chain_resolves_like_the_clearwire_example() {
        let web = sprint_web();
        let client = SimWebClient::browser(&web);
        let r = client
            .fetch(&"http://www.clearwire.com".parse().unwrap())
            .unwrap();
        assert!(r.is_ok());
        assert_eq!(
            r.final_url.as_ref().unwrap().to_string(),
            "https://www.t-mobile.com/"
        );
        assert_eq!(r.hops(), 2);
    }

    #[test]
    fn plain_http_client_stops_at_js_redirects() {
        let web = sprint_web();
        let client = SimWebClient::plain_http(&web);
        let r = client
            .fetch(&"http://www.clearwire.com".parse().unwrap())
            .unwrap();
        assert!(r.is_ok());
        // Stuck on sprint.com: the JS hop never fires.
        assert_eq!(
            r.final_url.as_ref().unwrap().host().as_str(),
            "www.sprint.com"
        );
        assert_eq!(r.favicon, None);
    }

    #[test]
    fn unknown_host_is_unreachable() {
        let web = sprint_web();
        let client = SimWebClient::browser(&web);
        let r = client
            .fetch(&"http://nxdomain.example".parse().unwrap())
            .unwrap();
        assert_eq!(r.outcome, FetchOutcome::Unreachable);
        assert!(r.final_url.is_none());
    }

    #[test]
    fn down_mid_chain_is_unreachable() {
        let web = SimWeb::builder()
            .redirect("a.com", "https://b.com/", RedirectKind::Http)
            .down("b.com")
            .build();
        let client = SimWebClient::browser(&web);
        let r = client.fetch(&"http://a.com".parse().unwrap()).unwrap();
        assert_eq!(r.outcome, FetchOutcome::Unreachable);
        assert_eq!(r.chain.len(), 2);
    }

    #[test]
    fn two_node_loop_is_detected() {
        let web = SimWeb::builder()
            .redirect("a.com", "https://b.com/", RedirectKind::Http)
            .redirect("b.com", "https://a.com/", RedirectKind::Http)
            .build();
        let client = SimWebClient::browser(&web);
        let r = client.fetch(&"https://a.com/".parse().unwrap()).unwrap();
        assert_eq!(r.outcome, FetchOutcome::RedirectLoop);
    }

    #[test]
    fn self_loop_is_detected() {
        let web = SimWeb::builder()
            .redirect("a.com", "https://a.com/", RedirectKind::Http)
            .build();
        let client = SimWebClient::browser(&web);
        let r = client.fetch(&"https://a.com/".parse().unwrap()).unwrap();
        assert_eq!(r.outcome, FetchOutcome::RedirectLoop);
    }

    #[test]
    fn long_chains_hit_the_ttl() {
        let web = chain_web(MAX_REDIRECTS + 5);
        let client = SimWebClient::browser(&web);
        let r = client.fetch(&"https://h0.com/".parse().unwrap()).unwrap();
        assert_eq!(r.outcome, FetchOutcome::TooManyRedirects);
    }

    #[test]
    fn chain_of_exactly_max_redirects_resolves() {
        let web = chain_web(MAX_REDIRECTS);
        let client = SimWebClient::browser(&web);
        let r = client.fetch(&"https://h0.com/".parse().unwrap()).unwrap();
        assert_eq!(r.outcome, FetchOutcome::Ok, "at-budget chains succeed");
        assert_eq!(r.hops(), MAX_REDIRECTS);
        assert_eq!(r.favicon, Some(icon("end")));
    }

    #[test]
    fn chain_of_one_hop_past_the_budget_is_refused() {
        let web = chain_web(MAX_REDIRECTS + 1);
        let client = SimWebClient::browser(&web);
        let r = client.fetch(&"https://h0.com/".parse().unwrap()).unwrap();
        assert_eq!(r.outcome, FetchOutcome::TooManyRedirects);
        // The refused hop is not taken: the chain holds the start URL plus
        // exactly MAX_REDIRECTS followed redirects.
        assert_eq!(r.hops(), MAX_REDIRECTS);
        assert!(r.final_url.is_none());
    }

    #[test]
    fn canonical_landing_hop_is_exempt_from_the_redirect_budget() {
        // MAX_REDIRECTS redirect hops, then the landing page normalizes
        // its path: one extra chain edge that must NOT trip the TTL.
        let mut b = SimWeb::builder();
        for i in 0..MAX_REDIRECTS {
            b = b.redirect(
                &format!("h{i}.com"),
                &format!("https://h{}.com/", i + 1),
                RedirectKind::Http,
            );
        }
        let web = b
            .page_at(
                &format!("h{MAX_REDIRECTS}.com"),
                &format!("https://h{MAX_REDIRECTS}.com/home/"),
                Some(icon("end")),
            )
            .build();
        let client = SimWebClient::browser(&web);
        let r = client.fetch(&"https://h0.com/".parse().unwrap()).unwrap();
        assert_eq!(r.outcome, FetchOutcome::Ok);
        assert_eq!(r.hops(), MAX_REDIRECTS + 1, "landing hop rides free");
        assert_eq!(
            r.final_url.unwrap().to_string(),
            format!("https://h{MAX_REDIRECTS}.com/home/")
        );
    }

    #[test]
    fn page_with_canonical_path_adds_final_hop() {
        let web = SimWeb::builder()
            .page_at(
                "www.clarochile.cl",
                "https://www.clarochile.cl/personas/",
                Some(icon("claro")),
            )
            .build();
        let client = SimWebClient::browser(&web);
        let r = client
            .fetch(&"http://www.clarochile.cl".parse().unwrap())
            .unwrap();
        assert!(r.is_ok());
        assert_eq!(r.hops(), 1);
        assert_eq!(
            r.final_url.unwrap().to_string(),
            "https://www.clarochile.cl/personas/"
        );
    }

    #[test]
    fn meta_refresh_followed_by_all_clients() {
        let web = SimWeb::builder()
            .redirect("old.com", "https://new.com/", RedirectKind::MetaRefresh)
            .page("new.com", None)
            .build();
        for client in [SimWebClient::browser(&web), SimWebClient::plain_http(&web)] {
            let r = client.fetch(&"http://old.com".parse().unwrap()).unwrap();
            assert_eq!(r.final_url.as_ref().unwrap().host().as_str(), "new.com");
        }
    }
}
