//! The favicon service — the simulator's stand-in for Google's favicon
//! API.
//!
//! The paper downloads favicons through
//! `t3.gstatic.com/faviconV2?…&url=<site>&size=16` (§4.3.1, footnote 3)
//! rather than scraping `<link rel="icon">` tags itself. [`FaviconApi`]
//! reproduces that interface: it builds the same request URLs and answers
//! them from the hosted web, including the service's behaviour for dead
//! sites (no icon) and redirecting hosts (the icon of the *final* page).

use crate::client::{SimWebClient, WebClient};
use crate::hosting::SimWeb;
use borges_types::{FaviconHash, Url};

/// The host the real service answers on.
pub const API_HOST: &str = "t3.gstatic.com";

/// A favicon-service client over a hosted web.
#[derive(Debug, Clone)]
pub struct FaviconApi<'w> {
    web: &'w SimWeb,
}

impl<'w> FaviconApi<'w> {
    /// A service over `web`.
    pub fn new(web: &'w SimWeb) -> Self {
        FaviconApi { web }
    }

    /// The request URL the real API would be queried with for `target`
    /// (documentation/display purposes; [`FaviconApi::lookup`] answers it).
    pub fn request_url(target: &Url, size: u16) -> Url {
        format!(
            "https://{API_HOST}/faviconV2?client=SOCIAL&type=FAVICON&fallback_opts=TYPE,SIZE,URL&url={}&size={}",
            target.canonical(),
            size
        )
        .parse()
        .expect("request url is well-formed")
    }

    /// Resolves the favicon for `target`, following redirects the way the
    /// real service does (it fetches the page like a browser before
    /// extracting the icon).
    pub fn lookup(&self, target: &Url) -> Option<FaviconHash> {
        let client = SimWebClient::browser(self.web);
        client.fetch(target).ok().and_then(|result| result.favicon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::RedirectKind;

    fn icon(name: &str) -> FaviconHash {
        FaviconHash::of_bytes(name.as_bytes())
    }

    fn web() -> SimWeb {
        SimWeb::builder()
            .page("www.orange.fr", Some(icon("orange")))
            .redirect(
                "www.old-orange.fr",
                "https://www.orange.fr/",
                RedirectKind::Http,
            )
            .down("www.dead.example")
            .build()
    }

    #[test]
    fn request_url_matches_the_papers_footnote() {
        let target: Url = "https://www.orange.fr/".parse().unwrap();
        let url = FaviconApi::request_url(&target, 16);
        assert_eq!(url.host().as_str(), API_HOST);
        assert!(url.query().unwrap().contains("url=https://www.orange.fr/"));
        assert!(url.query().unwrap().contains("size=16"));
        assert_eq!(url.path(), "/faviconV2");
    }

    #[test]
    fn lookup_serves_the_pages_icon() {
        let web = web();
        let api = FaviconApi::new(&web);
        let target: Url = "https://www.orange.fr/".parse().unwrap();
        assert_eq!(api.lookup(&target), Some(icon("orange")));
    }

    #[test]
    fn lookup_follows_redirects_like_the_real_service() {
        let web = web();
        let api = FaviconApi::new(&web);
        let target: Url = "http://www.old-orange.fr/".parse().unwrap();
        assert_eq!(api.lookup(&target), Some(icon("orange")));
    }

    #[test]
    fn dead_sites_have_no_icon() {
        let web = web();
        let api = FaviconApi::new(&web);
        let target: Url = "http://www.dead.example/".parse().unwrap();
        assert_eq!(api.lookup(&target), None);
    }
}
