//! Property tests over the hosted-web simulator: fetches terminate on
//! arbitrary redirect topologies, snapshots round-trip, and the resilience
//! middleware is transparent when there is nothing to recover from.

use borges_resilience::{EpisodePlan, RetryPolicy};
use borges_types::{FaviconHash, Url};
use borges_websim::{
    snapshot, FetchOutcome, FlakyWebClient, RedirectKind, RetryingWebClient, SimWeb, SimWebClient,
    WebClient,
};
use proptest::prelude::*;

/// Arbitrary webs: n hosts, each either a page, down, or a redirect to a
/// random host (possibly itself or a nonexistent one) — loops, dead ends
/// and dangling targets all arise naturally.
fn web_strategy() -> impl Strategy<Value = (SimWeb, usize)> {
    (2usize..24)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(
                    (0u8..4, 0usize..(n + 2), any::<bool>(), any::<u64>()),
                    n..=n,
                ),
                Just(n),
            )
        })
        .prop_map(|(specs, n)| {
            let host_name = |i: usize| format!("h{i}.example");
            let mut builder = SimWeb::builder();
            for (i, (kind, target, js, icon_seed)) in specs.iter().enumerate() {
                let host = host_name(i);
                builder = match kind {
                    0 => builder.page(&host, Some(FaviconHash::from_raw(*icon_seed | 1))),
                    1 => builder.down(&host),
                    _ => builder.redirect(
                        &host,
                        &format!("https://{}/", host_name(*target)),
                        if *js {
                            RedirectKind::JavaScript
                        } else {
                            RedirectKind::Http
                        },
                    ),
                };
            }
            (builder.build(), n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fetch_always_terminates_consistently((web, n) in web_strategy()) {
        let client = SimWebClient::browser(&web);
        for i in 0..n {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            let result = client.fetch(&url).unwrap();
            // Outcome/final-url consistency.
            match result.outcome {
                FetchOutcome::Ok => {
                    prop_assert!(result.final_url.is_some());
                }
                _ => {
                    prop_assert!(result.final_url.is_none());
                    prop_assert!(result.favicon.is_none());
                }
            }
            // The chain starts at the requested URL and is bounded.
            prop_assert_eq!(result.chain.first().unwrap(), &url);
            prop_assert!(result.chain.len() <= borges_websim::MAX_REDIRECTS + 2);
            // Determinism.
            prop_assert_eq!(client.fetch(&url).unwrap(), result);
        }
    }

    #[test]
    fn plain_http_differs_only_on_js((web, n) in web_strategy()) {
        let browser = SimWebClient::browser(&web);
        let plain = SimWebClient::plain_http(&web);
        for i in 0..n {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            let a = browser.fetch(&url).unwrap();
            let b = plain.fetch(&url).unwrap();
            // The plain client can never travel further than the browser.
            prop_assert!(b.chain.len() <= a.chain.len());
        }
    }

    // The resilience stack over a flawless backend is invisible: every
    // fetch result is bit-identical to the bare client's, whether the
    // middleware is a zero-rate fault injector, a retrying wrapper, or
    // both stacked.
    #[test]
    fn chaos_resilience_stack_is_transparent_on_a_flawless_web(
        (web, n) in web_strategy(),
        seed in any::<u64>(),
    ) {
        let bare = SimWebClient::browser(&web);
        let idle_flaky = FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::none());
        let retrying = RetryingWebClient::new(
            FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::none()),
            RetryPolicy::standard(seed),
        );
        for i in 0..n {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            let expected = bare.fetch(&url);
            prop_assert_eq!(idle_flaky.fetch(&url), expected.clone());
            prop_assert_eq!(retrying.fetch(&url), expected);
        }
        let stats = retrying.stats();
        prop_assert_eq!(stats.calls, n as u64);
        prop_assert_eq!(stats.attempts, n as u64, "no fault, no retry");
        prop_assert_eq!(stats.recovered + stats.abandoned, 0);
    }

    // Retries over *calibrated* (recoverable) chaos reproduce the bare
    // client bit for bit — the keystone property, at the client layer.
    #[test]
    fn chaos_recoverable_faults_are_erased_by_retries(
        (web, n) in web_strategy(),
        seed in any::<u64>(),
    ) {
        let bare = SimWebClient::browser(&web);
        let retrying = RetryingWebClient::new(
            FlakyWebClient::new(SimWebClient::browser(&web), EpisodePlan::calibrated(seed)),
            RetryPolicy::standard(seed),
        );
        for i in 0..n {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            prop_assert_eq!(retrying.fetch(&url), bare.fetch(&url));
        }
        prop_assert_eq!(retrying.stats().abandoned, 0);
    }

    #[test]
    fn snapshot_roundtrip((web, _) in web_strategy()) {
        let text = snapshot::to_json(&web);
        let back = snapshot::from_json(&text).unwrap();
        prop_assert_eq!(back.host_count(), web.host_count());
        prop_assert_eq!(snapshot::to_json(&back), text);
    }
}
