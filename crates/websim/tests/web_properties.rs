//! Property tests over the hosted-web simulator: fetches terminate on
//! arbitrary redirect topologies, and snapshots round-trip.

use borges_types::{FaviconHash, Url};
use borges_websim::{snapshot, FetchOutcome, RedirectKind, SimWeb, SimWebClient, WebClient};
use proptest::prelude::*;

/// Arbitrary webs: n hosts, each either a page, down, or a redirect to a
/// random host (possibly itself or a nonexistent one) — loops, dead ends
/// and dangling targets all arise naturally.
fn web_strategy() -> impl Strategy<Value = (SimWeb, usize)> {
    (2usize..24)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(
                    (0u8..4, 0usize..(n + 2), any::<bool>(), any::<u64>()),
                    n..=n,
                ),
                Just(n),
            )
        })
        .prop_map(|(specs, n)| {
            let host_name = |i: usize| format!("h{i}.example");
            let mut builder = SimWeb::builder();
            for (i, (kind, target, js, icon_seed)) in specs.iter().enumerate() {
                let host = host_name(i);
                builder = match kind {
                    0 => builder.page(&host, Some(FaviconHash::from_raw(*icon_seed | 1))),
                    1 => builder.down(&host),
                    _ => builder.redirect(
                        &host,
                        &format!("https://{}/", host_name(*target)),
                        if *js {
                            RedirectKind::JavaScript
                        } else {
                            RedirectKind::Http
                        },
                    ),
                };
            }
            (builder.build(), n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fetch_always_terminates_consistently((web, n) in web_strategy()) {
        let client = SimWebClient::browser(&web);
        for i in 0..n {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            let result = client.fetch(&url);
            // Outcome/final-url consistency.
            match result.outcome {
                FetchOutcome::Ok => {
                    prop_assert!(result.final_url.is_some());
                }
                _ => {
                    prop_assert!(result.final_url.is_none());
                    prop_assert!(result.favicon.is_none());
                }
            }
            // The chain starts at the requested URL and is bounded.
            prop_assert_eq!(result.chain.first().unwrap(), &url);
            prop_assert!(result.chain.len() <= borges_websim::MAX_REDIRECTS + 2);
            // Determinism.
            prop_assert_eq!(client.fetch(&url), result);
        }
    }

    #[test]
    fn plain_http_differs_only_on_js((web, n) in web_strategy()) {
        let browser = SimWebClient::browser(&web);
        let plain = SimWebClient::plain_http(&web);
        for i in 0..n {
            let url: Url = format!("https://h{i}.example/").parse().unwrap();
            let a = browser.fetch(&url);
            let b = plain.fetch(&url);
            // The plain client can never travel further than the browser.
            prop_assert!(b.chain.len() <= a.chain.len());
        }
    }

    #[test]
    fn snapshot_roundtrip((web, _) in web_strategy()) {
        let text = snapshot::to_json(&web);
        let back = snapshot::from_json(&text).unwrap();
        prop_assert_eq!(back.host_count(), web.host_count());
        prop_assert_eq!(snapshot::to_json(&back), text);
    }
}
