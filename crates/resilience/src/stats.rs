//! Resilience accounting.
//!
//! Every retrying wrapper tallies what the fault layer cost it, and the
//! pipeline folds those tallies into its funnel statistics so a degraded
//! run can account for every record it lost: `abandoned` plus the calls
//! that succeeded must equal the calls attempted — no silent drops.

use std::ops::AddAssign;

/// What one resilient boundary observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ResilienceStats {
    /// Logical calls driven through the retry policy.
    pub calls: u64,
    /// Physical attempts those calls spent (≥ `calls`).
    pub attempts: u64,
    /// Logical calls that succeeded only after ≥ 1 transient failure.
    pub recovered: u64,
    /// Logical calls abandoned after exhausting their budgets (or hitting
    /// a permanent error).
    pub abandoned: u64,
    /// Times a circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Physical attempts fast-failed by an open breaker without touching
    /// the backend.
    pub breaker_fast_fails: u64,
}

impl ResilienceStats {
    /// Logical calls that completed successfully (`calls - abandoned`).
    pub fn succeeded(&self) -> u64 {
        self.calls - self.abandoned
    }

    /// Physical attempts that failed and were retried or given up on.
    pub fn wasted_attempts(&self) -> u64 {
        self.attempts - self.succeeded()
    }
}

// Destructuring keeps this merge honest: adding a field without deciding
// how it merges is a compile error. Counters from disjoint boundaries
// simply add — unlike `ScrapeStats`, there is no distinctness caveat here
// because nothing in this struct counts *unique* anything.
impl AddAssign for ResilienceStats {
    fn add_assign(&mut self, rhs: Self) {
        let ResilienceStats {
            calls,
            attempts,
            recovered,
            abandoned,
            breaker_trips,
            breaker_fast_fails,
        } = rhs;
        self.calls += calls;
        self.attempts += attempts;
        self.recovered += recovered;
        self.abandoned += abandoned;
        self.breaker_trips += breaker_trips;
        self.breaker_fast_fails += breaker_fast_fails;
        debug_assert!(self.attempts >= self.calls, "every call costs an attempt");
        debug_assert!(
            self.recovered + self.abandoned <= self.calls,
            "recoveries and abandonments partition a subset of calls"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = ResilienceStats {
            calls: 10,
            attempts: 14,
            recovered: 3,
            abandoned: 1,
            breaker_trips: 0,
            breaker_fast_fails: 0,
        };
        let b = ResilienceStats {
            calls: 5,
            attempts: 9,
            recovered: 1,
            abandoned: 2,
            breaker_trips: 1,
            breaker_fast_fails: 4,
        };
        a += b;
        assert_eq!(
            a,
            ResilienceStats {
                calls: 15,
                attempts: 23,
                recovered: 4,
                abandoned: 3,
                breaker_trips: 1,
                breaker_fast_fails: 4,
            }
        );
        assert_eq!(a.succeeded(), 12);
        assert_eq!(a.wasted_attempts(), 11);
    }

    #[test]
    fn default_is_all_zero() {
        let s = ResilienceStats::default();
        assert_eq!(s.calls, 0);
        assert_eq!(s.succeeded(), 0);
        assert_eq!(s.wasted_attempts(), 0);
    }
}
