//! The transport-error taxonomy.
//!
//! Every failure an external boundary can surface is either *transient*
//! (the next attempt may succeed: the crawl's timeouts and resets, the
//! API's 429/5xx, a truncated reply) or *permanent* (no number of retries
//! helps: a WAF block, a request the server will always reject). The
//! distinction is the whole retry contract — [`crate::RetryPolicy`]
//! retries transients and aborts immediately on permanents.

use std::error::Error;
use std::fmt;

/// Whether retrying can possibly help.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The next attempt may succeed (timeouts, resets, 429/5xx, truncated
    /// payloads, a breaker that will close again).
    Transient,
    /// Retrying is wasted budget (hard blocks, malformed requests).
    Permanent,
}

/// A transport-level failure of an external call — the error half of the
/// now-fallible `WebClient::fetch` and `ChatModel::complete` boundaries.
///
/// Semantic errors (a model that extracts the wrong sibling, a site that
/// redirects somewhere surprising) are *not* transport errors; those stay
/// inside the `Ok` payloads exactly as before. This enum is only about
/// the call not completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportError {
    /// The peer did not answer within the client's time budget.
    Timeout,
    /// The connection dropped mid-exchange.
    ConnectionReset,
    /// HTTP 429 — the service asked us to slow down.
    RateLimited,
    /// HTTP 500 — the service failed internally.
    ServerError,
    /// HTTP 503 — the service is temporarily refusing work.
    ServiceUnavailable,
    /// The reply arrived cut off mid-payload (e.g. truncated JSON from a
    /// streaming chat API); the content is unusable but a re-ask may work.
    TruncatedReply,
    /// HTTP 403 — a hard block (WAF, robots enforcement). Retrying the
    /// same request will keep failing.
    Forbidden,
    /// A client-side fast-fail: the per-host circuit breaker is open.
    /// Transient by definition — the breaker half-opens after its cooling
    /// window.
    CircuitOpen,
}

impl TransportError {
    /// The retryability class of this error.
    pub fn class(&self) -> FaultClass {
        match self {
            TransportError::Forbidden => FaultClass::Permanent,
            TransportError::Timeout
            | TransportError::ConnectionReset
            | TransportError::RateLimited
            | TransportError::ServerError
            | TransportError::ServiceUnavailable
            | TransportError::TruncatedReply
            | TransportError::CircuitOpen => FaultClass::Transient,
        }
    }

    /// `true` when a retry may succeed.
    pub fn is_transient(&self) -> bool {
        self.class() == FaultClass::Transient
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            TransportError::Timeout => "request timed out",
            TransportError::ConnectionReset => "connection reset by peer",
            TransportError::RateLimited => "rate limited (HTTP 429)",
            TransportError::ServerError => "internal server error (HTTP 500)",
            TransportError::ServiceUnavailable => "service unavailable (HTTP 503)",
            TransportError::TruncatedReply => "reply truncated mid-payload",
            TransportError::Forbidden => "request forbidden (HTTP 403)",
            TransportError::CircuitOpen => "circuit breaker open",
        };
        f.write_str(msg)
    }
}

impl Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_hard_blocks_are_permanent() {
        let all = [
            TransportError::Timeout,
            TransportError::ConnectionReset,
            TransportError::RateLimited,
            TransportError::ServerError,
            TransportError::ServiceUnavailable,
            TransportError::TruncatedReply,
            TransportError::Forbidden,
            TransportError::CircuitOpen,
        ];
        let permanents: Vec<_> = all.iter().filter(|e| !e.is_transient()).collect();
        assert_eq!(permanents, vec![&TransportError::Forbidden]);
    }

    #[test]
    fn errors_display_and_box() {
        let e: Box<dyn Error> = Box::new(TransportError::RateLimited);
        assert!(e.to_string().contains("429"));
    }
}
