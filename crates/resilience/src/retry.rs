//! Retry with exponential backoff and deterministic jitter.
//!
//! [`RetryPolicy::run`] drives one *logical* call through up to
//! `max_attempts` *physical* attempts. Between attempts it backs off
//! exponentially; the jitter added to each delay is a pure function of
//! `(jitter_seed, call key, attempt)`, so two runs of the same workload
//! sleep the same virtual milliseconds — retried pipelines stay
//! bit-for-bit reproducible. Permanent errors abort immediately;
//! transient errors retry until the attempt budget or the wall-clock
//! deadline (measured on the injected [`Clock`]) runs out.

use crate::clock::Clock;
use crate::error::{FaultClass, TransportError};
use crate::splitmix64;

/// The retry contract for one boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per logical call, including the first (1 = no
    /// retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds; doubles per
    /// further attempt.
    pub base_delay_ms: u64,
    /// Upper bound on a single backoff delay.
    pub max_delay_ms: u64,
    /// Total time budget (first attempt to last backoff) per logical
    /// call, measured on the injected clock.
    pub deadline_ms: u64,
    /// Seed decorrelating jitter between experiments.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The calibrated default: 5 attempts, 100 ms base, 5 s cap, 30 s
    /// deadline — enough to ride out any episode a calibrated
    /// [`crate::EpisodePlan`] injects.
    pub const fn standard(jitter_seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 100,
            max_delay_ms: 5_000,
            deadline_ms: 30_000,
            jitter_seed,
        }
    }

    /// No recovery: one attempt, fail fast. The degraded-mode policy the
    /// chaos tests use to exercise abandonment accounting.
    pub const fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
            deadline_ms: u64::MAX,
            jitter_seed: 0,
        }
    }

    /// The backoff delay after failed attempt number `attempt` (1-based),
    /// for the logical call identified by `key`. Equal-jitter scheme:
    /// half the exponential delay is kept, half is replaced by a
    /// deterministic hash-derived fraction — spreading retries without
    /// losing reproducibility.
    pub fn backoff_ms(&self, attempt: u32, key: u64) -> u64 {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(self.max_delay_ms);
        if exp == 0 {
            return 0;
        }
        let half = exp / 2;
        let jitter = splitmix64(
            self.jitter_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(key)
                .wrapping_add(attempt as u64),
        ) % (half + 1);
        half + jitter
    }

    /// Runs `op` under this policy. `op` receives the 1-based attempt
    /// number; `key` identifies the logical call (for jitter
    /// decorrelation). Returns the final outcome plus the attempt count —
    /// callers fold those into [`crate::ResilienceStats`].
    pub fn run<T>(
        &self,
        clock: &dyn Clock,
        key: u64,
        mut op: impl FnMut(u32) -> Result<T, TransportError>,
    ) -> RetryOutcome<T> {
        let start = clock.now_ms();
        let budget = self.max_attempts.max(1);
        let mut attempts = 0;
        loop {
            attempts += 1;
            match op(attempts) {
                Ok(value) => {
                    return RetryOutcome {
                        result: Ok(value),
                        attempts,
                    }
                }
                Err(e) if e.class() == FaultClass::Permanent => {
                    return RetryOutcome {
                        result: Err(e),
                        attempts,
                    }
                }
                Err(e) => {
                    if attempts >= budget {
                        return RetryOutcome {
                            result: Err(e),
                            attempts,
                        };
                    }
                    let delay = self.backoff_ms(attempts, key);
                    let elapsed = clock.now_ms().saturating_sub(start);
                    if elapsed.saturating_add(delay) > self.deadline_ms {
                        // The deadline budget is exhausted: abandoning now
                        // beats sleeping past it.
                        return RetryOutcome {
                            result: Err(e),
                            attempts,
                        };
                    }
                    clock.sleep_ms(delay);
                }
            }
        }
    }
}

/// What one retried logical call cost and produced.
#[derive(Debug)]
pub struct RetryOutcome<T> {
    /// The final result after all attempts.
    pub result: Result<T, TransportError>,
    /// Physical attempts spent (≥ 1).
    pub attempts: u32,
}

impl<T> RetryOutcome<T> {
    /// `true` when the call succeeded only after at least one transient
    /// failure — a *recovery*.
    pub fn recovered(&self) -> bool {
        self.result.is_ok() && self.attempts > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    fn flaky(fail_times: u32) -> impl FnMut(u32) -> Result<u32, TransportError> {
        move |attempt| {
            if attempt <= fail_times {
                Err(TransportError::Timeout)
            } else {
                Ok(attempt)
            }
        }
    }

    #[test]
    fn first_try_success_spends_one_attempt() {
        let clock = SimClock::new();
        let out = RetryPolicy::standard(1).run(&clock, 7, flaky(0));
        assert_eq!(out.result.unwrap(), 1);
        assert_eq!(out.attempts, 1);
        assert!(!out.recovered());
        assert_eq!(clock.now_ms(), 0, "no backoff on success");
    }

    #[test]
    fn transient_errors_recover_within_budget() {
        let clock = SimClock::new();
        let out = RetryPolicy::standard(1).run(&clock, 7, flaky(3));
        assert_eq!(out.result.unwrap(), 4);
        assert_eq!(out.attempts, 4);
        assert!(out.recovered());
        assert!(clock.now_ms() > 0, "backoff advanced the clock");
    }

    #[test]
    fn attempt_budget_is_honored() {
        let clock = SimClock::new();
        let out = RetryPolicy::standard(1).run(&clock, 7, flaky(99));
        assert_eq!(out.result, Err(TransportError::Timeout));
        assert_eq!(out.attempts, 5);
    }

    #[test]
    fn permanent_errors_abort_immediately() {
        let clock = SimClock::new();
        let out: RetryOutcome<()> =
            RetryPolicy::standard(1).run(&clock, 7, |_| Err(TransportError::Forbidden));
        assert_eq!(out.result, Err(TransportError::Forbidden));
        assert_eq!(out.attempts, 1);
        assert_eq!(clock.now_ms(), 0, "no backoff wasted on permanents");
    }

    #[test]
    fn deadline_budget_cuts_retries_short() {
        let clock = SimClock::new();
        let policy = RetryPolicy {
            max_attempts: 50,
            base_delay_ms: 1_000,
            max_delay_ms: 1_000,
            deadline_ms: 2_500,
            jitter_seed: 1,
        };
        let out = policy.run(&clock, 7, flaky(99));
        assert!(out.result.is_err());
        assert!(
            out.attempts < 50,
            "deadline must fire before the attempt budget: {}",
            out.attempts
        );
        assert!(clock.now_ms() <= 2_500);
    }

    #[test]
    fn chaos_backoff_is_deterministic_per_key_and_grows() {
        let policy = RetryPolicy::standard(42);
        for attempt in 1..5 {
            assert_eq!(
                policy.backoff_ms(attempt, 9),
                policy.backoff_ms(attempt, 9),
                "same inputs, same delay"
            );
        }
        // Exponential shape: the delay floor doubles per attempt.
        assert!(policy.backoff_ms(1, 9) >= 50);
        assert!(policy.backoff_ms(3, 9) >= 200);
        assert!(policy.backoff_ms(4, 9) <= policy.max_delay_ms);
        // Jitter decorrelates calls.
        assert_ne!(policy.backoff_ms(1, 9), policy.backoff_ms(1, 10));
    }

    #[test]
    fn chaos_retry_sequence_is_reproducible() {
        let run = || {
            let clock = SimClock::new();
            let out = RetryPolicy::standard(3).run(&clock, 11, flaky(2));
            (out.result.unwrap(), out.attempts, clock.now_ms())
        };
        assert_eq!(run(), run(), "identical timings across runs");
    }

    #[test]
    fn none_policy_fails_fast() {
        let clock = SimClock::new();
        let out = RetryPolicy::none().run(&clock, 7, flaky(1));
        assert!(out.result.is_err());
        assert_eq!(out.attempts, 1);
    }
}
