//! Per-host circuit breakers.
//!
//! A crawl hitting a struggling host should stop hammering it long before
//! the per-call retry budget does — that is the breaker's job. The state
//! machine is the classic one: **closed** (counting consecutive failures)
//! → **open** (fast-failing every call for a cooling window) →
//! **half-open** (one probe decides: success closes, failure re-opens).
//! Time comes from the injected [`Clock`], so the whole cycle is testable
//! without sleeping.

use crate::clock::Clock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// How long an open breaker fast-fails before half-opening, in
    /// clock milliseconds.
    pub open_ms: u64,
}

impl BreakerConfig {
    /// The calibrated default: trip after 8 consecutive failures, cool
    /// for 10 s. The threshold sits above the longest transient episode a
    /// calibrated [`crate::EpisodePlan`] injects (burst ≤ 3 plus retry
    /// probes), so recoverable worlds never trip it.
    pub const fn standard() -> Self {
        BreakerConfig {
            failure_threshold: 8,
            open_ms: 10_000,
        }
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig::standard()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until_ms: u64 },
    HalfOpen,
}

/// What recording a failure did to the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerVerdict {
    /// The breaker stayed closed (or was already open).
    Unchanged,
    /// This failure tripped the breaker into the open state.
    Tripped,
}

/// One host's breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
        }
    }

    /// May a call proceed right now? Open breakers fast-fail until their
    /// window elapses, then admit one half-open probe.
    pub fn allow(&self, clock: &dyn Clock) -> bool {
        let mut state = self.state.lock();
        match *state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { until_ms } => {
                if clock.now_ms() >= until_ms {
                    *state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful call: closes the breaker and clears the
    /// failure streak.
    pub fn record_success(&self) {
        *self.state.lock() = State::Closed {
            consecutive_failures: 0,
        };
    }

    /// Reports a failed call; returns [`BreakerVerdict::Tripped`] when
    /// this failure opened the breaker.
    pub fn record_failure(&self, clock: &dyn Clock) -> BreakerVerdict {
        let mut state = self.state.lock();
        match *state {
            State::HalfOpen => {
                // The probe failed: straight back to open.
                *state = State::Open {
                    until_ms: clock.now_ms() + self.config.open_ms,
                };
                BreakerVerdict::Tripped
            }
            State::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.config.failure_threshold {
                    *state = State::Open {
                        until_ms: clock.now_ms() + self.config.open_ms,
                    };
                    BreakerVerdict::Tripped
                } else {
                    *state = State::Closed {
                        consecutive_failures: failures,
                    };
                    BreakerVerdict::Unchanged
                }
            }
            State::Open { .. } => BreakerVerdict::Unchanged,
        }
    }

    /// `true` while calls would be fast-failed (ignoring window expiry).
    pub fn is_open(&self) -> bool {
        matches!(*self.state.lock(), State::Open { .. })
    }
}

/// Lazily creates one [`CircuitBreaker`] per key (the crawl keys by
/// host; the LLM boundary uses a single key per backend).
#[derive(Debug)]
pub struct BreakerRegistry {
    config: BreakerConfig,
    breakers: Mutex<HashMap<String, Arc<CircuitBreaker>>>,
}

impl BreakerRegistry {
    /// An empty registry; breakers materialize on first use.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerRegistry {
            config,
            breakers: Mutex::new(HashMap::new()),
        }
    }

    /// The breaker for `key`, created closed on first access.
    pub fn breaker(&self, key: &str) -> Arc<CircuitBreaker> {
        self.breakers
            .lock()
            .entry(key.to_string())
            .or_insert_with(|| Arc::new(CircuitBreaker::new(self.config)))
            .clone()
    }

    /// Number of keys with a materialized breaker.
    pub fn len(&self) -> usize {
        self.breakers.lock().len()
    }

    /// `true` when no breaker has been created yet.
    pub fn is_empty(&self) -> bool {
        self.breakers.lock().is_empty()
    }

    /// Keys whose breaker is currently open.
    pub fn open_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .breakers
            .lock()
            .iter()
            .filter(|(_, b)| b.is_open())
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    fn config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_ms: 100,
        }
    }

    #[test]
    fn chaos_breaker_walks_the_full_cycle() {
        let clock = SimClock::new();
        let b = CircuitBreaker::new(config());

        // Closed: admits calls, counts failures.
        assert!(b.allow(&clock));
        assert_eq!(b.record_failure(&clock), BreakerVerdict::Unchanged);
        assert_eq!(b.record_failure(&clock), BreakerVerdict::Unchanged);
        assert_eq!(b.record_failure(&clock), BreakerVerdict::Tripped);

        // Open: fast-fails until the window elapses.
        assert!(!b.allow(&clock));
        assert!(b.is_open());
        clock.sleep_ms(99);
        assert!(!b.allow(&clock));
        clock.sleep_ms(1);

        // Half-open: one probe allowed; failure re-opens…
        assert!(b.allow(&clock));
        assert_eq!(b.record_failure(&clock), BreakerVerdict::Tripped);
        assert!(!b.allow(&clock));
        clock.sleep_ms(100);

        // …and a successful probe closes.
        assert!(b.allow(&clock));
        b.record_success();
        assert!(b.allow(&clock));
        assert!(!b.is_open());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let clock = SimClock::new();
        let b = CircuitBreaker::new(config());
        for _ in 0..10 {
            b.record_failure(&clock);
            b.record_success();
        }
        assert!(b.allow(&clock), "alternating failures never trip");
    }

    #[test]
    fn registry_hands_out_one_breaker_per_key() {
        let clock = SimClock::new();
        let reg = BreakerRegistry::new(config());
        assert!(reg.is_empty());
        let a1 = reg.breaker("a.com");
        let a2 = reg.breaker("a.com");
        let b = reg.breaker("b.com");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        assert_eq!(reg.len(), 2);

        for _ in 0..3 {
            a1.record_failure(&clock);
        }
        assert_eq!(reg.open_keys(), vec!["a.com".to_string()]);
        assert!(b.allow(&clock), "other hosts unaffected");
    }
}
