//! # borges-resilience
//!
//! The failure model and recovery contract for Borges's two flaky external
//! boundaries: the Selenium-grade web crawl (§4.3.1 of the paper, ~24k
//! sites) and the GPT-4o-mini chat API (§4.2, thousands of calls). The
//! paper's pipeline survives both because real attribution services must;
//! our reproduction models the faults *and* the recovery deterministically,
//! so that chaos runs are replayable and recovery is verifiable against
//! ground truth.
//!
//! * [`error`] — the transport-error taxonomy. Every fault is classified
//!   [`FaultClass::Transient`] (worth retrying: timeouts, resets, 429/5xx,
//!   truncated replies) or [`FaultClass::Permanent`] (retrying cannot
//!   help: a WAF block, a malformed request).
//! * [`clock`] — an injectable [`Clock`]. [`SimClock`] advances virtual
//!   time instantly, so exponential backoff is unit-testable without
//!   sleeping; [`SystemClock`] is the production binding.
//! * [`retry`] — [`RetryPolicy`]: exponential backoff with deterministic
//!   (seeded, per-call-key) jitter, an attempt budget, and a wall-clock
//!   deadline budget.
//! * [`breaker`] — a per-host [`CircuitBreaker`] (closed → open →
//!   half-open) and the [`BreakerRegistry`] that keys breakers by host.
//! * [`inject`] — [`EpisodePlan`]/[`FaultInjector`]: seeded fault
//!   *episodes* (a burst of consecutive failures for one host or request,
//!   decided splitmix-style like `llmsim::FaultProfile`), the OrgForge
//!   argument applied to transport: simulate faults with ground truth so
//!   recovery is checkable.
//! * [`rate`] — per-host [`TokenBucket`] admission and the
//!   [`RateLimiterRegistry`] that keys buckets exactly like the breaker
//!   registry, so the streaming ingest scheduler's rate limits, breakers,
//!   and retry budgets all agree on what "one host" means.
//! * [`stats`] — [`ResilienceStats`], the merged-by-`+=` counter block
//!   (attempts, recoveries, abandonments, breaker trips) that surfaces in
//!   `ScrapeStats`/`NerStats` coverage reports.
//!
//! Everything is deterministic under a seed: the same world, plan, and
//! policy always produce the same faults, the same retries, and the same
//! final mapping.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod breaker;
pub mod clock;
pub mod error;
pub mod inject;
pub mod rate;
pub mod retry;
pub mod stats;

pub use breaker::{BreakerConfig, BreakerRegistry, BreakerVerdict, CircuitBreaker};
pub use clock::{Clock, SimClock, SystemClock};
pub use error::{FaultClass, TransportError};
pub use inject::{Episode, EpisodePlan, FaultInjector};
pub use rate::{RateLimiterRegistry, TokenBucket};
pub use retry::{RetryOutcome, RetryPolicy};
pub use stats::ResilienceStats;

/// splitmix64 finalizer — the same mixer `llmsim::FaultProfile` uses, so
/// every seeded decision in the workspace shares one well-studied
/// avalanche function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A stable (process- and platform-independent) FNV-1a hash of a byte
/// string — the key function fault injectors and jitter use to decorrelate
/// decisions per host / per request without depending on `std`'s
/// randomized hasher.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_stable_and_spreads() {
        assert_eq!(stable_hash(b"example.com"), stable_hash(b"example.com"));
        assert_ne!(stable_hash(b"example.com"), stable_hash(b"example.org"));
        assert_ne!(stable_hash(b""), stable_hash(b"\0"));
    }

    #[test]
    fn splitmix_avalanches() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff_ffff, b & 0xffff_ffff, "low bits differ too");
    }
}
