//! Seeded transport-fault episodes.
//!
//! Fault injection follows the same philosophy as `llmsim::FaultProfile`:
//! every decision is a splitmix-style hash of `(seed, subject)`, so the
//! same seed always produces the same faults — simulated chaos with
//! ground truth, which is what makes *recovery* verifiable (a flaky world
//! whose every episode is recoverable must reproduce the flawless world's
//! mapping bit for bit).
//!
//! The unit is an **episode**: a subject (a host for the crawl, a request
//! for the LLM) either is clean, suffers a *transient* episode (a burst of
//! `1..=max_burst` consecutive failures of one seeded kind, after which
//! calls succeed again), or is *permanently* blocked. [`FaultInjector`]
//! tracks how much of each burst has been delivered.

use crate::error::TransportError;
use crate::splitmix64;
use parking_lot::Mutex;
use std::collections::HashMap;

/// The seeded fault model for one boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodePlan {
    /// Probability that a subject suffers a transient episode.
    pub transient_rate: f64,
    /// Probability that a subject is permanently blocked (checked first).
    pub permanent_rate: f64,
    /// Longest transient burst (consecutive failures before recovery).
    pub max_burst: u32,
    /// Seed decorrelating episodes between experiments.
    pub seed: u64,
}

impl EpisodePlan {
    /// No injected faults.
    pub const fn none() -> Self {
        EpisodePlan {
            transient_rate: 0.0,
            permanent_rate: 0.0,
            max_burst: 0,
            seed: 0,
        }
    }

    /// Calibrated transient-only chaos: ~15% of subjects suffer a burst
    /// of at most 3 failures — fully recoverable under
    /// [`crate::RetryPolicy::standard`] (5 attempts).
    pub const fn calibrated(seed: u64) -> Self {
        EpisodePlan {
            transient_rate: 0.15,
            permanent_rate: 0.0,
            max_burst: 3,
            seed,
        }
    }

    /// Calibrated chaos plus hard blocks: like [`EpisodePlan::calibrated`]
    /// with 10% of subjects permanently refused — the degraded-mode
    /// scenario where the pipeline must proceed on partial evidence.
    pub const fn with_outages(seed: u64) -> Self {
        EpisodePlan {
            transient_rate: 0.15,
            permanent_rate: 0.10,
            max_burst: 3,
            seed,
        }
    }

    fn unit(&self, domain: u64, key: u64) -> f64 {
        let x = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(domain)
                .wrapping_add(key),
        );
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The episode assigned to `key` — a pure function of the plan.
    pub fn episode(&self, key: u64, kinds: &[TransportError]) -> Episode {
        if kinds.is_empty() {
            return Episode::Clean;
        }
        if self.permanent_rate > 0.0 && self.unit(0x5045_524d, key) < self.permanent_rate {
            return Episode::Permanent;
        }
        if self.transient_rate > 0.0
            && self.max_burst > 0
            && self.unit(0x5452_414e, key) < self.transient_rate
        {
            let roll = splitmix64(self.seed.wrapping_add(key).wrapping_add(0x4255_5253));
            let burst = 1 + (roll % self.max_burst as u64) as u32;
            let kind = kinds[(roll >> 32) as usize % kinds.len()];
            return Episode::Transient { burst, kind };
        }
        Episode::Clean
    }
}

/// What the plan decided for one subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Episode {
    /// Calls pass through untouched.
    Clean,
    /// The first `burst` calls fail with `kind`, then calls succeed.
    Transient {
        /// Consecutive failures to deliver.
        burst: u32,
        /// The error each failed call surfaces.
        kind: TransportError,
    },
    /// Every call fails with [`TransportError::Forbidden`].
    Permanent,
}

/// Stateful delivery of an [`EpisodePlan`]: remembers, per subject, how
/// many of the burst's failures have been handed out.
#[derive(Debug)]
pub struct FaultInjector {
    plan: EpisodePlan,
    kinds: Vec<TransportError>,
    delivered: Mutex<HashMap<u64, u32>>,
}

impl FaultInjector {
    /// An injector drawing transient faults from `kinds`.
    pub fn new(plan: EpisodePlan, kinds: &[TransportError]) -> Self {
        FaultInjector {
            plan,
            kinds: kinds.to_vec(),
            delivered: Mutex::new(HashMap::new()),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> EpisodePlan {
        self.plan
    }

    /// Called before each underlying call for subject `key`:
    /// `Some(error)` injects a failure, `None` lets the call through.
    pub fn intercept(&self, key: u64) -> Option<TransportError> {
        match self.plan.episode(key, &self.kinds) {
            Episode::Clean => None,
            Episode::Permanent => Some(TransportError::Forbidden),
            Episode::Transient { burst, kind } => {
                let mut delivered = self.delivered.lock();
                let count = delivered.entry(key).or_insert(0);
                if *count < burst {
                    *count += 1;
                    Some(kind)
                } else {
                    None
                }
            }
        }
    }

    /// Forgets delivered bursts — a fresh injector for a re-run.
    pub fn reset(&self) {
        self.delivered.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [TransportError; 2] = [TransportError::Timeout, TransportError::ServerError];

    #[test]
    fn chaos_none_plan_never_injects() {
        let inj = FaultInjector::new(EpisodePlan::none(), &KINDS);
        for key in 0..2000 {
            assert_eq!(inj.intercept(key), None);
        }
    }

    #[test]
    fn chaos_transient_bursts_end() {
        let plan = EpisodePlan {
            transient_rate: 1.0,
            permanent_rate: 0.0,
            max_burst: 4,
            seed: 9,
        };
        let inj = FaultInjector::new(plan, &KINDS);
        for key in 0..200u64 {
            let mut failures = 0;
            while let Some(e) = inj.intercept(key) {
                assert!(e.is_transient());
                failures += 1;
                assert!(failures <= 4, "burst exceeded max_burst");
            }
            assert!(failures >= 1, "rate 1.0 must fault every subject");
            // Once recovered, the subject stays clean.
            assert_eq!(inj.intercept(key), None);
        }
    }

    #[test]
    fn chaos_permanent_episodes_never_recover() {
        let plan = EpisodePlan {
            transient_rate: 0.0,
            permanent_rate: 1.0,
            max_burst: 0,
            seed: 1,
        };
        let inj = FaultInjector::new(plan, &KINDS);
        for _ in 0..50 {
            assert_eq!(inj.intercept(42), Some(TransportError::Forbidden));
        }
    }

    #[test]
    fn chaos_episodes_are_deterministic_and_seed_sensitive() {
        let plan = EpisodePlan::calibrated(7);
        let other = EpisodePlan::calibrated(8);
        let a: Vec<Episode> = (0..500).map(|k| plan.episode(k, &KINDS)).collect();
        let b: Vec<Episode> = (0..500).map(|k| plan.episode(k, &KINDS)).collect();
        let c: Vec<Episode> = (0..500).map(|k| other.episode(k, &KINDS)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "seeds must decorrelate");
    }

    #[test]
    fn chaos_rates_are_roughly_honored() {
        let plan = EpisodePlan {
            transient_rate: 0.10,
            permanent_rate: 0.0,
            max_burst: 2,
            seed: 5,
        };
        let n = 20_000u64;
        let faulted = (0..n)
            .filter(|&k| plan.episode(crate::splitmix64(k), &KINDS) != Episode::Clean)
            .count() as f64;
        let frac = faulted / n as f64;
        assert!((0.08..0.12).contains(&frac), "observed {frac}");
    }

    #[test]
    fn chaos_reset_restarts_bursts() {
        let plan = EpisodePlan {
            transient_rate: 1.0,
            permanent_rate: 0.0,
            max_burst: 1,
            seed: 2,
        };
        let inj = FaultInjector::new(plan, &KINDS);
        assert!(inj.intercept(3).is_some());
        assert!(inj.intercept(3).is_none());
        inj.reset();
        assert!(inj.intercept(3).is_some(), "reset replays the episode");
    }
}
