//! Per-host token-bucket rate limiting.
//!
//! The streaming ingest scheduler must not hammer a host just because
//! many PeeringDB records point at it: admission is gated by a
//! [`TokenBucket`] per host, registered in a [`RateLimiterRegistry`]
//! keyed by the same host string as [`crate::BreakerRegistry`] — so
//! rate limits, breakers, and retry budgets all agree on what "one
//! host" means and compose cleanly (admission first, then breaker,
//! then the fetch itself).
//!
//! Time is whatever the caller's pacing clock says: [`TokenBucket`]
//! never reads a wall clock itself, it is fed `now_ms` readings. Under
//! a [`crate::SimClock`] the bucket is fully deterministic, which is
//! what lets the property tests pin the admission bound exactly.
//!
//! Token arithmetic is integer-only (micro-tokens per millisecond), so
//! admission decisions are reproducible across platforms: no float
//! accumulation, no rounding drift.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One token = this many micro-tokens.
const MICROS_PER_TOKEN: u64 = 1_000_000;

/// A token bucket: admits at most `burst` requests instantly, then
/// refills at `rate_per_sec` tokens per second of pacing-clock time.
#[derive(Debug)]
pub struct TokenBucket {
    capacity_micro: u64,
    refill_micro_per_ms: u64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens_micro: u64,
    last_ms: u64,
    primed: bool,
}

impl TokenBucket {
    /// A bucket admitting `rate_per_sec` requests per second with an
    /// instantaneous burst of `burst` (clamped to at least 1 so the
    /// bucket can ever admit). `rate_per_sec` must be positive and
    /// finite; rates below 0.001/s are clamped up to the 1 micro-token
    /// per millisecond resolution floor.
    pub fn new(rate_per_sec: f64, burst: u32) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "rate must be positive and finite"
        );
        // tokens/sec → micro-tokens/ms: rate * 1e6 / 1e3.
        let refill_micro_per_ms = ((rate_per_sec * 1_000.0).round() as u64).max(1);
        let capacity_micro = u64::from(burst.max(1)) * MICROS_PER_TOKEN;
        TokenBucket {
            capacity_micro,
            refill_micro_per_ms,
            state: Mutex::new(BucketState {
                tokens_micro: capacity_micro,
                last_ms: 0,
                primed: false,
            }),
        }
    }

    /// Tries to take one token at pacing time `now_ms`. On success the
    /// token is consumed; on refusal returns how many milliseconds of
    /// pacing time must pass before a token will be available (always
    /// at least 1).
    ///
    /// `now_ms` readings are expected to be monotone per bucket; a
    /// reading earlier than the last one refills nothing (it is not an
    /// error — concurrent callers may race on the clock).
    pub fn try_acquire(&self, now_ms: u64) -> Result<(), u64> {
        let mut state = self.state.lock();
        if !state.primed {
            // First sighting of the clock: the bucket starts full at
            // whatever origin the pacing clock has.
            state.last_ms = now_ms;
            state.primed = true;
        }
        let elapsed = now_ms.saturating_sub(state.last_ms);
        if elapsed > 0 {
            let refill = elapsed.saturating_mul(self.refill_micro_per_ms);
            state.tokens_micro = state
                .tokens_micro
                .saturating_add(refill)
                .min(self.capacity_micro);
            state.last_ms = now_ms;
        }
        if state.tokens_micro >= MICROS_PER_TOKEN {
            state.tokens_micro -= MICROS_PER_TOKEN;
            Ok(())
        } else {
            let deficit = MICROS_PER_TOKEN - state.tokens_micro;
            Err(deficit.div_ceil(self.refill_micro_per_ms).max(1))
        }
    }

    /// The configured burst capacity, in whole tokens.
    pub fn burst(&self) -> u64 {
        self.capacity_micro / MICROS_PER_TOKEN
    }

    /// The configured refill rate, in micro-tokens per millisecond
    /// (1000 × tokens-per-second, after integer rounding).
    pub fn refill_micro_per_ms(&self) -> u64 {
        self.refill_micro_per_ms
    }
}

/// Lazily-created per-key token buckets sharing one configuration —
/// the rate-limit sibling of [`crate::BreakerRegistry`], keyed the same
/// way (the host string), so admission and breaker state always refer
/// to the same subject.
#[derive(Debug)]
pub struct RateLimiterRegistry {
    rate_per_sec: f64,
    burst: u32,
    buckets: Mutex<HashMap<String, Arc<TokenBucket>>>,
}

impl RateLimiterRegistry {
    /// A registry whose buckets all admit `rate_per_sec` per second
    /// with burst `burst`.
    pub fn new(rate_per_sec: f64, burst: u32) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "rate must be positive and finite"
        );
        RateLimiterRegistry {
            rate_per_sec,
            burst,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The bucket for `key`, created on first use.
    pub fn limiter(&self, key: &str) -> Arc<TokenBucket> {
        self.buckets
            .lock()
            .entry(key.to_string())
            .or_insert_with(|| Arc::new(TokenBucket::new(self.rate_per_sec, self.burst)))
            .clone()
    }

    /// Number of keys with a bucket so far.
    pub fn len(&self) -> usize {
        self.buckets.lock().len()
    }

    /// Whether no key has been rate-limited yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, SimClock};
    use proptest::prelude::*;

    #[test]
    fn burst_admits_then_refuses() {
        let bucket = TokenBucket::new(1.0, 3);
        assert!(bucket.try_acquire(0).is_ok());
        assert!(bucket.try_acquire(0).is_ok());
        assert!(bucket.try_acquire(0).is_ok());
        let wait = bucket.try_acquire(0).unwrap_err();
        assert_eq!(wait, 1000, "1/s rate → a full second to the next token");
    }

    #[test]
    fn refill_is_proportional_to_elapsed_time() {
        let bucket = TokenBucket::new(2.0, 1);
        assert!(bucket.try_acquire(0).is_ok());
        assert!(bucket.try_acquire(0).is_err());
        // 2/s → one token every 500 ms.
        assert!(bucket.try_acquire(499).is_err());
        assert!(bucket.try_acquire(500).is_ok());
    }

    #[test]
    fn waiting_the_advertised_time_always_admits() {
        let bucket = TokenBucket::new(0.37, 2);
        let clock = SimClock::new();
        for _ in 0..50 {
            loop {
                match bucket.try_acquire(clock.now_ms()) {
                    Ok(()) => break,
                    Err(wait_ms) => clock.sleep_ms(wait_ms),
                }
            }
        }
    }

    #[test]
    fn capacity_never_exceeds_burst_after_idle() {
        let bucket = TokenBucket::new(10.0, 2);
        assert!(bucket.try_acquire(0).is_ok());
        // A very long idle period refills to the burst cap, no further.
        assert!(bucket.try_acquire(1_000_000).is_ok());
        assert!(bucket.try_acquire(1_000_000).is_ok());
        assert!(bucket.try_acquire(1_000_000).is_err());
    }

    #[test]
    fn sub_unit_rates_are_supported() {
        let bucket = TokenBucket::new(0.5, 1);
        assert!(bucket.try_acquire(0).is_ok());
        let wait = bucket.try_acquire(0).unwrap_err();
        assert_eq!(wait, 2000, "0.5/s → two seconds per token");
    }

    #[test]
    fn registry_shares_buckets_per_key() {
        let registry = RateLimiterRegistry::new(1.0, 1);
        assert!(registry.is_empty());
        let a = registry.limiter("h0.example");
        let b = registry.limiter("h0.example");
        let c = registry.limiter("h1.example");
        assert!(Arc::ptr_eq(&a, &b), "same key → same bucket");
        assert!(!Arc::ptr_eq(&a, &c), "distinct keys → distinct buckets");
        assert_eq!(registry.len(), 2);
        // Draining h0 leaves h1 untouched.
        assert!(a.try_acquire(0).is_ok());
        assert!(b.try_acquire(0).is_err());
        assert!(c.try_acquire(0).is_ok());
    }

    proptest! {
        // The admission bound: over any request schedule on a virtual
        // pacing clock, the number of admitted requests by time T never
        // exceeds burst + rate × T — the defining property of a token
        // bucket. Refusal wait hints are also honored: re-asking after
        // the advertised wait must admit.
        #[test]
        fn chaos_bucket_never_admits_above_its_rate(
            rate_milli in 1u64..20_000,            // 0.001/s ..= 20/s
            burst in 1u32..6,
            gaps in prop::collection::vec(0u64..700, 1..120),
        ) {
            let rate_per_sec = rate_milli as f64 / 1000.0;
            let bucket = TokenBucket::new(rate_per_sec, burst);
            let clock = SimClock::new();
            let mut admitted: u64 = 0;
            for gap in &gaps {
                clock.sleep_ms(*gap);
                let now = clock.now_ms();
                match bucket.try_acquire(now) {
                    Ok(()) => admitted += 1,
                    Err(wait_ms) => {
                        // The hint is honest: waiting it out admits.
                        clock.sleep_ms(wait_ms);
                        prop_assert!(bucket.try_acquire(clock.now_ms()).is_ok());
                        admitted += 1;
                    }
                }
                // Admission bound at the current pacing time, in
                // micro-tokens (exact integer arithmetic, no floats).
                let now = clock.now_ms();
                let budget_micro = u64::from(burst) * 1_000_000
                    + now * bucket.refill_micro_per_ms();
                prop_assert!(
                    admitted * 1_000_000 <= budget_micro,
                    "admitted {admitted} by t={now}ms exceeds burst {burst} + rate {rate_per_sec}/s"
                );
            }
        }
    }
}
