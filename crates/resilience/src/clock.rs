//! Injectable time.
//!
//! Backoff and breaker windows are expressed against a [`Clock`] so the
//! whole retry stack is unit-testable without sleeping: [`SimClock`]
//! advances virtual time instantly when asked to sleep, while
//! [`SystemClock`] really waits. Determinism follows — under `SimClock`
//! the sequence of timestamps a retry loop observes is a pure function of
//! the delays it requested.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A source of milliseconds and a way to wait.
pub trait Clock: Send + Sync {
    /// Milliseconds since the clock's origin.
    fn now_ms(&self) -> u64;
    /// Waits `ms` milliseconds (virtually or really).
    fn sleep_ms(&self, ms: u64);
}

/// A virtual clock: `sleep_ms` advances `now_ms` instantly. The default
/// for every simulated boundary — a chaos test that "waits out" thousands
/// of backoff delays still runs in microseconds.
#[derive(Debug, Default)]
pub struct SimClock {
    now: AtomicU64,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at `origin_ms`.
    pub fn starting_at(origin_ms: u64) -> Self {
        SimClock {
            now: AtomicU64::new(origin_ms),
        }
    }
}

impl Clock for SimClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
    fn sleep_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

/// The production clock: monotonic time, real sleeps.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_without_waiting() {
        let clock = SimClock::new();
        assert_eq!(clock.now_ms(), 0);
        let start = Instant::now();
        clock.sleep_ms(3_600_000); // "an hour"
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(clock.now_ms(), 3_600_000);
    }

    #[test]
    fn sim_clock_origin_is_respected() {
        let clock = SimClock::starting_at(500);
        clock.sleep_ms(10);
        assert_eq!(clock.now_ms(), 510);
    }

    #[test]
    fn system_clock_moves_forward() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        clock.sleep_ms(2);
        assert!(clock.now_ms() >= a);
    }
}
