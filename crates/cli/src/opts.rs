//! Flag parsing.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A CLI failure (usage or execution).
#[derive(Debug)]
pub enum CliError {
    /// Wrong invocation; the message explains what was expected.
    Usage(String),
    /// The command ran and failed.
    Failed(Box<dyn Error + Send + Sync>),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Failed(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CliError {}

impl CliError {
    /// Wraps an execution failure.
    pub fn failed(e: impl Error + Send + Sync + 'static) -> Self {
        CliError::Failed(Box::new(e))
    }
}

/// Parsed `--flag value` options (flags may repeat; values accumulate).
#[derive(Debug, Default)]
pub struct Options {
    values: BTreeMap<String, Vec<String>>,
}

impl Options {
    /// Parses `--flag value` pairs. Bare `--flag` (no value or another
    /// flag follows) records an empty string, supporting boolean flags.
    ///
    /// The only short flags are the verbosity trio: `-q` records a `q`,
    /// and `-v`/`-vv`/… record one `v` per letter (so `count("v")` is
    /// the verbosity level). They never consume a value.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut values: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if arg == "-q" {
                values
                    .entry("q".to_string())
                    .or_default()
                    .push(String::new());
                i += 1;
                continue;
            }
            if let Some(vs) = arg
                .strip_prefix('-')
                .filter(|s| !s.is_empty() && s.chars().all(|c| c == 'v'))
            {
                for _ in 0..vs.len() {
                    values
                        .entry("v".to_string())
                        .or_default()
                        .push(String::new());
                }
                i += 1;
                continue;
            }
            let flag = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("unexpected argument {arg:?}")))?;
            if flag.is_empty() {
                return Err(CliError::Usage("empty flag".to_string()));
            }
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                String::new()
            };
            values.entry(flag.to_string()).or_default().push(value);
            i += 1;
        }
        Ok(Options { values })
    }

    /// The single value of a required flag.
    pub fn required(&self, flag: &str) -> Result<&str, CliError> {
        match self.values.get(flag).map(Vec::as_slice) {
            Some([v]) if !v.is_empty() => Ok(v),
            Some([_]) => Err(CliError::Usage(format!("--{flag} needs a value"))),
            Some(_) => Err(CliError::Usage(format!("--{flag} given more than once"))),
            None => Err(CliError::Usage(format!("missing required --{flag}"))),
        }
    }

    /// The single value of an optional flag.
    pub fn optional(&self, flag: &str) -> Result<Option<&str>, CliError> {
        match self.values.get(flag).map(Vec::as_slice) {
            None => Ok(None),
            Some([v]) if !v.is_empty() => Ok(Some(v)),
            Some([_]) => Err(CliError::Usage(format!("--{flag} needs a value"))),
            Some(_) => Err(CliError::Usage(format!("--{flag} given more than once"))),
        }
    }

    /// All values of a repeatable flag (may be empty).
    pub fn repeated(&self, flag: &str) -> Vec<&str> {
        self.values
            .get(flag)
            .map(|v| v.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// `true` when a boolean flag is present.
    pub fn boolean(&self, flag: &str) -> bool {
        self.values.contains_key(flag)
    }

    /// How many times a flag appeared (0 when absent).
    pub fn count(&self, flag: &str) -> usize {
        self.values.get(flag).map(Vec::len).unwrap_or(0)
    }

    /// Rejects flags outside the allowed set (typo guard).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), CliError> {
        for flag in self.values.keys() {
            if !allowed.contains(&flag.as_str()) {
                return Err(CliError::Usage(format!("unknown flag --{flag}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flag_value_pairs() {
        let o = Options::parse(&args(&["--out", "dir", "--seed", "7"])).unwrap();
        assert_eq!(o.required("out").unwrap(), "dir");
        assert_eq!(o.required("seed").unwrap(), "7");
    }

    #[test]
    fn boolean_flags() {
        let o = Options::parse(&args(&["--no-truth", "--out", "x"])).unwrap();
        assert!(o.boolean("no-truth"));
        assert!(!o.boolean("truth"));
    }

    #[test]
    fn repeated_flags_accumulate() {
        let o = Options::parse(&args(&["--mapping", "a", "--mapping", "b"])).unwrap();
        assert_eq!(o.repeated("mapping"), vec!["a", "b"]);
        assert!(
            o.required("mapping").is_err(),
            "required demands exactly one"
        );
    }

    #[test]
    fn missing_required_is_reported() {
        let o = Options::parse(&[]).unwrap();
        let err = o.required("out").unwrap_err().to_string();
        assert!(err.contains("--out"));
    }

    #[test]
    fn positional_arguments_are_rejected() {
        assert!(Options::parse(&args(&["stray"])).is_err());
        assert!(Options::parse(&args(&["-x"])).is_err(), "only -v/-q exist");
    }

    #[test]
    fn verbosity_short_flags_count_and_never_take_values() {
        let o = Options::parse(&args(&["-v", "--out", "x"])).unwrap();
        assert_eq!(o.count("v"), 1);
        assert_eq!(o.required("out").unwrap(), "x");
        let o = Options::parse(&args(&["-vv", "-v"])).unwrap();
        assert_eq!(o.count("v"), 3);
        let o = Options::parse(&args(&["-q", "value-like"])).unwrap_err();
        assert!(o.to_string().contains("value-like"), "-q consumes nothing");
        let o = Options::parse(&args(&["-q", "--out", "x"])).unwrap();
        assert!(o.boolean("q"));
        assert_eq!(o.count("v"), 0);
    }

    #[test]
    fn unknown_flags_are_rejected_by_allow_only() {
        let o = Options::parse(&args(&["--outt", "x"])).unwrap();
        let err = o.allow_only(&["out"]).unwrap_err().to_string();
        assert!(err.contains("--outt"));
    }
}
