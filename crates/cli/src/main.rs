//! The `borges` binary. All logic lives in the library so it can be
//! tested; this is the process shell.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match borges_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
        }
        Err(e) => {
            eprintln!("borges: {e}");
            eprintln!("run `borges help` for usage");
            std::process::exit(1);
        }
    }
}
