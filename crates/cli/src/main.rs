//! The `borges` binary. All logic lives in the library so it can be
//! tested; this is the process shell.

use borges_telemetry::{Narrator, Verbosity};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match borges_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
        }
        Err(e) => {
            // Errors go through the narration layer too — they are never
            // silenced, even under -q.
            let narrator = Narrator::new(Verbosity::Normal);
            narrator.error(format!("borges: {e}"));
            narrator.error("run `borges help` for usage");
            std::process::exit(1);
        }
    }
}
