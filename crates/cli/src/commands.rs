//! The subcommands.

use crate::opts::{CliError, Options};
use borges_core::diff::diff;
use borges_core::impact::OrgNamer;
use borges_core::mapfile;
use borges_core::orgfactor::organization_factor;
use borges_core::pipeline::{Borges, FeatureSet, StreamOptions};
use borges_core::{AsOrgMapping, SnapshotState};
use borges_llm::{CachingModel, FlakyModel, SimLlm};
use borges_resilience::{EpisodePlan, RetryPolicy};
use borges_serve::{Reloader, Server, ServerConfig};
use borges_synthnet::io::{save, DatasetBundle};
use borges_synthnet::{generate_to_dir, EvolutionEvent, GeneratorConfig, SyntheticInternet};
use borges_telemetry::{CacheReport, Telemetry, Verbosity};
use borges_types::Asn;
use borges_websim::{FlakyWebClient, SimWebClient};
use std::path::Path;

const HELP: &str = "\
borges — AS-to-Organization mappings (Borges reproduction)

USAGE:
  borges generate --out DIR [--scale tiny|medium|paper|large|million] [--seed N]
                  [--no-truth] [--evolve EVENTS]
      Generate a synthetic-Internet dataset bundle. The large (~130k
      ASNs) and million (~1M ASNs) scales stream records straight to
      disk in bounded memory instead of materializing the world.
      --evolve applies scripted corporate events to the generated world
      and writes the *successor* snapshot instead (tiny/medium/paper
      only). EVENTS is a comma list of
      acquisition:ACQUIRER:TARGET, rebrand:BRAND:NEW, or
      spinoff:BRAND:CC+CC:NEW (brands as lower-case labels, CC as ISO
      country codes). Generating the same seed with and without
      --evolve yields a before/after snapshot pair for `--timeline`.
  borges map --data DIR --out FILE [--features all|none|LIST] [--seed N] [--threads N]
             [--streaming] [--max-in-flight N] [--per-host-rps R]
             [--fault-rate R] [--retries N] [--chaos-seed N]
             [--trace-out FILE] [--metrics-out FILE] [--report-out FILE]
             [--state-out DIR] [--store-out FILE] [--timeline DIR]
      Run the pipeline over a bundle and write the mapping.
      LIST is comma-separated from: oid_p, na, rr, favicons.
      --threads defaults to the machine's available parallelism; it
      drives the crawl, the LLM extraction, mapping materialization,
      and the sharded union-find replay of evidence edges (output is
      byte-identical to --threads 1 at every thread count).
      --streaming selects the streaming ingest engine: the crawl
      overlaps NER extraction and evidence compilation behind a
      bounded-concurrency scheduler (--threads fetch workers) with
      per-host FIFO admission. Output is byte-identical to the staged
      pipeline — including under --fault-rate chaos, which composes.
      --max-in-flight N caps fetches started but not yet completed
      (default 8); --per-host-rps R token-bucket rate-limits each host
      to R admissions per second of virtual pacing time. Both require
      --streaming. Scheduler accounting lands in the run ledger's
      worker rows (ingest_* stages), never in canonical outputs.
      --fault-rate R injects seeded transient transport faults (R in
      [0,1]) at both the crawl and the LLM boundary; --retries N caps
      recovery at N retries per call (default 4; 0 disables recovery);
      --chaos-seed decorrelates fault episodes and backoff jitter
      (default 7). Giving any of the three selects the resilient
      (sequential) pipeline and appends a per-feature coverage report.
      --trace-out writes the canonical span journal (JSONL, identical
      across thread counts); --metrics-out writes the counters and
      duration histograms in Prometheus exposition format;
      --report-out writes the unified run ledger as JSON.
      --state-out persists the compiled snapshot state (interner slots,
      edge segments, fingerprints, LLM reply memos) into DIR for a
      later incremental `borges remap`.
      --store-out persists the whole compiled world as a checksummed,
      content-addressed store artifact that `borges serve --store`
      cold-starts from without recompiling (see `borges store`).
      --timeline appends the compiled world to the append-only timeline
      at DIR as its next epoch: the epoch is stamped into the world
      (so it participates in the content address), the artifact lands
      under DIR/worlds/, a delta against the parent epoch under
      DIR/deltas/, and the chain manifest DIR/timeline.json is
      rewritten atomically (see `borges timeline`).
  borges remap --data DIR --base-state DIR --out FILE [--out-state DIR]
               [--features all|none|LIST] [--seed N] [--threads N]
               [--trace-out FILE] [--metrics-out FILE] [--report-out FILE]
               [--store-out FILE] [--timeline DIR]
      Incrementally re-map a (possibly changed) bundle against the
      state persisted by a previous `map --state-out` / `remap
      --out-state`: the web is re-crawled, LLM answers replay from the
      memo for records whose text is unchanged, and edge segments with
      untouched fingerprints are reused verbatim. The mapping written
      is byte-identical to a full `map` of the same bundle. --out-state
      persists the updated state so remaps chain across snapshots.
      --timeline appends the remapped world as the timeline's next
      epoch, exactly as `map --timeline` does — successive snapshots
      remapped with the same timeline grow one verifiable chain.
  borges serve --data DIR [--addr HOST:PORT] [--threads N] [--queue-depth N]
               [--lru N] [--seed N] [--addr-file FILE] [--store FILE]
               [--access-log FILE] [--slow-ms N] [--timeline DIR]
      Serve mappings over HTTP from an in-memory compiled pipeline.
      Endpoints: /v1/map/{asn}?features=..., /v1/org/{asn},
      /v1/evidence/{a}/{b}, /v1/coverage, /healthz, /metrics, and
      POST /v1/admin/reload (re-crawl + incremental remap, zero
      downtime; a {\"store\": PATH} body hot-swaps to a store
      artifact instead) / POST /v1/admin/shutdown (graceful drain).
      --timeline DIR mounts the timeline at DIR for time travel:
      /v1/map/{asn}?at=EPOCH answers from that chain epoch's world
      (floor-resolved, loaded on demand into a small epoch LRU, and
      byte-identical to serving that epoch's artifact directly),
      /v1/org/{asn}/history walks the ASN's organization lineage
      across the chain (merges, splits, renames), and
      /v1/diff/{t1}/{t2} composes the per-link deltas between two
      epochs. Without --timeline those paths answer 501.
      --store FILE cold-starts from a `map --store-out` artifact:
      validated and loaded with no evidence recompilation; if the
      artifact is damaged in any way, serve falls back to a full
      compile from --data, records store_degraded on the ledger, and
      classifies the damage in borges_store_* metrics. Responses are
      byte-identical either way.
      --addr defaults to 127.0.0.1:8080; port 0 picks an ephemeral
      port. --threads N fixed worker threads (default: available
      parallelism); --queue-depth N bounds the accept queue (default
      64) — overflow is shed with 503 + Retry-After; --lru N caches
      that many materialized feature subsets per world (default 16;
      0 disables). --addr-file writes the bound address once
      listening (for scripts using port 0). Runs until shutdown,
      then prints the request ledger.
      --access-log FILE appends one JSONL record per request (id,
      method, path, status, bytes, world digest, LRU outcome, queue
      depth, duration bucket), staged crash-safe and renamed into
      place at shutdown. --slow-ms N warns on requests slower than N
      milliseconds and counts them in borges_serve_slow_total. Live
      debugging: GET /v1/admin/debug/requests (recent requests),
      /v1/admin/debug/slow?threshold_ms=N, /v1/admin/debug/events
      (reloads, store boots, shed bursts).
  borges eval --data DIR --mapping FILE [--mapping FILE ...]
      Organization Factor (and, with an oracle, precision/recall) per mapping.
  borges inspect --data DIR --mapping FILE --asn N
      Show the inferred organization around one ASN.
  borges diff --before FILE --after FILE
      Compare two mapping releases (merges / splits / churn).
  borges store verify PATH [PATH ...]
      Integrity-check store artifact(s): print digest, schema version,
      and section table. Exits non-zero on any corruption class
      (truncation, checksum or digest mismatch, schema skew, torn
      rename, undecodable payload).
  borges store ls CATALOG
      List a content-addressed artifact catalog, verifying every
      entry against both its checksums and its file name, with each
      entry's schema version and epoch from the artifact meta
      section. Exits non-zero if any entry is damaged or
      misaddressed.
  borges store add CATALOG PATH
      Verify an artifact and copy it (crash-safely) into CATALOG
      under its content address: <sha256>.world.
  borges timeline verify DIR
      Re-verify the whole chain at DIR: the manifest parses and
      links up, every world artifact matches its content address and
      carries its link's epoch, every delta matches its digest.
      Exits non-zero, naming the corruption class, on any damage.
  borges timeline ls DIR
      List the chain: epoch, world digest, delta digest per link.
  borges timeline diff DIR T1 T2
      What moved between epochs T1 and T2 (merges, splits, appeared
      and disappeared ASNs), composed from the per-link deltas —
      byte-identical to diffing the two worlds directly.
  borges help
      This message.

GLOBAL FLAGS (any command):
  -v / -vv   narrate progress on stderr (verbose / debug)
  -q         silence narration; only the final report and errors remain
";

/// Runs the CLI; returns the text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => return Ok(HELP.to_string()),
    };
    // `store` and `timeline` take positional operands (an action and
    // paths), which the flag parser would reject — dispatch them before
    // parsing.
    if command == "store" {
        return store(rest);
    }
    if command == "timeline" {
        return timeline_cmd(rest);
    }
    let opts = Options::parse(rest)?;
    match command {
        "generate" => generate(&opts),
        "map" => map(&opts),
        "remap" => remap(&opts),
        "serve" => serve(&opts),
        "eval" => eval(&opts),
        "inspect" => inspect(&opts),
        "diff" => diff_cmd(&opts),
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// The narration level from `-q` / `-v` / `-vv` (quiet wins).
fn verbosity_of(opts: &Options) -> Verbosity {
    Verbosity::from_flags(opts.boolean("q"), opts.count("v"))
}

fn seed_of(opts: &Options) -> Result<u64, CliError> {
    match opts.optional("seed")? {
        Some(s) => s
            .parse()
            .map_err(|_| CliError::Usage(format!("--seed {s:?} is not a number"))),
        None => Ok(20240724),
    }
}

fn generate(opts: &Options) -> Result<String, CliError> {
    opts.allow_only(&["out", "scale", "seed", "no-truth", "evolve", "v", "q"])?;
    let narrator = borges_telemetry::Narrator::new(verbosity_of(opts));
    let out = opts.required("out")?;
    let seed = seed_of(opts)?;
    let dir = Path::new(out);
    let evolve_events = match opts.optional("evolve")? {
        Some(spec) => Some(parse_evolution_events(spec)?),
        None => None,
    };
    // tiny/medium/paper materialize the world in memory (cheap at those
    // scales, and other code paths want the in-memory value); large and
    // million stream every dataset file to disk in bounded memory.
    let (config, streamed) = match opts.optional("scale")?.unwrap_or("medium") {
        "tiny" => (GeneratorConfig::tiny(seed), false),
        "medium" => (GeneratorConfig::medium(seed), false),
        "paper" => (GeneratorConfig::paper(seed), false),
        "large" => (GeneratorConfig::large(seed), true),
        "million" => (GeneratorConfig::million(seed), true),
        other => return Err(CliError::Usage(format!("unknown scale {other:?}"))),
    };
    if evolve_events.is_some() && streamed {
        return Err(CliError::Usage(
            "--evolve needs an in-memory world; use --scale tiny, medium, or paper".to_string(),
        ));
    }
    let summary = if streamed {
        narrator.verbose(format!(
            "streaming ~{} ASNs to disk (seed {seed})",
            config.approx_asn_count()
        ));
        let report = generate_to_dir(&config, dir).map_err(CliError::failed)?;
        format!(
            "generated {} ASNs ({} PeeringDB networks, {} web hosts) into {} [streamed]\n",
            report.asns,
            report.pdb_nets,
            report.web_hosts,
            dir.display()
        )
    } else {
        narrator.verbose(format!("generating world (seed {seed})"));
        let mut world = SyntheticInternet::generate(&config);
        let mut evolved = "";
        if let Some(events) = &evolve_events {
            narrator.verbose(format!("applying {} corporate event(s)", events.len()));
            // Re-emission is seeded off the base seed, so a given
            // (seed, events) pair names one successor snapshot.
            world = world
                .evolve(events, seed + 1)
                .map_err(|e| CliError::Usage(format!("--evolve: {e}")))?;
            evolved = " [evolved]";
        }
        save(&world, dir).map_err(CliError::failed)?;
        format!(
            "generated {} ASNs ({} PeeringDB networks, {} web hosts) into {}{}\n",
            world.whois.asn_count(),
            world.pdb.net_count(),
            world.web.host_count(),
            dir.display(),
            evolved
        )
    };
    if opts.boolean("no-truth") {
        for oracle in ["truth.psv", "labels.psv"] {
            std::fs::remove_file(dir.join(oracle)).map_err(|e| CliError::Failed(Box::new(e)))?;
        }
    }
    Ok(summary)
}

fn parse_features(spec: &str) -> Result<FeatureSet, CliError> {
    FeatureSet::parse(spec).map_err(CliError::Usage)
}

/// `--evolve`'s comma list of scripted corporate events:
/// `acquisition:ACQUIRER:TARGET`, `rebrand:BRAND:NEW`, or
/// `spinoff:BRAND:CC+CC:NEW`.
fn parse_evolution_events(spec: &str) -> Result<Vec<EvolutionEvent>, CliError> {
    let mut events = Vec::new();
    for item in spec.split(',').filter(|s| !s.is_empty()) {
        let parts: Vec<&str> = item.split(':').collect();
        let event = match parts.as_slice() {
            ["acquisition", acquirer, target] => EvolutionEvent::Acquisition {
                acquirer: (*acquirer).to_string(),
                target: (*target).to_string(),
            },
            ["rebrand", brand, new_brand] => EvolutionEvent::Rebrand {
                brand: (*brand).to_string(),
                new_brand: (*new_brand).to_string(),
            },
            ["spinoff", brand, countries, new_brand] => EvolutionEvent::Spinoff {
                brand: (*brand).to_string(),
                countries: countries.split('+').map(|c| c.to_uppercase()).collect(),
                new_brand: (*new_brand).to_string(),
            },
            _ => {
                return Err(CliError::Usage(format!(
                    "--evolve: unparseable event {item:?} (expected acquisition:A:B, \
                     rebrand:A:B, or spinoff:A:CC+CC:B)"
                )))
            }
        };
        events.push(event);
    }
    if events.is_empty() {
        return Err(CliError::Usage(
            "--evolve needs at least one event".to_string(),
        ));
    }
    Ok(events)
}

/// Opens (creating if absent) the timeline at `dir`, mapping its typed
/// errors onto CLI failures that name the corruption class.
fn open_timeline(dir: &str) -> Result<borges_timeline::Timeline, CliError> {
    borges_timeline::Timeline::open(Path::new(dir))
        .map_err(|e| CliError::Failed(format!("timeline {dir}: {e} ({})", e.kind()).into()))
}

/// Appends the compiled world to the timeline at `dir` as its next
/// epoch, returning the new link. Runs *before* `--store-out` so the
/// stamped epoch lands in both artifacts.
fn append_timeline(
    borges: &mut Borges,
    dir: &str,
) -> Result<borges_timeline::TimelineLink, CliError> {
    let mut timeline = open_timeline(dir)?;
    timeline
        .append(borges)
        .map_err(|e| CliError::Failed(format!("timeline {dir}: {e} ({})", e.kind()).into()))
}

/// `--threads`, defaulting to the machine's parallelism. Zero is a
/// usage error everywhere it appears: zero workers would run nothing.
fn parse_threads(opts: &Options) -> Result<usize, CliError> {
    match opts.optional("threads")? {
        Some(t) => match t.parse::<usize>() {
            Ok(0) => Err(CliError::Usage(
                "--threads 0 would run no workers; pass 1 or more (or omit for the default)"
                    .to_string(),
            )),
            Ok(n) => Ok(n),
            Err(_) => Err(CliError::Usage(format!("--threads {t:?} is not a number"))),
        },
        None => Ok(borges_parallel::default_threads()),
    }
}

/// The `map` command's resilience knobs, parsed from
/// `--fault-rate` / `--retries` / `--chaos-seed`. `None` when none of
/// the three flags were given (the bare fast path).
struct ChaosOpts {
    fault_rate: f64,
    policy: RetryPolicy,
    chaos_seed: u64,
}

fn chaos_opts(opts: &Options) -> Result<Option<ChaosOpts>, CliError> {
    let fault_rate = opts.optional("fault-rate")?;
    let retries = opts.optional("retries")?;
    let chaos_seed = opts.optional("chaos-seed")?;
    if fault_rate.is_none() && retries.is_none() && chaos_seed.is_none() {
        return Ok(None);
    }
    let fault_rate: f64 = match fault_rate {
        Some(r) => r
            .parse()
            .ok()
            .filter(|r| (0.0..=1.0).contains(r))
            .ok_or_else(|| {
                CliError::Usage(format!("--fault-rate {r:?} is not a number in [0,1]"))
            })?,
        None => 0.0,
    };
    let chaos_seed: u64 = match chaos_seed {
        Some(s) => s
            .parse()
            .map_err(|_| CliError::Usage(format!("--chaos-seed {s:?} is not a number")))?,
        None => 7,
    };
    let policy = match retries {
        Some(n) => {
            let retries: u32 = n
                .parse()
                .map_err(|_| CliError::Usage(format!("--retries {n:?} is not a number")))?;
            if retries == 0 {
                RetryPolicy::none()
            } else {
                RetryPolicy {
                    max_attempts: retries + 1,
                    ..RetryPolicy::standard(chaos_seed)
                }
            }
        }
        None => RetryPolicy::standard(chaos_seed),
    };
    Ok(Some(ChaosOpts {
        fault_rate,
        policy,
        chaos_seed,
    }))
}

/// The `map` command's streaming knobs, parsed from `--streaming` /
/// `--max-in-flight` / `--per-host-rps`. `None` when `--streaming` was
/// not given — in which case the companion knobs are usage errors, so a
/// typo'd invocation fails before any I/O rather than silently running
/// the staged pipeline.
fn stream_opts(
    opts: &Options,
    chaos: &Option<ChaosOpts>,
    threads: usize,
) -> Result<Option<StreamOptions>, CliError> {
    let streaming = opts.boolean("streaming");
    let max_in_flight = opts.optional("max-in-flight")?;
    let per_host_rps = opts.optional("per-host-rps")?;
    if !streaming {
        if max_in_flight.is_some() {
            return Err(CliError::Usage(
                "--max-in-flight only applies to the streaming pipeline; add --streaming"
                    .to_string(),
            ));
        }
        if per_host_rps.is_some() {
            return Err(CliError::Usage(
                "--per-host-rps only applies to the streaming pipeline; add --streaming"
                    .to_string(),
            ));
        }
        return Ok(None);
    }
    let max_in_flight = match max_in_flight {
        Some(n) => match n.parse::<usize>() {
            Ok(0) => {
                return Err(CliError::Usage(
                    "--max-in-flight 0 would admit no fetches; pass 1 or more \
                     (or omit for the default)"
                        .to_string(),
                ))
            }
            Ok(n) => n,
            Err(_) => {
                return Err(CliError::Usage(format!(
                    "--max-in-flight {n:?} is not a number"
                )))
            }
        },
        None => StreamOptions::default().max_in_flight,
    };
    let per_host_rps = match per_host_rps {
        Some(r) => Some(
            r.parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r > 0.0)
                .ok_or_else(|| {
                    CliError::Usage(format!("--per-host-rps {r:?} is not a positive rate"))
                })?,
        ),
        None => None,
    };
    Ok(Some(StreamOptions {
        workers: threads,
        max_in_flight,
        per_host_rps,
        policy: chaos.as_ref().map(|c| c.policy),
        threads,
        ..StreamOptions::default()
    }))
}

fn coverage_lines(borges: &Borges) -> String {
    let c = borges.coverage();
    let row = |label: &str, f: borges_core::FeatureCoverage| {
        format!(
            "  {:<16} attempted {:>6}  succeeded {:>6}  abandoned {:>6}\n",
            label, f.attempted, f.succeeded, f.abandoned
        )
    };
    let recovered = borges.scrape_stats.resilience.recovered
        + borges.ner.stats.resilience.recovered
        + borges.favicon.stats.resilience.recovered;
    format!(
        "coverage:\n{}{}{}  ({} calls recovered by retries; every abandoned record is accounted)\n",
        row("crawl", c.crawl),
        row("notes-aka", c.notes_aka),
        row("favicon groups", c.favicon_groups),
        recovered
    )
}

fn map(opts: &Options) -> Result<String, CliError> {
    opts.allow_only(&[
        "data",
        "out",
        "features",
        "seed",
        "threads",
        "fault-rate",
        "retries",
        "chaos-seed",
        "streaming",
        "max-in-flight",
        "per-host-rps",
        "trace-out",
        "metrics-out",
        "report-out",
        "state-out",
        "store-out",
        "timeline",
        "v",
        "q",
    ])?;
    let data = opts.required("data")?;
    let out = opts.required("out")?;
    let features = parse_features(opts.optional("features")?.unwrap_or("all"))?;
    let seed = seed_of(opts)?;
    let chaos = chaos_opts(opts)?;
    let threads = parse_threads(opts)?;
    let stream = stream_opts(opts, &chaos, threads)?;
    let trace_out = opts.optional("trace-out")?;
    let metrics_out = opts.optional("metrics-out")?;
    let report_out = opts.optional("report-out")?;

    // One telemetry context per run, on a virtual clock: spans, metrics,
    // and narration all flow through it. Enabling it unconditionally is
    // fine — the instrumented paths only stamp merged stats.
    let tel = Telemetry::sim(verbosity_of(opts));
    tel.verbose(format!("loading bundle from {data}"));
    let bundle = DatasetBundle::load(Path::new(data)).map_err(CliError::failed)?;
    tel.debug(format!(
        "bundle: {} WHOIS ASNs, {} PeeringDB networks, {} web hosts",
        bundle.whois.asn_count(),
        bundle.pdb.net_count(),
        bundle.web.host_count()
    ));
    // The LLM sits behind a response cache so repeated prompts (and the
    // ledger's cache row) are observable end to end.
    let llm = CachingModel::new(SimLlm::new(seed));
    let mut coverage = String::new();
    let (mut borges, pipeline) = if let Some(stream) = &stream {
        // The streaming engine overlaps crawl, NER, and compilation;
        // per-host FIFO admission keeps it byte-identical to the staged
        // pipelines — chaos composes (stream.policy carries it).
        if let Some(chaos) = &chaos {
            tel.verbose(format!(
                "streaming pipeline: {} workers, {} in flight, fault rate {}, chaos seed {}",
                stream.workers, stream.max_in_flight, chaos.fault_rate, chaos.chaos_seed
            ));
            let plan = EpisodePlan {
                transient_rate: chaos.fault_rate,
                permanent_rate: 0.0,
                max_burst: 3,
                seed: chaos.chaos_seed,
            };
            let web = FlakyWebClient::new(SimWebClient::browser(&bundle.web), plan);
            let model = FlakyModel::new(
                &llm,
                EpisodePlan {
                    seed: chaos.chaos_seed ^ 0x4c4c_4d00,
                    ..plan
                },
            );
            let borges =
                Borges::run_streaming_traced(&bundle.whois, &bundle.pdb, web, &model, stream, &tel);
            coverage = coverage_lines(&borges);
            (borges, "streaming")
        } else {
            tel.verbose(format!(
                "streaming pipeline: {} workers, {} in flight",
                stream.workers, stream.max_in_flight
            ));
            let borges = Borges::run_streaming_traced(
                &bundle.whois,
                &bundle.pdb,
                SimWebClient::browser(&bundle.web),
                &llm,
                stream,
                &tel,
            );
            (borges, "streaming")
        }
    } else if let Some(chaos) = chaos {
        // The resilient path is sequential: fault bursts are stateful per
        // subject, so interleaving would perturb which attempt of a burst
        // each worker observes.
        tel.verbose(format!(
            "resilient pipeline: fault rate {}, chaos seed {}",
            chaos.fault_rate, chaos.chaos_seed
        ));
        let plan = EpisodePlan {
            transient_rate: chaos.fault_rate,
            permanent_rate: 0.0,
            max_burst: 3,
            seed: chaos.chaos_seed,
        };
        let web = FlakyWebClient::new(SimWebClient::browser(&bundle.web), plan);
        let model = FlakyModel::new(
            &llm,
            EpisodePlan {
                seed: chaos.chaos_seed ^ 0x4c4c_4d00,
                ..plan
            },
        );
        let borges = Borges::run_resilient_traced(
            &bundle.whois,
            &bundle.pdb,
            web,
            &model,
            chaos.policy,
            &tel,
        );
        coverage = coverage_lines(&borges);
        (borges, "resilient")
    } else if threads > 1 {
        tel.verbose(format!("parallel pipeline over {threads} threads"));
        let borges = Borges::run_parallel_traced(
            &bundle.whois,
            &bundle.pdb,
            SimWebClient::browser(&bundle.web),
            &llm,
            threads,
            &tel,
        );
        (borges, "parallel")
    } else {
        tel.verbose("sequential pipeline");
        let borges = Borges::run_traced(
            &bundle.whois,
            &bundle.pdb,
            SimWebClient::browser(&bundle.web),
            &llm,
            &tel,
        );
        (borges, "sequential")
    };
    tel.verbose(format!(
        "crawl: {} entries, {} reachable URLs; ner: {} LLM calls",
        borges.scrape_stats.entries_with_website,
        borges.scrape_stats.reachable_urls,
        borges.ner.stats.llm_calls
    ));
    let mapping = borges
        .mappings_parallel_traced(std::slice::from_ref(&features), threads, &tel)
        .pop()
        .expect("one feature set in, one mapping out");
    write_artifact_file(out, mapfile::serialize(&mapping))?;
    if let Some(dir) = opts.optional("state-out")? {
        write_state(&borges, dir)?;
        tel.debug(format!("snapshot state written to {dir}"));
    }
    // Timeline append runs before --store-out: it stamps the chain
    // epoch into the world, and the store artifact must carry it too.
    let mut timeline_row = String::new();
    let mut appended_link: Option<(u64, String)> = None;
    if let Some(dir) = opts.optional("timeline")? {
        let link = append_timeline(&mut borges, dir)?;
        tel.debug(format!(
            "timeline epoch {} appended ({})",
            link.epoch, link.world_digest
        ));
        timeline_row = format!(
            "timeline: epoch {} appended ({})\n",
            link.epoch, link.world_digest
        );
        appended_link = Some((link.epoch, link.world_digest));
    }
    if let Some(path) = opts.optional("store-out")? {
        let digest = borges_store::write_artifact(Path::new(path), &borges.to_world())
            .map_err(CliError::failed)?;
        tel.debug(format!("world store artifact written to {path} ({digest})"));
    }

    if trace_out.is_some() || metrics_out.is_some() || report_out.is_some() {
        let mut report = borges.run_report(&tel, pipeline, threads);
        report
            .caches
            .push(CacheReport::new("llm.response", llm.cache_stats()));
        if let Some((epoch, world_digest)) = &appended_link {
            report.timeline = borges_telemetry::TimelineReport {
                appended: true,
                epoch: *epoch,
                world_digest: world_digest.clone(),
            };
        }
        if let Some(path) = trace_out {
            write_artifact_file(path, tel.trace_jsonl_canonical())?;
            tel.debug(format!("trace journal written to {path}"));
        }
        if let Some(path) = metrics_out {
            write_artifact_file(path, report.metrics.to_prometheus())?;
            tel.debug(format!("metrics written to {path}"));
        }
        if let Some(path) = report_out {
            write_artifact_file(path, report.to_json_pretty())?;
            tel.debug(format!("run ledger written to {path}"));
        }
    }
    Ok(format!(
        "{}: {} ASNs in {} organizations (features: {})\n{}{}",
        out,
        mapping.asn_count(),
        mapping.org_count(),
        features.label(),
        coverage,
        timeline_row
    ))
}

/// File the snapshot state lives under inside a state directory.
const STATE_FILE: &str = "state.json";

/// Writes a CLI output artifact crash-safely: staged to a sibling
/// temporary file, fsynced, then atomically renamed into place. A
/// crash mid-write leaves either the previous file or nothing — never
/// a torn artifact.
fn write_artifact_file(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> Result<(), CliError> {
    borges_store::write_atomic(path.as_ref(), bytes.as_ref())
        .map_err(|e| CliError::Failed(Box::new(e)))
}

fn write_state(borges: &Borges, dir: &str) -> Result<(), CliError> {
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| CliError::Failed(Box::new(e)))?;
    write_artifact_file(
        dir.join(STATE_FILE),
        borges.snapshot_state().to_json_pretty(),
    )
}

fn load_state(dir: &str) -> Result<SnapshotState, CliError> {
    let path = Path::new(dir).join(STATE_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Usage(format!("--base-state: {}: {e}", path.display())))?;
    SnapshotState::from_json(&text).map_err(|e| CliError::Usage(format!("{}: {e}", path.display())))
}

fn remap(opts: &Options) -> Result<String, CliError> {
    opts.allow_only(&[
        "data",
        "base-state",
        "out",
        "out-state",
        "features",
        "seed",
        "threads",
        "trace-out",
        "metrics-out",
        "report-out",
        "store-out",
        "timeline",
        "v",
        "q",
    ])?;
    let data = opts.required("data")?;
    let out = opts.required("out")?;
    let features = parse_features(opts.optional("features")?.unwrap_or("all"))?;
    let seed = seed_of(opts)?;
    let threads = parse_threads(opts)?;
    let trace_out = opts.optional("trace-out")?;
    let metrics_out = opts.optional("metrics-out")?;
    let report_out = opts.optional("report-out")?;

    let tel = Telemetry::sim(verbosity_of(opts));
    let state = load_state(opts.required("base-state")?)?;
    tel.verbose(format!("loading bundle from {data}"));
    let bundle = DatasetBundle::load(Path::new(data)).map_err(CliError::failed)?;

    // The web is always re-crawled: sites drift independently of the
    // registries and crawling is cheap next to LLM calls. The memoized
    // LLM replies in the state are what make the remap incremental.
    let llm = CachingModel::new(SimLlm::new(seed));
    let scraper = borges_websim::Scraper::new(SimWebClient::browser(&bundle.web));
    let report = scraper.crawl(bundle.pdb.nets().map(|n| (n.asn, n.website.as_str())));
    let mut borges = Borges::remap_parallel_traced(
        &bundle.whois,
        &bundle.pdb,
        &report,
        &llm,
        borges_core::ner::NerConfig::default(),
        &state,
        threads,
        &tel,
    );
    let d = borges.delta.as_ref().expect("remap records delta stats");
    tel.verbose(format!(
        "delta: {} dirty records, {} LLM calls replayed from memo, {} issued",
        d.records.dirty(),
        d.llm_calls_saved(),
        d.ner_recomputed + d.favicon_recomputed
    ));
    let (segments_retained, edges_retained): (usize, usize) = d
        .edge_rows()
        .iter()
        .map(|(_, s)| (s.segments_retained, s.edges_retained))
        .fold((0, 0), |(a, b), (x, y)| (a + x, b + y));
    // Copied out: the timeline append below needs the pipeline mutably.
    let dirty_records = d.records.dirty();
    let llm_calls_saved = d.llm_calls_saved();

    let mapping = borges
        .mappings_parallel_traced(std::slice::from_ref(&features), threads, &tel)
        .pop()
        .expect("one feature set in, one mapping out");
    write_artifact_file(out, mapfile::serialize(&mapping))?;
    if let Some(dir) = opts.optional("out-state")? {
        write_state(&borges, dir)?;
        tel.debug(format!("updated snapshot state written to {dir}"));
    }
    // As in `map`: the timeline append stamps the chain epoch into the
    // world before the store artifact is written.
    let mut timeline_row = String::new();
    let mut appended_link: Option<(u64, String)> = None;
    if let Some(dir) = opts.optional("timeline")? {
        let link = append_timeline(&mut borges, dir)?;
        tel.debug(format!(
            "timeline epoch {} appended ({})",
            link.epoch, link.world_digest
        ));
        timeline_row = format!(
            "timeline: epoch {} appended ({})\n",
            link.epoch, link.world_digest
        );
        appended_link = Some((link.epoch, link.world_digest));
    }
    if let Some(path) = opts.optional("store-out")? {
        let digest = borges_store::write_artifact(Path::new(path), &borges.to_world())
            .map_err(CliError::failed)?;
        tel.debug(format!("world store artifact written to {path} ({digest})"));
    }

    if trace_out.is_some() || metrics_out.is_some() || report_out.is_some() {
        let mut ledger = borges.run_report(&tel, "remap", threads);
        ledger
            .caches
            .push(CacheReport::new("llm.response", llm.cache_stats()));
        if let Some((epoch, world_digest)) = &appended_link {
            ledger.timeline = borges_telemetry::TimelineReport {
                appended: true,
                epoch: *epoch,
                world_digest: world_digest.clone(),
            };
        }
        if let Some(path) = trace_out {
            write_artifact_file(path, tel.trace_jsonl_canonical())?;
        }
        if let Some(path) = metrics_out {
            write_artifact_file(path, ledger.metrics.to_prometheus())?;
        }
        if let Some(path) = report_out {
            write_artifact_file(path, ledger.to_json_pretty())?;
        }
    }
    Ok(format!(
        "{}: {} ASNs in {} organizations (features: {})\n\
         delta: {} dirty records; {} segments ({} edges) reused; {} LLM calls saved\n{}",
        out,
        mapping.asn_count(),
        mapping.org_count(),
        features.label(),
        dirty_records,
        segments_retained,
        edges_retained,
        llm_calls_saved,
        timeline_row
    ))
}

/// A small non-negative integer flag with a default and a floor.
fn parse_count(opts: &Options, flag: &str, default: usize, min: usize) -> Result<usize, CliError> {
    match opts.optional(flag)? {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= min => Ok(n),
            Ok(n) => Err(CliError::Usage(format!("--{flag} {n} must be >= {min}"))),
            Err(_) => Err(CliError::Usage(format!("--{flag} {raw:?} is not a number"))),
        },
        None => Ok(default),
    }
}

/// How a `serve --store` cold start went: `Ok(digest)` when the
/// artifact was validated and loaded (no recompilation), `Err(kind)`
/// when it was damaged and serve fell back to a bundle compile.
type StoreBoot = Result<String, String>;

/// How many chain-epoch worlds `serve --timeline` keeps resident at
/// once. Small on purpose: each is a full compiled pipeline, and the
/// byte-determinism contract makes evictions invisible to clients.
const EPOCH_LRU_CAPACITY: usize = 4;

/// Adapts [`borges_timeline::Timeline`] to the serve crate's injected
/// backend, flattening the timeline's typed error kinds onto HTTP
/// blame: an epoch the chain cannot answer is the client's problem
/// (404), a backwards range is a bad request (400), and everything
/// else — corruption, IO — is the server's (500).
struct CliTimelineBackend {
    timeline: borges_timeline::Timeline,
    threads: usize,
}

fn timeline_query_error(e: borges_timeline::TimelineError) -> borges_serve::TimelineQueryError {
    match e.kind() {
        "unknown_epoch" | "empty" => borges_serve::TimelineQueryError::NotFound(e.to_string()),
        "invalid_range" => borges_serve::TimelineQueryError::BadRequest(e.to_string()),
        _ => borges_serve::TimelineQueryError::Internal(e.to_string()),
    }
}

impl borges_serve::TimelineBackend for CliTimelineBackend {
    fn link_count(&self) -> usize {
        self.timeline.links().len()
    }
    fn tip_epoch(&self) -> Option<u64> {
        self.timeline.tip().map(|l| l.epoch)
    }
    fn resolve_at(&self, at: u64) -> Result<u64, borges_serve::TimelineQueryError> {
        self.timeline
            .resolve_at(at)
            .map(|l| l.epoch)
            .map_err(timeline_query_error)
    }
    fn load(&self, epoch: u64) -> Result<Borges, borges_serve::TimelineQueryError> {
        self.timeline
            .load_epoch(epoch, self.threads)
            .map_err(timeline_query_error)
    }
    fn history_json(&self, asn: Asn) -> Result<String, borges_serve::TimelineQueryError> {
        self.timeline
            .org_lineage(asn)
            .map(|lineage| lineage.to_json())
            .map_err(timeline_query_error)
    }
    fn diff_json(&self, t1: u64, t2: u64) -> Result<String, borges_serve::TimelineQueryError> {
        self.timeline
            .diff(t1, t2)
            .map(|d| borges_timeline::render_diff_json(t1, t2, &d))
            .map_err(timeline_query_error)
    }
}

fn serve(opts: &Options) -> Result<String, CliError> {
    opts.allow_only(&[
        "data",
        "addr",
        "threads",
        "queue-depth",
        "lru",
        "seed",
        "addr-file",
        "store",
        "access-log",
        "slow-ms",
        "timeline",
        "v",
        "q",
    ])?;
    let data = opts.required("data")?.to_string();
    let addr = opts
        .optional("addr")?
        .unwrap_or("127.0.0.1:8080")
        .to_string();
    let threads = parse_threads(opts)?;
    let queue_depth = parse_count(opts, "queue-depth", 64, 1)?;
    let lru = parse_count(opts, "lru", 16, 0)?;
    let seed = seed_of(opts)?;
    let slow_ms = match opts.optional("slow-ms")? {
        None => None,
        Some(raw) => Some(raw.parse::<u64>().map_err(|_| {
            CliError::Usage(format!(
                "--slow-ms must be a non-negative integer (milliseconds), got {raw:?}"
            ))
        })?),
    };
    let access_log_path = opts.optional("access-log")?.map(String::from);
    let narrator = std::sync::Arc::new(borges_telemetry::Narrator::new(verbosity_of(opts)));

    let compile_from_bundle = || -> Result<Borges, CliError> {
        narrator.verbose(format!("loading bundle from {data}"));
        let bundle = DatasetBundle::load(Path::new(&data)).map_err(CliError::failed)?;
        let llm = CachingModel::new(SimLlm::new(seed));
        narrator.verbose(format!("compiling pipeline over {threads} threads"));
        Ok(if threads > 1 {
            Borges::run_parallel(
                &bundle.whois,
                &bundle.pdb,
                SimWebClient::browser(&bundle.web),
                &llm,
                threads,
            )
        } else {
            Borges::run(
                &bundle.whois,
                &bundle.pdb,
                SimWebClient::browser(&bundle.web),
                &llm,
            )
        })
    };

    // A valid `--store` artifact replaces the compile wholesale: the
    // world is decoded, checksummed, and replayed into a pipeline with
    // no crawling, no LLM calls, and no evidence recompilation. Any
    // damage — truncation, flipped bits, schema skew, a torn rename —
    // degrades loudly to the bundle compile instead of serving a
    // corrupt world.
    let store_boot: Option<StoreBoot>;
    let borges = match opts.optional("store")? {
        Some(path) => {
            narrator.verbose(format!("loading world store artifact {path}"));
            let loaded = borges_store::load_artifact(Path::new(path))
                .map_err(|e| (e.kind().to_string(), e.to_string()))
                .and_then(|loaded| {
                    Borges::from_world(&loaded.world, threads)
                        .map(|b| (b, loaded.digest))
                        .map_err(|e| ("decode".to_string(), e))
                });
            match loaded {
                Ok((borges, digest)) => {
                    narrator.verbose(format!(
                        "store artifact valid (digest {digest}); compile skipped"
                    ));
                    store_boot = Some(Ok(digest));
                    borges
                }
                Err((kind, detail)) => {
                    narrator.verbose(format!(
                        "store artifact damaged ({kind}): {detail}; recompiling from bundle"
                    ));
                    store_boot = Some(Err(kind));
                    compile_from_bundle()?
                }
            }
        }
        None => {
            store_boot = None;
            compile_from_bundle()?
        }
    };

    // `POST /v1/admin/reload` re-reads the bundle directory (which may
    // hold snapshot T+1 by then), re-crawls, and incrementally remaps
    // against the serving pipeline's own snapshot state — the PR 4
    // byte-identical contract is what makes the swapped world
    // indistinguishable from a cold start on the new data. A reload
    // body naming a store artifact hot-swaps to that world instead;
    // a damaged artifact fails the reload loudly and the old world
    // keeps serving.
    let reloader: Reloader = {
        let data = data.clone();
        Box::new(move |current: &Borges, store: Option<&str>| {
            if let Some(path) = store {
                let loaded = borges_store::load_artifact(Path::new(path))
                    .map_err(|e| format!("store artifact {path}: {e} ({})", e.kind()))?;
                return Borges::from_world(&loaded.world, threads);
            }
            let bundle = DatasetBundle::load(Path::new(&data)).map_err(|e| e.to_string())?;
            let llm = CachingModel::new(SimLlm::new(seed));
            let scraper = borges_websim::Scraper::new(SimWebClient::browser(&bundle.web));
            let report = scraper.crawl(bundle.pdb.nets().map(|n| (n.asn, n.website.as_str())));
            Ok(Borges::remap(
                &bundle.whois,
                &bundle.pdb,
                &report,
                &llm,
                borges_core::ner::NerConfig::default(),
                &current.snapshot_state(),
            ))
        })
    };

    // The access log is the runtime stream: staged crash-safe beside
    // its destination while serving, fsynced and renamed into place on
    // graceful shutdown (the same protocol as store artifacts).
    let access_log = match &access_log_path {
        Some(path) => Some(std::sync::Arc::new(
            borges_telemetry::AccessLogWriter::create(path).map_err(CliError::failed)?,
        )),
        None => None,
    };
    let mut hooks = borges_serve::ServerHooks::default();
    if let Some(writer) = &access_log {
        let writer = writer.clone();
        let log_narrator = narrator.clone();
        hooks.access_log = Some(Box::new(move |record| {
            if let Err(err) = writer.append_line(&record.to_json()) {
                log_narrator.error(format!("access log write failed: {err}"));
            }
        }));
    }
    if slow_ms.is_some() {
        let slow_narrator = narrator.clone();
        hooks.slow = Some(Box::new(move |record| {
            slow_narrator.info(format!(
                "slow request {} {} {} — {} ms (status {})",
                record.id, record.method, record.path, record.duration_ms, record.status
            ));
        }));
    }

    // The chain is opened (and its manifest verified to link up) at
    // boot; worlds load lazily on the first `?at=` naming their epoch.
    let timeline_dir = opts.optional("timeline")?.map(String::from);
    let mut timeline_summary: Option<(usize, Option<u64>)> = None;
    let timeline_state = match &timeline_dir {
        None => None,
        Some(dir) => {
            let timeline = open_timeline(dir)?;
            timeline_summary = Some((timeline.links().len(), timeline.tip().map(|l| l.epoch)));
            narrator.verbose(format!(
                "timeline {dir} mounted ({} link(s))",
                timeline.links().len()
            ));
            Some(std::sync::Arc::new(borges_serve::TimelineState::new(
                Box::new(CliTimelineBackend { timeline, threads }),
                EPOCH_LRU_CAPACITY,
                lru,
            )))
        }
    };

    let config = ServerConfig {
        addr,
        threads,
        queue_depth,
        lru_capacity: lru,
        slow_ms,
        ..ServerConfig::default()
    };
    let server = Server::start_with_timeline(config, borges, Some(reloader), hooks, timeline_state)
        .map_err(CliError::failed)?;
    if let (Some(dir), Some((links, tip))) = (&timeline_dir, &timeline_summary) {
        server.record_event(
            "timeline_mounted",
            &format!(
                "{dir}: {links} link(s), tip epoch {}",
                tip.map(|e| e.to_string()).unwrap_or_else(|| "-".into())
            ),
        );
    }
    // The cold-start outcome lands in the metrics registry (and so the
    // final ledger): attempts, ok, degraded by corruption class, and —
    // explicitly zero on the happy path — whether a recompile ran.
    if let Some(boot) = &store_boot {
        let metrics = server.metrics();
        metrics.counter("borges_store_load_attempts_total", 1);
        match boot {
            Ok(_) => {
                metrics.counter("borges_store_load_ok_total", 1);
                metrics.counter("borges_store_degraded_total", 0);
                metrics.counter("borges_store_recompile_total", 0);
            }
            Err(kind) => {
                metrics.counter("borges_store_load_ok_total", 0);
                metrics.counter("borges_store_degraded_total", 1);
                metrics.counter(&format!("borges_store_degraded_{kind}_total"), 1);
                metrics.counter("borges_store_recompile_total", 1);
            }
        }
        // The same outcome lands in the world-event journal, so
        // /v1/admin/debug/events tells the whole boot story.
        match boot {
            Ok(digest) => server.record_event(
                "store_load_ok",
                &format!("cold start from artifact {digest}"),
            ),
            Err(kind) => server.record_event(
                "store_degraded",
                &format!("artifact damaged ({kind}); recompiled from bundle"),
            ),
        }
    }
    let local = server.local_addr();
    if let Some(path) = opts.optional("addr-file")? {
        write_artifact_file(path, format!("{local}\n"))?;
    }
    narrator.verbose(format!(
        "serving on http://{local} ({threads} workers, queue depth {queue_depth}, lru {lru})"
    ));
    let ledger = server.wait();
    // Land the access log: fsync the staged file and rename it into
    // place — the destination appears complete or not at all.
    let access_row = match (&access_log, &access_log_path) {
        (Some(writer), Some(path)) => {
            writer.finish().map_err(CliError::failed)?;
            format!("access log: {path}\n")
        }
        _ => String::new(),
    };
    let store_row = match &store_boot {
        Some(Ok(digest)) => format!("store: cold start from artifact {digest}, 0 recompiles\n"),
        Some(Err(kind)) => format!("store_degraded: {kind} — recompiled from bundle\n"),
        None => String::new(),
    };
    Ok(format!(
        "served {} request(s), shed {}, accepted {} — shut down cleanly\n{}{}",
        ledger.counter("borges_serve_served_total"),
        ledger.counter("borges_serve_shed_total"),
        ledger.counter("borges_serve_accepted_total"),
        store_row,
        access_row,
    ))
}

/// `borges store <verify|ls|add>` — artifact integrity tooling. Takes
/// positional operands, so it parses them by hand instead of through
/// `Options`.
fn store(args: &[String]) -> Result<String, CliError> {
    let (action, rest) = match args.split_first() {
        Some((a, rest)) => (a.as_str(), rest),
        None => {
            return Err(CliError::Usage(
                "store needs an action: verify, ls, or add".to_string(),
            ))
        }
    };
    match action {
        "verify" => store_verify(rest),
        "ls" => store_ls(rest),
        "add" => store_add(rest),
        other => Err(CliError::Usage(format!(
            "unknown store action {other:?} (expected verify, ls, or add)"
        ))),
    }
}

/// Renders one artifact's provenance and section table.
fn describe_artifact(info: &borges_store::ArtifactInfo) -> String {
    let mut out = String::new();
    out.push_str(&format!("  digest          {}\n", info.digest));
    out.push_str(&format!("  format version  {}\n", info.format_version));
    out.push_str(&format!("  schema version  {}\n", info.schema_version));
    out.push_str(&format!("  epoch           {}\n", info.epoch));
    out.push_str(&format!("  total bytes     {}\n", info.total_len));
    for (name, len) in &info.sections {
        out.push_str(&format!("  section {name:<13} {len:>12} bytes\n"));
    }
    out
}

fn store_verify(paths: &[String]) -> Result<String, CliError> {
    if paths.is_empty() {
        return Err(CliError::Usage(
            "store verify needs at least one artifact path".to_string(),
        ));
    }
    let mut out = String::new();
    for path in paths {
        let info = borges_store::verify_artifact(Path::new(path))
            .map_err(|e| CliError::Failed(format!("{path}: CORRUPT ({}): {e}", e.kind()).into()))?;
        out.push_str(&format!("{path}: ok\n"));
        out.push_str(&describe_artifact(&info));
    }
    Ok(out)
}

fn store_ls(args: &[String]) -> Result<String, CliError> {
    let [catalog] = args else {
        return Err(CliError::Usage(
            "store ls takes exactly one catalog directory".to_string(),
        ));
    };
    let entries = borges_store::catalog_ls(Path::new(catalog)).map_err(CliError::failed)?;
    if entries.is_empty() {
        return Ok(format!("{catalog}: empty catalog\n"));
    }
    let mut out = String::new();
    let mut damaged = 0usize;
    for entry in &entries {
        match &entry.info {
            Ok(info) if entry.addressed_correctly() => {
                out.push_str(&format!(
                    "{:<72} ok  schema {}  epoch {}  {} bytes\n",
                    entry.file_name, info.schema_version, info.epoch, info.total_len
                ));
            }
            Ok(_) => {
                damaged += 1;
                out.push_str(&format!(
                    "{:<72} MISADDRESSED (file name does not match content digest)\n",
                    entry.file_name
                ));
            }
            Err(e) => {
                damaged += 1;
                out.push_str(&format!(
                    "{:<72} CORRUPT ({}): {e}\n",
                    entry.file_name,
                    e.kind()
                ));
            }
        }
    }
    if damaged > 0 {
        return Err(CliError::Failed(
            format!("{out}{damaged} damaged entr(y/ies) in {catalog}").into(),
        ));
    }
    Ok(out)
}

fn store_add(args: &[String]) -> Result<String, CliError> {
    let [catalog, artifact] = args else {
        return Err(CliError::Usage(
            "store add takes a catalog directory and an artifact path".to_string(),
        ));
    };
    let digest = borges_store::catalog_add(Path::new(catalog), Path::new(artifact))
        .map_err(|e| CliError::Failed(format!("{artifact}: {e} ({})", e.kind()).into()))?;
    Ok(format!(
        "{}\n",
        borges_store::catalog_path(Path::new(catalog), &digest).display()
    ))
}

/// `borges timeline <verify|ls|diff>` — chain tooling over a timeline
/// directory. Positional operands, same parsing discipline as `store`.
fn timeline_cmd(args: &[String]) -> Result<String, CliError> {
    let (action, rest) = match args.split_first() {
        Some((a, rest)) => (a.as_str(), rest),
        None => {
            return Err(CliError::Usage(
                "timeline needs an action: verify, ls, or diff".to_string(),
            ))
        }
    };
    match action {
        "verify" => timeline_verify(rest),
        "ls" => timeline_ls(rest),
        "diff" => timeline_diff(rest),
        other => Err(CliError::Usage(format!(
            "unknown timeline action {other:?} (expected verify, ls, or diff)"
        ))),
    }
}

fn timeline_verify(args: &[String]) -> Result<String, CliError> {
    let [dir] = args else {
        return Err(CliError::Usage(
            "timeline verify takes exactly one timeline directory".to_string(),
        ));
    };
    let timeline = open_timeline(dir)?;
    let report = timeline
        .verify()
        .map_err(|e| CliError::Failed(format!("{dir}: {e} ({})", e.kind()).into()))?;
    Ok(format!(
        "{dir}: ok\n  links   {}\n  worlds  {} verified\n  deltas  {} verified\n",
        report.links, report.worlds_ok, report.deltas_ok
    ))
}

fn timeline_ls(args: &[String]) -> Result<String, CliError> {
    let [dir] = args else {
        return Err(CliError::Usage(
            "timeline ls takes exactly one timeline directory".to_string(),
        ));
    };
    let timeline = open_timeline(dir)?;
    if timeline.links().is_empty() {
        return Ok(format!("{dir}: empty timeline\n"));
    }
    let mut out = String::new();
    for link in timeline.links() {
        out.push_str(&format!(
            "epoch {:>5}  world {}  delta {}\n",
            link.epoch,
            link.world_digest,
            link.delta_digest.as_deref().unwrap_or("-")
        ));
    }
    Ok(out)
}

fn timeline_diff(args: &[String]) -> Result<String, CliError> {
    let [dir, raw_t1, raw_t2] = args else {
        return Err(CliError::Usage(
            "timeline diff takes a timeline directory and two epochs".to_string(),
        ));
    };
    let parse = |raw: &String| {
        raw.parse::<u64>().map_err(|_| {
            CliError::Usage(format!(
                "invalid epoch {raw:?} (expected a non-negative integer)"
            ))
        })
    };
    let (t1, t2) = (parse(raw_t1)?, parse(raw_t2)?);
    let timeline = open_timeline(dir)?;
    let diff = timeline.diff(t1, t2).map_err(|e| match e.kind() {
        "invalid_range" | "unknown_epoch" | "empty" => CliError::Usage(format!("{e}")),
        _ => CliError::Failed(format!("{dir}: {e} ({})", e.kind()).into()),
    })?;
    Ok(format!(
        "{}\n",
        borges_timeline::render_diff_json(t1, t2, &diff)
    ))
}

fn load_mapping(path: &str) -> Result<AsOrgMapping, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Failed(Box::new(e)))?;
    mapfile::parse(&text).map_err(CliError::failed)
}

fn eval(opts: &Options) -> Result<String, CliError> {
    opts.allow_only(&["data", "mapping", "v", "q"])?;
    let narrator = borges_telemetry::Narrator::new(verbosity_of(opts));
    let data = opts.required("data")?;
    let mapping_paths = opts.repeated("mapping");
    if mapping_paths.is_empty() {
        return Err(CliError::Usage("need at least one --mapping".to_string()));
    }
    let bundle = DatasetBundle::load(Path::new(data)).map_err(CliError::failed)?;
    let universe = bundle.whois.asn_count().max(
        bundle
            .whois
            .all_asns()
            .chain(bundle.pdb.nets().map(|n| n.asn))
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
    );

    narrator.verbose(format!(
        "scoring {} mapping(s) over a {universe}-network universe",
        mapping_paths.len()
    ));
    let mut out = String::new();
    out.push_str(&format!("universe: {universe} networks\n\n"));
    out.push_str(&format!(
        "{:<28} {:>8} {:>8}{}\n",
        "mapping",
        "orgs",
        "θ",
        if bundle.truth.is_some() {
            "  precision   recall"
        } else {
            ""
        }
    ));
    for path in mapping_paths {
        let mapping = load_mapping(path)?;
        let theta = organization_factor(&mapping, universe.max(mapping.asn_count()));
        out.push_str(&format!(
            "{:<28} {:>8} {:>8.4}",
            path,
            mapping.org_count(),
            theta
        ));
        if bundle.truth.is_some() {
            let (precision, recall) = truth_scores(&bundle, &mapping);
            out.push_str(&format!("  {precision:>9.3} {recall:>8.3}"));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Pairwise precision/recall of a mapping against the bundle's oracle.
fn truth_scores(bundle: &DatasetBundle, mapping: &AsOrgMapping) -> (f64, f64) {
    let truth = bundle.truth.as_ref().expect("caller checked");
    // Recall: true sibling pairs recovered.
    let mut by_org: std::collections::BTreeMap<usize, Vec<Asn>> = Default::default();
    for (asn, (org, _)) in truth {
        by_org.entry(*org).or_default().push(*asn);
    }
    let mut true_pairs = 0usize;
    let mut recovered = 0usize;
    for members in by_org.values() {
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                true_pairs += 1;
                if mapping.same_org(members[i], members[j]) {
                    recovered += 1;
                }
            }
        }
    }
    // Precision: merged pairs that are truly siblings.
    let mut merged = 0usize;
    let mut correct = 0usize;
    for (_, members) in mapping.clusters() {
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                merged += 1;
                if bundle.are_siblings(members[i], members[j]) == Some(true) {
                    correct += 1;
                }
            }
        }
    }
    (
        if merged == 0 {
            1.0
        } else {
            correct as f64 / merged as f64
        },
        if true_pairs == 0 {
            1.0
        } else {
            recovered as f64 / true_pairs as f64
        },
    )
}

fn inspect(opts: &Options) -> Result<String, CliError> {
    opts.allow_only(&["data", "mapping", "asn", "v", "q"])?;
    let data = opts.required("data")?;
    // Validate the ASN before touching any file: a typo'd --asn should
    // fail fast with a usage error, not after a mapping load.
    let raw_asn = opts.required("asn")?;
    let asn: Asn = raw_asn.parse().map_err(|_| {
        CliError::Usage(format!(
            "--asn {raw_asn:?} is not an ASN (expected AS<digits> or <digits>)"
        ))
    })?;
    let mapping = load_mapping(opts.required("mapping")?)?;

    let bundle = DatasetBundle::load(Path::new(data)).map_err(CliError::failed)?;
    let namer = OrgNamer::new(&bundle.pdb, &bundle.whois);

    let siblings = mapping.siblings_of(asn);
    if siblings.is_empty() {
        return Ok(format!("{asn} is not in this mapping\n"));
    }
    let mut out = format!(
        "{asn} — inferred organization with {} networks:\n",
        siblings.len()
    );
    for &member in siblings {
        out.push_str(&format!(
            "  {:<12} {}",
            member.to_string(),
            namer.name_of(member)
        ));
        if let Some(truth) = &bundle.truth {
            if let Some((_, name)) = truth.get(&member) {
                out.push_str(&format!("   [truth: {name}]"));
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn diff_cmd(opts: &Options) -> Result<String, CliError> {
    opts.allow_only(&["before", "after", "v", "q"])?;
    let before = load_mapping(opts.required("before")?)?;
    let after = load_mapping(opts.required("after")?)?;
    let d = diff(&before, &after);
    let mut out = String::new();
    out.push_str(&format!(
        "before: {} orgs / {} ASNs   after: {} orgs / {} ASNs\n",
        before.org_count(),
        before.asn_count(),
        after.org_count(),
        after.asn_count()
    ));
    out.push_str(&format!(
        "merges: {}   splits: {}   appeared ASNs: {}   disappeared ASNs: {}   unchanged orgs: {}\n",
        d.merges.len(),
        d.splits.len(),
        d.appeared.len(),
        d.disappeared.len(),
        d.unchanged_clusters
    ));
    let mut merges = d.merges.clone();
    merges.sort_by_key(|m| std::cmp::Reverse(m.fragments.iter().map(Vec::len).sum::<usize>()));
    for merge in merges.iter().take(10) {
        let total: usize = merge.fragments.iter().map(Vec::len).sum();
        let anchors: Vec<String> = merge.fragments.iter().map(|f| f[0].to_string()).collect();
        out.push_str(&format!(
            "  merge of {} fragments ({} ASNs): {}\n",
            merge.fragments.len(),
            total,
            anchors.join(" + ")
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("borges-cli-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn help_is_shown_without_arguments() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(run(&args(&["help"])).unwrap().contains("generate"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn feature_spec_parsing() {
        assert_eq!(parse_features("all").unwrap(), FeatureSet::ALL);
        assert_eq!(parse_features("none").unwrap(), FeatureSet::NONE);
        let f = parse_features("oid_p,rr").unwrap();
        assert!(f.oid_p && f.rr && !f.na && !f.favicons);
        assert!(parse_features("bogus").is_err());
    }

    #[test]
    fn full_workflow_generate_map_eval_inspect_diff() {
        let dir = tmpdir("workflow");
        let data = dir.join("world");
        let out = run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("generated"));

        let as2org_map = dir.join("as2org.map");
        let borges_map = dir.join("borges.map");
        let out = run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--features",
            "none",
            "--out",
            as2org_map.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("organizations"));
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--features",
            "all",
            "--out",
            borges_map.to_str().unwrap(),
        ]))
        .unwrap();

        let out = run(&args(&[
            "eval",
            "--data",
            data.to_str().unwrap(),
            "--mapping",
            as2org_map.to_str().unwrap(),
            "--mapping",
            borges_map.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("precision"), "oracle present → scored: {out}");

        let out = run(&args(&[
            "inspect",
            "--data",
            data.to_str().unwrap(),
            "--mapping",
            borges_map.to_str().unwrap(),
            "--asn",
            "3356",
        ]))
        .unwrap();
        assert!(out.contains("AS209"), "Lumen family visible: {out}");

        let out = run(&args(&[
            "diff",
            "--before",
            as2org_map.to_str().unwrap(),
            "--after",
            borges_map.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("merges:"));
        // Borges only merges relative to AS2Org — never splits.
        assert!(out.contains("splits: 0"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_without_oracle_omits_scores() {
        let dir = tmpdir("no-oracle");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--no-truth",
        ]))
        .unwrap();
        let map_path = dir.join("m.map");
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            map_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&args(&[
            "eval",
            "--data",
            data.to_str().unwrap(),
            "--mapping",
            map_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(!out.contains("precision"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn typo_flags_are_caught() {
        let err = run(&args(&["generate", "--outt", "x"])).unwrap_err();
        assert!(err.to_string().contains("--outt"));
    }

    #[test]
    fn chaos_map_with_recoverable_faults_matches_the_bare_map() {
        let dir = tmpdir("chaos-recoverable");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
        ]))
        .unwrap();

        let bare_map = dir.join("bare.map");
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            bare_map.to_str().unwrap(),
        ]))
        .unwrap();

        let chaos_map = dir.join("chaos.map");
        let out = run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            chaos_map.to_str().unwrap(),
            "--fault-rate",
            "0.15",
            "--chaos-seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("coverage:"), "{out}");
        assert!(out.contains("abandoned      0"), "{out}");

        // The keystone, end to end through the CLI: recoverable chaos
        // writes a byte-identical mapping file.
        assert_eq!(
            std::fs::read(&bare_map).unwrap(),
            std::fs::read(&chaos_map).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_map_without_retries_reports_losses() {
        let dir = tmpdir("chaos-degraded");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
        ]))
        .unwrap();
        let map_path = dir.join("degraded.map");
        let out = run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            map_path.to_str().unwrap(),
            "--fault-rate",
            "0.5",
            "--retries",
            "0",
        ]))
        .unwrap();
        // The run completed, wrote a mapping, and owned up to its losses.
        assert!(map_path.exists());
        assert!(out.contains("coverage:"), "{out}");
        let crawl_line = out.lines().find(|l| l.contains("crawl")).unwrap();
        assert!(
            !crawl_line.trim_end().ends_with(" 0"),
            "losses expected: {out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn map_writes_trace_metrics_and_ledger() {
        let dir = tmpdir("observability");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
            "-q",
        ]))
        .unwrap();

        let run_map = |threads: &str, stem: &str| {
            let map_path = dir.join(format!("{stem}.map"));
            let trace = dir.join(format!("{stem}.trace.jsonl"));
            let metrics = dir.join(format!("{stem}.prom"));
            let report = dir.join(format!("{stem}.report.json"));
            run(&args(&[
                "map",
                "--data",
                data.to_str().unwrap(),
                "--out",
                map_path.to_str().unwrap(),
                "--threads",
                threads,
                "--trace-out",
                trace.to_str().unwrap(),
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--report-out",
                report.to_str().unwrap(),
                "-q",
            ]))
            .unwrap();
            (
                std::fs::read_to_string(trace).unwrap(),
                std::fs::read_to_string(metrics).unwrap(),
                std::fs::read_to_string(report).unwrap(),
            )
        };

        let (trace1, metrics1, report1) = run_map("1", "seq");
        let (trace4, metrics4, report4) = run_map("4", "par");

        // The canonical journal and the metrics exposition are
        // byte-identical across thread counts — the determinism keystone,
        // end to end through the CLI.
        assert_eq!(trace1, trace4);
        assert_eq!(metrics1, metrics4);
        assert!(trace1.contains("run/crawl"), "{trace1}");
        assert!(
            metrics1.contains("# TYPE borges_crawl_unique_urls_total counter"),
            "{metrics1}"
        );

        // The ledger parses, balances, and carries both cache rows.
        let report = borges_telemetry::RunReport::from_json(&report1).unwrap();
        assert!(report.accounted());
        assert_eq!(report.pipeline, "sequential");
        let names: Vec<&str> = report.caches.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["web.redirect", "llm.response"]);
        assert!(report.caches[0].misses > 0, "crawl populated the cache");
        let par = borges_telemetry::RunReport::from_json(&report4).unwrap();
        assert_eq!(par.pipeline, "parallel");
        assert_eq!(par.threads, 4);
        // Funnels agree across schedules even though the reports differ
        // in labels/worker rows.
        assert_eq!(par.crawl, report.crawl);
        assert_eq!(par.ner, report.ner);
        assert_eq!(par.metrics, report.metrics);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_flag_validation_fails_before_any_io() {
        // Data paths are deliberately nonexistent: a Usage error proves
        // the flags were rejected before the command opened anything.
        for cmd in [
            vec![
                "map",
                "--data",
                "/no/such",
                "--out",
                "y",
                "--streaming",
                "--max-in-flight",
                "0",
            ],
            vec![
                "map",
                "--data",
                "/no/such",
                "--out",
                "y",
                "--streaming",
                "--max-in-flight",
                "nope",
            ],
            vec![
                "map",
                "--data",
                "/no/such",
                "--out",
                "y",
                "--streaming",
                "--per-host-rps",
                "0",
            ],
            vec![
                "map",
                "--data",
                "/no/such",
                "--out",
                "y",
                "--streaming",
                "--per-host-rps",
                "-2.5",
            ],
            vec![
                "map",
                "--data",
                "/no/such",
                "--out",
                "y",
                "--streaming",
                "--per-host-rps",
                "NaN",
            ],
            vec![
                "map",
                "--data",
                "/no/such",
                "--out",
                "y",
                "--streaming",
                "--per-host-rps",
                "fast",
            ],
            // The streaming knobs without --streaming are incompatible:
            // the invocation would otherwise silently run staged.
            vec![
                "map",
                "--data",
                "/no/such",
                "--out",
                "y",
                "--max-in-flight",
                "4",
            ],
            vec![
                "map",
                "--data",
                "/no/such",
                "--out",
                "y",
                "--per-host-rps",
                "2.5",
            ],
            // And --streaming is a map-only flag.
            vec![
                "remap",
                "--data",
                "/no/such",
                "--base-state",
                "s",
                "--out",
                "y",
                "--streaming",
            ],
        ] {
            let err = run(&args(&cmd)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{cmd:?} → {err}");
        }
    }

    #[test]
    fn streaming_map_is_byte_identical_and_ledgers_its_scheduler() {
        let dir = tmpdir("streaming");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
            "-q",
        ]))
        .unwrap();

        let staged_map = dir.join("staged.map");
        let staged_trace = dir.join("staged.trace.jsonl");
        let staged_metrics = dir.join("staged.prom");
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            staged_map.to_str().unwrap(),
            "--threads",
            "2",
            "--trace-out",
            staged_trace.to_str().unwrap(),
            "--metrics-out",
            staged_metrics.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();

        let streamed_map = dir.join("streamed.map");
        let streamed_trace = dir.join("streamed.trace.jsonl");
        let streamed_metrics = dir.join("streamed.prom");
        let report = dir.join("streamed.report.json");
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            streamed_map.to_str().unwrap(),
            "--threads",
            "2",
            "--streaming",
            "--max-in-flight",
            "3",
            "--per-host-rps",
            "0.5",
            "--trace-out",
            streamed_trace.to_str().unwrap(),
            "--metrics-out",
            streamed_metrics.to_str().unwrap(),
            "--report-out",
            report.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();

        // The scheduler is invisible in every canonical artifact.
        let read = |p: &std::path::Path| std::fs::read_to_string(p).unwrap();
        assert_eq!(read(&staged_map), read(&streamed_map));
        assert_eq!(read(&staged_trace), read(&streamed_trace));
        assert_eq!(read(&staged_metrics), read(&streamed_metrics));

        // ...and visible exactly where it belongs: the worker ledger.
        let report = borges_telemetry::RunReport::from_json(&read(&report)).unwrap();
        assert_eq!(report.pipeline, "streaming");
        assert!(report.accounted());
        let stages: Vec<&str> = report.workers.iter().map(|w| w.stage.as_str()).collect();
        for stage in borges_telemetry::ingest::ALL_STAGES {
            assert!(stages.contains(&stage), "missing {stage} in {stages:?}");
        }
        let throttle = report
            .workers
            .iter()
            .find(|w| w.stage == borges_telemetry::ingest::THROTTLE_STAGE)
            .unwrap();
        assert!(throttle.items > 0, "0.5 rps must have throttled");

        // Chaos composes: a streaming chaotic run still recovers fully
        // and matches the staged mapping.
        let chaos_map = dir.join("chaos.map");
        let out = run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            chaos_map.to_str().unwrap(),
            "--streaming",
            "--fault-rate",
            "0.15",
            "-q",
        ]))
        .unwrap();
        assert!(out.contains("coverage:"), "{out}");
        assert_eq!(read(&staged_map), read(&chaos_map));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remap_round_trip_is_byte_identical_and_chains() {
        let dir = tmpdir("remap");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
            "-q",
        ]))
        .unwrap();

        let full_map = dir.join("full.map");
        let state0 = dir.join("state0");
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            full_map.to_str().unwrap(),
            "--state-out",
            state0.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();
        assert!(state0.join("state.json").exists());

        let remap_map = dir.join("remap.map");
        let state1 = dir.join("state1");
        let report = dir.join("remap.report.json");
        let out = run(&args(&[
            "remap",
            "--data",
            data.to_str().unwrap(),
            "--base-state",
            state0.to_str().unwrap(),
            "--out",
            remap_map.to_str().unwrap(),
            "--out-state",
            state1.to_str().unwrap(),
            "--report-out",
            report.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();
        // The CLI-level keystone: incremental output is byte-identical
        // to the full map of the same bundle.
        assert_eq!(
            std::fs::read(&full_map).unwrap(),
            std::fs::read(&remap_map).unwrap()
        );
        assert!(out.contains("delta: 0 dirty records"), "{out}");
        assert!(out.contains("LLM calls saved"), "{out}");

        // The emitted ledger parses, balances, and carries delta rows.
        let ledger =
            borges_telemetry::RunReport::from_json(&std::fs::read_to_string(&report).unwrap())
                .unwrap();
        assert!(ledger.accounted());
        assert!(ledger.delta.incremental);
        assert!(ledger.delta.consistent());
        assert_eq!(ledger.delta.records.len(), 5);
        assert_eq!(ledger.delta.edges.len(), 5);
        assert!(ledger.delta.llm_calls_saved > 0);

        // Remaps chain: the updated state drives a second remap to the
        // same bytes.
        let remap2 = dir.join("remap2.map");
        run(&args(&[
            "remap",
            "--data",
            data.to_str().unwrap(),
            "--base-state",
            state1.to_str().unwrap(),
            "--out",
            remap2.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&full_map).unwrap(),
            std::fs::read(&remap2).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remap_rejects_a_missing_or_corrupt_state() {
        let dir = tmpdir("remap-bad-state");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run(&args(&[
            "remap",
            "--data",
            "x",
            "--base-state",
            dir.to_str().unwrap(),
            "--out",
            "y",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("state.json"), "{err}");

        std::fs::write(dir.join("state.json"), "{not json").unwrap();
        let err = run(&args(&[
            "remap",
            "--data",
            "x",
            "--base-state",
            dir.to_str().unwrap(),
            "--out",
            "y",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verbosity_flags_are_accepted_everywhere() {
        let dir = tmpdir("verbosity");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "-v",
        ]))
        .unwrap();
        let map_path = dir.join("m.map");
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            map_path.to_str().unwrap(),
            "-vv",
        ]))
        .unwrap();
        let out = run(&args(&[
            "eval",
            "--data",
            data.to_str().unwrap(),
            "--mapping",
            map_path.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();
        assert!(out.contains("universe"), "stdout report survives -q");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_threads_is_a_usage_error_everywhere() {
        for cmd in [
            vec!["map", "--data", "x", "--out", "y", "--threads", "0"],
            vec![
                "remap",
                "--data",
                "x",
                "--base-state",
                "s",
                "--out",
                "y",
                "--threads",
                "0",
            ],
            vec!["serve", "--data", "x", "--threads", "0"],
        ] {
            let err = run(&args(&cmd)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{cmd:?} → {err}");
            assert!(err.to_string().contains("--threads 0"), "{err}");
        }
    }

    #[test]
    fn unknown_feature_labels_are_usage_errors() {
        for cmd in [
            vec!["map", "--data", "x", "--out", "y", "--features", "bogus"],
            vec![
                "remap",
                "--data",
                "x",
                "--base-state",
                "s",
                "--out",
                "y",
                "--features",
                "oid_p,wrong",
            ],
        ] {
            let err = run(&args(&cmd)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{cmd:?} → {err}");
            assert!(err.to_string().contains("unknown feature"), "{err}");
        }
    }

    #[test]
    fn unparseable_asns_are_usage_errors_before_any_io() {
        // Paths are deliberately nonexistent: the ASN must be rejected
        // before the command tries to open anything.
        let err = run(&args(&[
            "inspect",
            "--data",
            "/no/such/data",
            "--mapping",
            "/no/such/mapping",
            "--asn",
            "ASxyz",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("ASxyz"), "{err}");
    }

    #[test]
    fn serve_flag_validation() {
        for cmd in [
            vec!["serve", "--data", "x", "--queue-depth", "0"],
            vec!["serve", "--data", "x", "--queue-depth", "nope"],
            vec!["serve", "--data", "x", "--lru", "-3"],
            vec!["serve", "--data", "x", "--slow-ms", "nope"],
            vec!["serve", "--data", "x", "--slow-ms", "-5"],
        ] {
            let err = run(&args(&cmd)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{cmd:?} → {err}");
        }
    }

    #[test]
    fn serve_round_trip_serves_reloads_and_shuts_down() {
        let dir = tmpdir("serve");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
            "-q",
        ]))
        .unwrap();

        let addr_file = dir.join("addr");
        let access_log = dir.join("access.jsonl");
        let data_arg = data.to_str().unwrap().to_string();
        let addr_file_arg = addr_file.to_str().unwrap().to_string();
        let access_log_arg = access_log.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run(&args(&[
                "serve",
                "--data",
                &data_arg,
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--addr-file",
                &addr_file_arg,
                "--access-log",
                &access_log_arg,
                "--slow-ms",
                "60000",
                "-q",
            ]))
        });

        // The addr file appears once the listener is bound; the
        // trailing newline marks a complete write.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        let addr: std::net::SocketAddr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if text.ends_with('\n') {
                    break text.trim().parse().unwrap();
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never wrote its address"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let client = borges_serve::ServeClient::new(addr);
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body_text().contains("\"epoch\":0"), "{health:?}");

        let map = client.get("/v1/map/AS3356?features=all").unwrap();
        assert_eq!(map.status, 200);
        assert!(map.body_text().contains("\"asn\":\"AS3356\""), "{map:?}");

        // Reload against the unchanged bundle: the remap contract makes
        // the swapped world identical, but the epoch must advance.
        let reload = client.post("/v1/admin/reload", b"").unwrap();
        assert_eq!(reload.status, 200);
        assert!(reload.body_text().contains("\"epoch\":1"), "{reload:?}");
        let health = client.get("/healthz").unwrap();
        assert!(health.body_text().contains("\"epoch\":1"), "{health:?}");

        // The flight recorder saw the traffic, and the event journal
        // carries the boot install plus the reload.
        let debug = client.get("/v1/admin/debug/requests").unwrap();
        assert_eq!(debug.status, 200);
        assert!(
            debug.body_text().contains("\"path\":\"/healthz\""),
            "{debug:?}"
        );
        let events = client.get("/v1/admin/debug/events").unwrap();
        assert!(events.body_text().contains("\"kind\":\"world_installed\""));
        assert!(events.body_text().contains("\"kind\":\"reload\""));

        // The access log only lands (staging → rename) at shutdown.
        assert!(!access_log.exists(), "access log landed before shutdown");

        let bye = client.post("/v1/admin/shutdown", b"").unwrap();
        assert_eq!(bye.status, 200);
        assert!(bye.headers.contains_key("x-borges-request-id"), "{bye:?}");
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("shut down cleanly"), "{out}");
        assert!(out.contains("access log:"), "{out}");

        // Every request left one JSONL record: parseable, unique ids,
        // each carrying the digest of the world that answered it.
        let log_text = std::fs::read_to_string(&access_log).unwrap();
        let records: Vec<borges_telemetry::AccessRecord> = log_text
            .lines()
            .map(|line| serde_json::from_str(line).expect("access record parses"))
            .collect();
        assert!(
            records.len() >= 7,
            "expected a record per request: {log_text}"
        );
        let mut ids: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
        ids.sort_unstable();
        let unique = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), unique, "request ids must be unique: {log_text}");
        for record in &records {
            assert_eq!(record.world.len(), 64, "world digest missing: {record:?}");
        }
        assert!(records.iter().any(|r| r.path == "/healthz"));
        assert!(records
            .iter()
            .any(|r| r.path == "/v1/map/AS3356?features=all"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Spawns `borges serve` on an ephemeral port in a thread and
    /// waits for the addr file; returns the join handle and the
    /// bound address.
    fn spawn_serve(
        mut argv: Vec<String>,
        addr_file: &std::path::Path,
    ) -> (
        std::thread::JoinHandle<Result<String, CliError>>,
        std::net::SocketAddr,
    ) {
        argv.extend(
            [
                "--addr",
                "127.0.0.1:0",
                "--addr-file",
                addr_file.to_str().unwrap(),
                "-q",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        let handle = std::thread::spawn(move || run(&argv));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(addr_file) {
                if text.ends_with('\n') {
                    break text.trim().parse().unwrap();
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never wrote its address"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        (handle, addr)
    }

    #[test]
    fn store_subcommand_verifies_catalogs_and_flags_damage() {
        let dir = tmpdir("store-cmd");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
            "-q",
        ]))
        .unwrap();
        let artifact = dir.join("world.store");
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            dir.join("m.map").to_str().unwrap(),
            "--store-out",
            artifact.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();

        let out = run(&args(&["store", "verify", artifact.to_str().unwrap()])).unwrap();
        assert!(out.contains("ok"), "{out}");
        assert!(out.contains("digest"), "{out}");
        assert!(out.contains("section meta"), "{out}");

        let catalog = dir.join("catalog");
        let out = run(&args(&[
            "store",
            "add",
            catalog.to_str().unwrap(),
            artifact.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.trim_end().ends_with(".world"), "{out}");
        let out = run(&args(&["store", "ls", catalog.to_str().unwrap()])).unwrap();
        assert!(out.contains(" ok "), "{out}");

        // Damage the standalone artifact: verify must fail with the
        // corruption class in the message, not succeed or panic.
        let mut bytes = std::fs::read(&artifact).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&artifact, &bytes).unwrap();
        let err = run(&args(&["store", "verify", artifact.to_str().unwrap()])).unwrap_err();
        assert!(
            matches!(err, CliError::Failed(_)),
            "corruption is a failure, not a usage error: {err}"
        );
        assert!(err.to_string().contains("CORRUPT"), "{err}");

        // A renamed catalog entry is misaddressed even though its
        // bytes are intact.
        let entry = std::fs::read_dir(&catalog)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let rogue = catalog.join(format!("{}.world", "0".repeat(64)));
        std::fs::rename(&entry, &rogue).unwrap();
        let err = run(&args(&["store", "ls", catalog.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("MISADDRESSED"), "{err}");

        // Usage errors for malformed invocations.
        for bad in [
            vec!["store"],
            vec!["store", "frobnicate"],
            vec!["store", "verify"],
            vec!["store", "ls"],
            vec!["store", "add", "just-one"],
        ] {
            let err = run(&args(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} → {err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeline_subcommand_chains_epochs_and_detects_tampering() {
        let dir = tmpdir("timeline-cmd");
        let data = dir.join("world");
        let evolved = dir.join("world-evolved");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
            "-q",
        ]))
        .unwrap();
        // The same seed plus a scripted acquisition: a before/after
        // snapshot pair whose only difference is the corporate event.
        run(&args(&[
            "generate",
            "--out",
            evolved.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
            "--evolve",
            "acquisition:cogent:orange",
            "-q",
        ]))
        .unwrap();

        let timeline = dir.join("tl");
        let state = dir.join("state");
        let out = run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            dir.join("m0.map").to_str().unwrap(),
            "--state-out",
            state.to_str().unwrap(),
            "--timeline",
            timeline.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();
        assert!(out.contains("timeline: epoch 0 appended"), "{out}");
        let out = run(&args(&[
            "remap",
            "--data",
            evolved.to_str().unwrap(),
            "--base-state",
            state.to_str().unwrap(),
            "--out",
            dir.join("m1.map").to_str().unwrap(),
            "--timeline",
            timeline.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();
        assert!(out.contains("timeline: epoch 1 appended"), "{out}");

        let tl = timeline.to_str().unwrap();
        let out = run(&args(&["timeline", "verify", tl])).unwrap();
        assert!(out.contains(": ok"), "{out}");
        assert!(out.contains("links   2"), "{out}");
        assert!(out.contains("worlds  2 verified"), "{out}");
        assert!(out.contains("deltas  1 verified"), "{out}");

        let out = run(&args(&["timeline", "ls", tl])).unwrap();
        assert_eq!(out.lines().count(), 2, "{out}");
        assert!(out.contains("epoch     0"), "{out}");
        assert!(out.contains("epoch     1"), "{out}");
        // The genesis link has no delta; the second does.
        let first = out.lines().next().unwrap();
        assert!(first.ends_with("delta -"), "{first}");

        // The scripted acquisition merges cogent (AS174) and orange
        // (AS3215) — the composed diff must say so.
        let out = run(&args(&["timeline", "diff", tl, "0", "1"])).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).expect("diff renders JSON");
        assert_eq!(parsed["t1"], serde_json::json!(0), "{out}");
        assert_eq!(parsed["empty"], serde_json::json!(false), "{out}");
        let merges = parsed["merges"].as_array().unwrap();
        assert!(
            merges.iter().any(|m| {
                let frags: Vec<Vec<&str>> = m["fragments"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|g| {
                        g.as_array()
                            .unwrap()
                            .iter()
                            .map(|v| v.as_str().unwrap())
                            .collect()
                    })
                    .collect();
                frags.iter().any(|g| g.contains(&"AS174"))
                    && frags.iter().any(|g| g.contains(&"AS3215"))
            }),
            "{out}"
        );

        // Backwards range is a usage error, not a crash.
        let err = run(&args(&["timeline", "diff", tl, "1", "0"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");

        // Flip one byte in a chained world: verify must fail loudly
        // with the corruption class, and non-zero (Failed, not Usage).
        let world_file = std::fs::read_dir(timeline.join("worlds"))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&world_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&world_file, &bytes).unwrap();
        let err = run(&args(&["timeline", "verify", tl])).unwrap_err();
        assert!(matches!(err, CliError::Failed(_)), "{err}");
        assert!(err.to_string().contains("CORRUPT"), "{err}");

        // Usage errors for malformed invocations.
        for bad in [
            vec!["timeline"],
            vec!["timeline", "frobnicate"],
            vec!["timeline", "verify"],
            vec!["timeline", "ls"],
            vec!["timeline", "diff", "just-one"],
            vec!["timeline", "diff", tl, "zero", "1"],
        ] {
            let err = run(&args(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} → {err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_store_cold_start_skips_compile_and_degrades_on_damage() {
        let dir = tmpdir("serve-store");
        let data = dir.join("world");
        run(&args(&[
            "generate",
            "--out",
            data.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "5",
            "-q",
        ]))
        .unwrap();
        let artifact = dir.join("world.store");
        run(&args(&[
            "map",
            "--data",
            data.to_str().unwrap(),
            "--out",
            dir.join("m.map").to_str().unwrap(),
            "--store-out",
            artifact.to_str().unwrap(),
            "-q",
        ]))
        .unwrap();
        let serve_argv = |extra: &[&str]| {
            let mut argv = args(&["serve", "--data", data.to_str().unwrap(), "--threads", "2"]);
            argv.extend(extra.iter().map(|s| s.to_string()));
            argv
        };

        // Happy path: cold start from the artifact, no recompilation —
        // pinned by the metrics endpoint and the final ledger line.
        let addr_file = dir.join("addr1");
        let (handle, addr) = spawn_serve(
            serve_argv(&["--store", artifact.to_str().unwrap()]),
            &addr_file,
        );
        let client = borges_serve::ServeClient::new(addr);
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(
            health.body_text().contains("\"world_digest\":\""),
            "{health:?}"
        );
        let metrics_resp = client.get("/metrics").unwrap();
        let metrics = metrics_resp.body_text();
        assert!(
            metrics.contains("borges_store_load_ok_total 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("borges_store_recompile_total 0"),
            "{metrics}"
        );
        assert!(
            metrics.contains("borges_serve_world_digest{digest=\""),
            "{metrics}"
        );
        let clean_map = client.get("/v1/map/AS3356?features=all").unwrap();
        assert_eq!(clean_map.status, 200);
        client.post("/v1/admin/shutdown", b"").unwrap();
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("store: cold start"), "{out}");
        assert!(!out.contains("store_degraded"), "{out}");

        // Reload by store artifact hot-swaps; a bogus path fails
        // loudly and the old world keeps serving.
        let addr_file = dir.join("addr2");
        let (handle, addr) = spawn_serve(
            serve_argv(&["--store", artifact.to_str().unwrap()]),
            &addr_file,
        );
        let client = borges_serve::ServeClient::new(addr);
        let body = format!("{{\"store\": {:?}}}", artifact.to_str().unwrap());
        let reload = client.post("/v1/admin/reload", body.as_bytes()).unwrap();
        assert_eq!(reload.status, 200, "{reload:?}");
        let bad = client
            .post("/v1/admin/reload", b"{\"store\": \"/no/such/artifact\"}")
            .unwrap();
        assert_eq!(bad.status, 500, "{bad:?}");
        assert!(bad.body_text().contains("missing"), "{bad:?}");
        let still = client.get("/v1/map/AS3356?features=all").unwrap();
        assert_eq!(still.status, 200);
        client.post("/v1/admin/shutdown", b"").unwrap();
        handle.join().unwrap().unwrap();

        // Damaged artifact: serve must fall back to the bundle compile,
        // say so on the ledger, and serve byte-identical responses.
        let mut bytes = std::fs::read(&artifact).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&artifact, &bytes).unwrap();
        let addr_file = dir.join("addr3");
        let (handle, addr) = spawn_serve(
            serve_argv(&["--store", artifact.to_str().unwrap()]),
            &addr_file,
        );
        let client = borges_serve::ServeClient::new(addr);
        let degraded_map = client.get("/v1/map/AS3356?features=all").unwrap();
        assert_eq!(
            degraded_map.canonical_raw(),
            clean_map.canonical_raw(),
            "fallback world must serve byte-identical responses"
        );
        let metrics_resp = client.get("/metrics").unwrap();
        let metrics = metrics_resp.body_text();
        assert!(
            metrics.contains("borges_store_degraded_total 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("borges_store_recompile_total 1"),
            "{metrics}"
        );
        client.post("/v1/admin/shutdown", b"").unwrap();
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("store_degraded"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_flag_validation() {
        for bad in [
            vec!["map", "--data", "x", "--out", "y", "--fault-rate", "1.5"],
            vec!["map", "--data", "x", "--out", "y", "--fault-rate", "nope"],
            vec!["map", "--data", "x", "--out", "y", "--retries", "-1"],
            vec!["map", "--data", "x", "--out", "y", "--chaos-seed", "zz"],
        ] {
            let err = run(&args(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?}");
        }
    }
}
