//! # borges-cli
//!
//! The `borges` command-line tool — the workflow a downstream user runs:
//!
//! ```text
//! borges generate --out world/ --scale medium --seed 7   # a dataset bundle
//! borges map --data world/ --out borges.map              # run the pipeline
//! borges map --data world/ --features none --out as2org.map
//! borges eval --data world/ --mapping as2org.map --mapping borges.map
//! borges inspect --data world/ --mapping borges.map --asn 3356
//! borges diff --before as2org.map --after borges.map
//! borges serve --data world/ --addr 127.0.0.1:8080        # HTTP mapping API
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy);
//! every command is a pure function from parsed arguments to an output
//! string, so the test suite drives the CLI without spawning processes.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod commands;
mod opts;

pub use commands::run;
pub use opts::{CliError, Options};
