//! # borges-eval
//!
//! The experiment harness: regenerates every table and figure of the
//! Borges paper's evaluation (§5–§6) against the synthetic Internet.
//!
//! One binary per table/figure lives in `src/bin/` (`table3_features`,
//! `table4_ie_accuracy`, …, `run_all`); each is a thin wrapper over the
//! functions in [`experiments`], which share one [`runner::ExperimentContext`]
//! (generated world + pipeline run + baselines).
//!
//! Scale is controlled by environment variables: `BORGES_SCALE`
//! (`tiny`/`medium`/`paper`, default `paper`) and `BORGES_SEED`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;
pub mod runner;

pub use runner::{ExperimentContext, DEFAULT_SEED};
