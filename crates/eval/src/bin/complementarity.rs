//! §5.2 complementarity analysis: each feature's unique contribution of
//! sibling pairs. Scale via BORGES_SCALE/BORGES_SEED.
fn main() {
    let ctx = borges_eval::ExperimentContext::from_env();
    println!(
        "{}",
        borges_eval::experiments::feature_complementarity(&ctx)
    );
}
