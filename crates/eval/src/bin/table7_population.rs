//! Regenerates the paper's table7 output. Scale via BORGES_SCALE/BORGES_SEED.
fn main() {
    let ctx = borges_eval::ExperimentContext::from_env();
    println!("{}", borges_eval::experiments::table7(&ctx));
}
