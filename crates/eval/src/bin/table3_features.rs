//! Regenerates the paper's table3 output. Scale via BORGES_SCALE/BORGES_SEED.
fn main() {
    let ctx = borges_eval::ExperimentContext::from_env();
    println!("{}", borges_eval::experiments::table3(&ctx));
}
