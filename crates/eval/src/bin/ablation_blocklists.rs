//! DESIGN.md ablation: the Appendix D blocklists' effect on θ and merge
//! precision. Scale via BORGES_SCALE/BORGES_SEED.
fn main() {
    let ctx = borges_eval::ExperimentContext::from_env();
    println!("{}", borges_eval::experiments::ablation_blocklists(&ctx));
}
