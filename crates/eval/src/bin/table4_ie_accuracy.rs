//! Regenerates the paper's table4 output. Scale via BORGES_SCALE/BORGES_SEED.
fn main() {
    let ctx = borges_eval::ExperimentContext::from_env();
    println!("{}", borges_eval::experiments::table4(&ctx).1);
}
