//! Regenerates the paper's table5 output. Scale via BORGES_SCALE/BORGES_SEED.
fn main() {
    let ctx = borges_eval::ExperimentContext::from_env();
    println!("{}", borges_eval::experiments::table5(&ctx).1);
}
