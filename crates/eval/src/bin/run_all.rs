//! Regenerates every table and figure in one pass.
//!
//! Usage: `run_all [output-file]` — prints to stdout and, when a path is
//! given, also writes the full report there (used to refresh
//! EXPERIMENTS.md's measured sections).
fn main() {
    let ctx = borges_eval::ExperimentContext::from_env();
    let report = borges_eval::experiments::run_all(&ctx);
    println!("{report}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &report).expect("write report file");
        eprintln!("report written to {path}");
    }
}
