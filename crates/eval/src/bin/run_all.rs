//! Regenerates every table and figure in one pass.
//!
//! Usage: `run_all [-q | -v] [output-file]` — prints to stdout and, when
//! a path is given, also writes the full report there (used to refresh
//! EXPERIMENTS.md's measured sections). Narration goes through the
//! shared verbosity layer: `-q` leaves only the report on stdout, `-v`
//! adds progress lines on stderr.

use borges_telemetry::{Narrator, Verbosity};

fn main() {
    let mut quiet = false;
    let mut verbose = 0usize;
    let mut out_path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-q" => quiet = true,
            v if !v.is_empty() && v.starts_with('-') && v[1..].chars().all(|c| c == 'v') => {
                verbose += v.len() - 1
            }
            _ => out_path = Some(arg),
        }
    }
    let narrator = Narrator::new(Verbosity::from_flags(quiet, verbose));
    let ctx = borges_eval::ExperimentContext::from_env();
    narrator.verbose("regenerating every table and figure");
    let report = borges_eval::experiments::run_all(&ctx);
    println!("{report}");
    if let Some(path) = out_path {
        std::fs::write(&path, &report).expect("write report file");
        narrator.info(format!("report written to {path}"));
    }
}
