//! Regenerates the paper's figure9 output. Scale via BORGES_SCALE/BORGES_SEED.
fn main() {
    let ctx = borges_eval::ExperimentContext::from_env();
    println!("{}", borges_eval::experiments::figure9(&ctx));
}
