//! Experiment context: one generated world + one pipeline run, shared by
//! every table/figure binary.

use borges_baselines::{as2org, as2orgplus, As2orgPlusConfig};
use borges_core::impact::{AsnPopulation, OrgNamer};
use borges_core::pipeline::Borges;
use borges_core::AsOrgMapping;
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_types::Asn;
use borges_websim::SimWebClient;
use std::collections::BTreeMap;

/// The workspace-wide default seed (the snapshot date the paper uses,
/// July 24 2024, read as an integer).
pub const DEFAULT_SEED: u64 = 20240724;

/// A fully computed experiment context: the synthetic world, the Borges
/// pipeline run over it, and the two baselines.
pub struct ExperimentContext {
    /// The generated world (with its ground truth).
    pub world: SyntheticInternet,
    /// The computed pipeline (all feature evidence cached).
    pub borges: Borges,
    /// CAIDA AS2Org baseline mapping.
    pub as2org: AsOrgMapping,
    /// as2org+ baseline mapping (automated configuration, §5.1).
    pub as2orgplus: AsOrgMapping,
    /// Full Borges mapping (all features).
    pub full: AsOrgMapping,
    /// Worker threads for batched mapping materialization
    /// ([`Borges::mappings_parallel`]); defaults to the machine's
    /// available parallelism.
    pub threads: usize,
}

impl ExperimentContext {
    /// Generates a world from `config` and runs the pipeline with the
    /// paper-calibrated simulated LLM.
    pub fn new(config: &GeneratorConfig) -> Self {
        let world = SyntheticInternet::generate(config);
        let llm = SimLlm::new(config.seed);
        let borges = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        );
        let as2org = as2org(&world.whois);
        let as2orgplus = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::automated());
        let full = borges.full();
        ExperimentContext {
            world,
            borges,
            as2org,
            as2orgplus,
            full,
            threads: borges_parallel::default_threads(),
        }
    }

    /// The full paper-scale context.
    pub fn paper() -> Self {
        Self::new(&GeneratorConfig::paper(DEFAULT_SEED))
    }

    /// Scale/seed from the environment: `BORGES_SCALE` ∈
    /// {`tiny`, `medium`, `paper`} (default `paper`), `BORGES_SEED`
    /// (default [`DEFAULT_SEED`]). This is how the experiment binaries are
    /// pointed at a smaller world for smoke runs.
    pub fn from_env() -> Self {
        let seed = std::env::var("BORGES_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        let config = match std::env::var("BORGES_SCALE").as_deref() {
            Ok("tiny") => GeneratorConfig::tiny(seed),
            Ok("medium") => GeneratorConfig::medium(seed),
            _ => GeneratorConfig::paper(seed),
        };
        Self::new(&config)
    }

    /// The mapping universe size `n` used by every θ computation.
    pub fn universe_size(&self) -> usize {
        self.borges.universe().len()
    }

    /// The population table in the shape the impact analyses consume.
    pub fn populations(&self) -> BTreeMap<Asn, AsnPopulation> {
        self.world
            .populations
            .iter()
            .map(|(asn, rec)| {
                (
                    *asn,
                    AsnPopulation {
                        users: rec.users,
                        country: rec.country,
                    },
                )
            })
            .collect()
    }

    /// An organization namer over this world's registries.
    pub fn namer(&self) -> OrgNamer<'_> {
        OrgNamer::new(&self.world.pdb, &self.world.whois)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_on_a_tiny_world() {
        let ctx = ExperimentContext::new(&GeneratorConfig::tiny(1));
        assert!(ctx.universe_size() > 300);
        assert_eq!(ctx.full.asn_count(), ctx.universe_size());
        assert!(ctx.full.org_count() < ctx.as2org.org_count());
        assert!(!ctx.populations().is_empty());
    }
}
