//! Plain-text table rendering for the experiment binaries.
//!
//! The binaries print the same rows the paper's tables report; this
//! module provides the aligned-column renderer and number formatting they
//! share.

/// Formats an integer with thousands separators (`117431` → `117,431`),
/// matching the paper's table style.
pub fn fmt_u64(value: u64) -> String {
    let digits = value.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Formats a float with `decimals` places.
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch: {cells:?}"
        );
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns, a header rule, and a trailing
    /// newline. First column left-aligned; the rest right-aligned
    /// (numeric convention).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    out.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            // No trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_separators() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1_000), "1,000");
        assert_eq!(fmt_u64(117_431), "117,431");
        assert_eq!(fmt_u64(4_210_000_000), "4,210,000,000");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["Source", "ASes", "Orgs"]);
        t.row(["OID_P", "30,955", "27,712"]);
        t.row(["OID_W", "117,431", "95,300"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Source"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].contains("117,431"));
        // Right alignment: the numeric columns line up at the right edge.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.3576, 4), "0.3576");
        assert_eq!(fmt_f64(2.371, 2), "2.37");
    }
}
