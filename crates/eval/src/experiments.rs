//! The experiment implementations: one function per paper table/figure.
//!
//! Each function renders the same rows/series its paper counterpart
//! reports, from an [`ExperimentContext`]. The binaries in `src/bin/` are
//! one-liners over these functions; the integration suite asserts on the
//! underlying numbers.

use crate::report::{fmt_f64, fmt_u64, Table};
use crate::runner::ExperimentContext;
use borges_core::evalsets::{classifier_confusion, ie_confusion, ClassifierEval, Confusion};
use borges_core::impact::{
    country_footprint, hypergiant_sizes, population_comparison, transit_growth,
};
use borges_core::orgfactor::{
    cumulative_curve, organization_factor, organization_factor_normalized,
};
use borges_core::orgkeys::{oid_p_mapping, oid_w_mapping};
use borges_core::pipeline::{Feature, FeatureSet};

/// Table 3 — ASes and organizations contributed by each feature, plus the
/// §5.2 funnel narrative.
pub fn table3(ctx: &ExperimentContext) -> String {
    let mut t = Table::new(["Source", "Number of ASes", "Number of Orgs"]);
    for feature in Feature::ALL {
        let c = ctx.borges.contribution(feature);
        t.row([
            feature.label().to_string(),
            fmt_u64(c.ases as u64),
            fmt_u64(c.orgs as u64),
        ]);
    }

    let oid_w = oid_w_mapping(&ctx.world.whois);
    let oid_p = oid_p_mapping(&ctx.world.pdb);
    let namer = ctx.namer();
    let largest_w = oid_w.largest().map(|(id, s)| (oid_w.members(id)[0], s));
    let largest_p = oid_p.largest().map(|(id, s)| (oid_p.members(id)[0], s));

    let ner = &ctx.borges.ner.stats;
    let scrape = &ctx.borges.scrape_stats;
    let fav = &ctx.borges.favicon.stats;

    let mut out = String::new();
    out.push_str("Table 3: Summary of ASes and Organizations obtained from each feature\n\n");
    out.push_str(&t.render());
    out.push_str("\nOrganizational IDs (§5.2):\n");
    out.push_str(&format!(
        "  AS2Org/WHOIS: {} ASNs in {} orgs (mean {} networks/org",
        fmt_u64(oid_w.asn_count() as u64),
        fmt_u64(oid_w.org_count() as u64),
        fmt_f64(oid_w.mean_size(), 2),
    ));
    if let Some((anchor, size)) = largest_w {
        out.push_str(&format!(
            "; largest: {} with {} networks",
            namer.name_of(anchor),
            fmt_u64(size as u64)
        ));
    }
    out.push_str(")\n");
    out.push_str(&format!(
        "  PeeringDB:    {} ASNs in {} orgs (mean {} networks/org",
        fmt_u64(oid_p.asn_count() as u64),
        fmt_u64(oid_p.org_count() as u64),
        fmt_f64(oid_p.mean_size(), 2),
    ));
    if let Some((anchor, size)) = largest_p {
        out.push_str(&format!(
            "; largest: {} with {} networks",
            namer.name_of(anchor),
            fmt_u64(size as u64)
        ));
    }
    out.push_str(")\n");

    out.push_str("\nnotes and aka funnel (§5.2):\n");
    out.push_str(&format!(
        "  {} entries; {} non-empty; {} numeric ({} in aka, {} in notes)\n",
        fmt_u64(ner.entries_total as u64),
        fmt_u64(ner.entries_with_text as u64),
        fmt_u64(ner.entries_numeric as u64),
        fmt_u64(ner.numeric_in_aka as u64),
        fmt_u64(ner.numeric_in_notes as u64),
    ));
    out.push_str(&format!(
        "  {} LLM calls extracted {} sibling ASNs from {} entries\n",
        fmt_u64(ner.llm_calls as u64),
        fmt_u64(ner.extracted_asns as u64),
        fmt_u64(ner.entries_with_siblings as u64),
    ));
    let total_usage = ner.usage + fav.usage;
    out.push_str(&format!(
        "  estimated LLM bill for the run: {} tokens ≈ ${:.2} at GPT-4o-mini list prices\n",
        fmt_u64(total_usage.total()),
        borges_llm::chat::estimate_cost_usd(total_usage),
    ));

    out.push_str("\nRefresh & Redirect funnel (§5.2):\n");
    out.push_str(&format!(
        "  {} entries with websites referencing {} unique URLs; {} reachable; {} unique final URLs\n",
        fmt_u64(scrape.entries_with_website as u64),
        fmt_u64(scrape.unique_urls as u64),
        fmt_u64(scrape.reachable_urls as u64),
        fmt_u64(scrape.unique_final_urls as u64),
    ));

    out.push_str("\nFavicon funnel (§5.2):\n");
    out.push_str(&format!(
        "  {} unique favicons; {} shared by >1 final URL, covering {} URLs; \
{} groups merged by the same-subdomain rule, {} by the LLM, \
{} rejected as frameworks, {} declined\n",
        fmt_u64(scrape.unique_favicons as u64),
        fmt_u64(fav.favicons_shared as u64),
        fmt_u64(fav.urls_in_shared as u64),
        fmt_u64(fav.merged_by_step1 as u64),
        fmt_u64(fav.merged_by_llm as u64),
        fmt_u64(fav.framework_rejections as u64),
        fmt_u64(fav.dont_know as u64),
    ));
    out
}

fn confusion_table(title: &str, c: &Confusion) -> String {
    let mut t = Table::new(["Metric", "Value"]);
    t.row(["True Positives (TP)", &fmt_u64(c.tp as u64)]);
    t.row(["True Negatives (TN)", &fmt_u64(c.tn as u64)]);
    t.row(["False Negatives (FN)", &fmt_u64(c.fn_ as u64)]);
    t.row(["False Positives (FP)", &fmt_u64(c.fp as u64)]);
    t.row(["Recall", &fmt_f64(c.recall(), 3)]);
    t.row(["Precision", &fmt_f64(c.precision(), 3)]);
    t.row(["Accuracy", &fmt_f64(c.accuracy(), 3)]);
    format!("{title}\n\n{}", t.render())
}

/// Table 4 — accuracy of the LLM information-extraction stage, over a
/// 320-record audit sample and over the full numeric population.
pub fn table4(ctx: &ExperimentContext) -> (Confusion, String) {
    let sample = ie_confusion(
        &ctx.world.pdb,
        &ctx.world.text_labels,
        &ctx.borges.ner,
        Some(320),
    );
    let full = ie_confusion(
        &ctx.world.pdb,
        &ctx.world.text_labels,
        &ctx.borges.ner,
        None,
    );
    let mut out = confusion_table(
        "Table 4: LLM-based Information Extraction accuracy (320-record audit sample)",
        &sample,
    );
    out.push('\n');
    out.push_str(&confusion_table(
        &format!(
            "Full numeric population ({} records)",
            fmt_u64(full.total() as u64)
        ),
        &full,
    ));
    (sample, out)
}

/// Table 5 — accuracy of the favicon classifier, per step and overall.
pub fn table5(ctx: &ExperimentContext) -> (ClassifierEval, String) {
    let eval = classifier_confusion(&ctx.borges.favicon, |a, b| {
        ctx.world.truth.are_siblings(a, b)
    });
    let mut t = Table::new(["", "Step 1", "Step 2", "All"]);
    let cells = |f: fn(&Confusion) -> usize| {
        [
            fmt_u64(f(&eval.step1) as u64),
            fmt_u64(f(&eval.step2) as u64),
            fmt_u64(f(&eval.overall) as u64),
        ]
    };
    let [a, b, c] = cells(|x| x.tp);
    t.row(["True Positives (TP)".to_string(), a, b, c]);
    let [a, b, c] = cells(|x| x.tn);
    t.row(["True Negatives (TN)".to_string(), a, b, c]);
    let [a, b, c] = cells(|x| x.fp);
    t.row(["False Positives (FP)".to_string(), a, b, c]);
    let [a, b, c] = cells(|x| x.fn_);
    t.row(["False Negatives (FN)".to_string(), a, b, c]);
    t.row([
        "Precision".to_string(),
        fmt_f64(eval.step1.precision(), 3),
        fmt_f64(eval.step2.precision(), 3),
        fmt_f64(eval.overall.precision(), 3),
    ]);
    t.row([
        "Recall".to_string(),
        fmt_f64(eval.step1.recall(), 3),
        fmt_f64(eval.step2.recall(), 3),
        fmt_f64(eval.overall.recall(), 3),
    ]);
    t.row([
        "Accuracy".to_string(),
        fmt_f64(eval.step1.accuracy(), 3),
        fmt_f64(eval.step2.accuracy(), 3),
        fmt_f64(eval.overall.accuracy(), 3),
    ]);
    let out = format!(
        "Table 5: LLM-based classifier accuracy ({} shared-favicon groups)\n\n{}",
        fmt_u64(eval.overall.total() as u64),
        t.render()
    );
    (eval, out)
}

/// Table 6 — Organization Factor θ for the baselines and all 16 feature
/// combinations.
pub fn table6(ctx: &ExperimentContext) -> (Vec<(String, f64)>, String) {
    let n = ctx.universe_size();
    let theta_as2org = organization_factor(&ctx.as2org, n);
    let theta_plus = organization_factor(&ctx.as2orgplus, n);

    let mut rows: Vec<(String, f64)> = vec![
        ("AS2Org (baseline)".to_string(), theta_as2org),
        ("as2org+ (automated)".to_string(), theta_plus),
    ];
    let combinations: Vec<FeatureSet> =
        FeatureSet::all_combinations().into_iter().skip(1).collect();
    let mappings = ctx.borges.mappings_parallel(&combinations, ctx.threads);
    for (features, mapping) in combinations.iter().zip(&mappings) {
        let theta = organization_factor(mapping, n);
        let label = if *features == FeatureSet::ALL {
            "Borges (all features)".to_string()
        } else {
            features.label()
        };
        rows.push((label, theta));
    }

    let supremum = (n as f64 - 1.0) / (2.0 * n as f64);
    let mut t = Table::new(["Configuration", "θ (Eq. 1)", "θ normalized", "Δ vs AS2Org"]);
    for (label, theta) in &rows {
        let delta = if theta_as2org > 0.0 {
            format!("{:+.2}%", (theta / theta_as2org - 1.0) * 100.0)
        } else {
            "n/a".to_string()
        };
        t.row([
            label.clone(),
            fmt_f64(*theta, 4),
            fmt_f64(*theta / supremum, 4),
            delta,
        ]);
    }
    let out = format!(
        "Table 6: Organization Factor (θ) over {} networks\n\n{}",
        fmt_u64(n as u64),
        t.render()
    );
    (rows, out)
}

/// Figure 7 — the cumulative organization-size curves that θ integrates:
/// the all-singletons diagonal vs AS2Org vs Borges.
pub fn figure7(ctx: &ExperimentContext) -> String {
    let n = ctx.universe_size();
    let as2org_curve = cumulative_curve(&ctx.as2org, n);
    let borges_curve = cumulative_curve(&ctx.full, n);

    let mut t = Table::new(["org index i", "singletons C_i", "AS2Org C_i", "Borges C_i"]);
    for &i in sample_indices(n).iter() {
        t.row([
            fmt_u64(i as u64),
            fmt_u64(i as u64), // all-singletons: C_i = i
            fmt_u64(as2org_curve[i - 1]),
            fmt_u64(borges_curve[i - 1]),
        ]);
    }
    format!(
        "Figure 7: cumulative networks per organization (sorted descending, padded)\n\
θ(singletons) = 0.0000, θ(AS2Org) = {} (normalized {}), θ(Borges) = {} (normalized {})\n\n{}",
        fmt_f64(organization_factor(&ctx.as2org, n), 4),
        fmt_f64(organization_factor_normalized(&ctx.as2org, n), 4),
        fmt_f64(organization_factor(&ctx.full, n), 4),
        fmt_f64(organization_factor_normalized(&ctx.full, n), 4),
        t.render()
    )
}

/// Log-spaced sample of `1..=n` for printing monotone curves.
fn sample_indices(n: usize) -> Vec<usize> {
    let mut out = vec![1usize];
    let mut x = 1f64;
    while (x as usize) < n {
        x *= 1.6;
        let i = (x as usize).min(n);
        if *out.last().unwrap() != i {
            out.push(i);
        }
    }
    if *out.last().unwrap() != n {
        out.push(n);
    }
    out
}

/// Table 7 — mean AS population of changed vs unchanged organizations.
pub fn table7(ctx: &ExperimentContext) -> String {
    let pops = ctx.populations();
    let cmp = population_comparison(&ctx.as2org, &ctx.full, &pops);
    let mut t = Table::new(["", "# Organizations", "E(AS2Org)", "E(Borges)"]);
    t.row([
        "Changed".to_string(),
        fmt_u64(cmp.changed.len() as u64),
        fmt_u64(cmp.mean_base_changed as u64),
        fmt_u64(cmp.mean_improved_changed as u64),
    ]);
    t.row([
        "Unchanged".to_string(),
        fmt_u64(cmp.unchanged_count as u64),
        fmt_u64(cmp.mean_unchanged as u64),
        fmt_u64(cmp.mean_unchanged as u64),
    ]);
    format!(
        "Table 7: mean AS population, organizations with vs without changes\n\n{}\n\
Total marginal user growth: {} of {} total users ({}% of the population)\n",
        t.render(),
        fmt_u64(cmp.total_marginal_growth),
        fmt_u64(cmp.total_users),
        fmt_f64(
            cmp.total_marginal_growth as f64 / cmp.total_users.max(1) as f64 * 100.0,
            1
        ),
    )
}

/// Table 8 — top-20 marginal AS-population growths.
pub fn table8(ctx: &ExperimentContext) -> String {
    let pops = ctx.populations();
    let cmp = population_comparison(&ctx.as2org, &ctx.full, &pops);
    let namer = ctx.namer();
    let mut t = Table::new(["Company", "AS2Org", "Borges", "Difference"]);
    for change in cmp.changed.iter().take(20) {
        t.row([
            namer.name_of(change.anchor),
            fmt_u64(change.base_max_users),
            fmt_u64(change.improved_users),
            fmt_u64(change.marginal_growth()),
        ]);
    }
    format!(
        "Table 8: top 20 marginal AS population growths\n\n{}",
        t.render()
    )
}

/// Figure 8 — cumulative marginal network growth by AS-Rank, with linear
/// fits over the top-100/1,000/10,000 windows.
pub fn figure8(ctx: &ExperimentContext) -> String {
    let growth = transit_growth(&ctx.as2org, &ctx.full, &ctx.world.asrank);
    let mut out =
        String::from("Figure 8: marginal network growth of organizations sorted by AS-Rank\n\n");
    let mut fits = Table::new(["window", "slope", "avg ASNs gained/org"]);
    for fit in &growth.fits {
        fits.row([
            format!("top {}", fmt_u64(fit.top_n as u64)),
            format!("{:.4}", fit.slope),
            format!("{:.2}", fit.avg_growth),
        ]);
    }
    out.push_str(&fits.render());
    out.push('\n');
    let mut series = Table::new(["rank", "cumulative marginal ASNs"]);
    let n = growth.series.len();
    for &i in sample_indices(n).iter() {
        let (rank, cum) = growth.series[i - 1];
        series.row([fmt_u64(rank as u64), fmt_u64(cum)]);
    }
    out.push_str(&series.render());
    out
}

/// Figure 9 — hypergiant organization sizes under AS2Org, as2org+ and
/// Borges.
pub fn figure9(ctx: &ExperimentContext) -> String {
    let rows = hypergiant_sizes(
        &ctx.world.hypergiants,
        &[&ctx.as2org, &ctx.as2orgplus, &ctx.full],
    );
    let mut t = Table::new(["Hypergiant", "ASN", "AS2Org", "as2org+", "Borges"]);
    for row in &rows {
        t.row([
            row.name.clone(),
            row.asn.to_string(),
            fmt_u64(row.sizes[0] as u64),
            fmt_u64(row.sizes[1] as u64),
            fmt_u64(row.sizes[2] as u64),
        ]);
    }
    format!(
        "Figure 9: organization size of hypergiants per method\n\n{}",
        t.render()
    )
}

/// Table 9 — top-20 country-level footprint growths.
pub fn table9(ctx: &ExperimentContext) -> String {
    let pops = ctx.populations();
    let cmp = country_footprint(&ctx.as2org, &ctx.full, &pops);
    let namer = ctx.namer();
    let mut t = Table::new(["Company", "AS2Org", "Borges", "Difference"]);
    for change in cmp.expanded.iter().take(20) {
        t.row([
            namer.name_of(change.anchor),
            fmt_u64(change.base_countries as u64),
            fmt_u64(change.improved_countries as u64),
            fmt_u64(change.gain() as u64),
        ]);
    }
    format!(
        "Table 9: top 20 organizations' country-level footprint growths\n\n{}\n\
{} organizations expanded; average marginal increase {} countries\n",
        t.render(),
        fmt_u64(cmp.expanded.len() as u64),
        fmt_f64(cmp.mean_gain, 2),
    )
}

/// §5.2's "complementary effects", quantified: for each feature, the
/// number of sibling *pairs* that exist in the full mapping but vanish
/// when that one feature is removed — its unique, non-redundant
/// contribution. (Merged-pair counts are Σ s·(s−1)/2 over cluster sizes.)
pub fn feature_complementarity(ctx: &ExperimentContext) -> String {
    let pairs = |m: &borges_core::AsOrgMapping| -> u64 {
        m.sizes_desc()
            .into_iter()
            .map(|s| (s as u64) * (s as u64 - 1) / 2)
            .sum()
    };
    let full_pairs = pairs(&ctx.full);
    let base_pairs = pairs(&ctx.as2org);

    let mut t = Table::new([
        "feature removed",
        "merged pairs",
        "unique pairs lost vs full",
    ]);
    t.row([
        "(none — full Borges)".to_string(),
        fmt_u64(full_pairs),
        "-".to_string(),
    ]);
    let ablations = [
        (
            "OID_P",
            FeatureSet {
                oid_p: false,
                ..FeatureSet::ALL
            },
        ),
        (
            "N&A",
            FeatureSet {
                na: false,
                ..FeatureSet::ALL
            },
        ),
        (
            "R&R",
            FeatureSet {
                rr: false,
                ..FeatureSet::ALL
            },
        ),
        (
            "Favicons",
            FeatureSet {
                favicons: false,
                ..FeatureSet::ALL
            },
        ),
    ];
    let feature_sets: Vec<FeatureSet> = ablations.iter().map(|(_, f)| *f).collect();
    let mappings = ctx.borges.mappings_parallel(&feature_sets, ctx.threads);
    for ((label, _), mapping) in ablations.iter().zip(&mappings) {
        let without = pairs(mapping);
        t.row([
            label.to_string(),
            fmt_u64(without),
            fmt_u64(full_pairs - without),
        ]);
    }
    t.row([
        "(all — AS2Org base)".to_string(),
        fmt_u64(base_pairs),
        fmt_u64(full_pairs - base_pairs),
    ]);
    format!(
        "Feature complementarity (§5.2): sibling pairs lost when one feature is removed\n\n{}\nA large \"unique pairs lost\" means the feature sees relationships no other\nfeature can reach; a small one means the evidence is redundant.\n",
        t.render()
    )
}

/// DESIGN.md ablation 4 — what the Appendix D blocklists buy: θ and
/// ground-truth merge precision of the web features with and without
/// them. Demonstrates quantitatively why θ alone cannot rank methods
/// (§5.4): removing the blocklists *raises* θ while collapsing precision.
pub fn ablation_blocklists(ctx: &ExperimentContext) -> String {
    use borges_core::web::favicon::favicon_inference_with;
    use borges_core::web::rr::rr_inference_with;
    use borges_core::{AsOrgMapping, UnionFind};
    use borges_llm::SimLlm;
    use borges_websim::{Scraper, SimWebClient};

    let world = &ctx.world;
    let scraper = Scraper::new(SimWebClient::browser(&world.web));
    let report = scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())));
    let llm = SimLlm::new(world.config.seed);
    let n = ctx.universe_size();

    let build = |apply_blocklist: bool| -> AsOrgMapping {
        let rr = rr_inference_with(&report, apply_blocklist);
        let fav = favicon_inference_with(&report, &llm, apply_blocklist);
        let allocated: std::collections::BTreeSet<_> =
            ctx.borges.universe().iter().copied().collect();
        let mut uf = UnionFind::with_universe(ctx.borges.universe().iter().copied());
        for (_, members) in ctx.as2org.clusters() {
            uf.union_group(members);
        }
        for group in rr.merging_groups().chain(fav.groups.iter()) {
            let members: Vec<_> = group
                .iter()
                .copied()
                .filter(|a| allocated.contains(a))
                .collect();
            uf.union_group(&members);
        }
        AsOrgMapping::from_union_find(uf)
    };

    let precision = |m: &AsOrgMapping| {
        let mut merged = 0usize;
        let mut correct = 0usize;
        for (_, members) in m.clusters() {
            if members.len() < 2 || members.len() > 5_000 {
                // Cap pathological mega-clusters: sample their pairs via
                // the first member against the rest.
                if members.len() > 5_000 {
                    for &b in &members[1..] {
                        merged += 1;
                        if world.truth.are_siblings(members[0], b) {
                            correct += 1;
                        }
                    }
                }
                continue;
            }
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    merged += 1;
                    if world.truth.are_siblings(members[i], members[j]) {
                        correct += 1;
                    }
                }
            }
        }
        if merged == 0 {
            1.0
        } else {
            correct as f64 / merged as f64
        }
    };

    let with = build(true);
    let without = build(false);
    let mut t = Table::new(["configuration", "orgs", "θ", "merge precision"]);
    for (label, m) in [
        ("blocklists ON (paper)", &with),
        ("blocklists OFF", &without),
    ] {
        t.row([
            label.to_string(),
            fmt_u64(m.org_count() as u64),
            fmt_f64(organization_factor(m, n), 4),
            fmt_f64(precision(m), 3),
        ]);
    }
    format!(
        "Ablation: Appendix D blocklists (web features over the AS2Org base)\n\n{}\nRemoving the blocklists merges more (higher θ) while fusing unrelated\nnetworks through facebook.com/github.com pages — the §5.4 caveat that θ\ncannot rank methods without an accuracy check.\n",
        t.render()
    )
}

/// Every experiment, concatenated (the `run_all` binary's output).
pub fn run_all(ctx: &ExperimentContext) -> String {
    let sections = [
        table3(ctx),
        table4(ctx).1,
        table5(ctx).1,
        table6(ctx).1,
        figure7(ctx),
        table7(ctx),
        table8(ctx),
        figure8(ctx),
        figure9(ctx),
        table9(ctx),
        feature_complementarity(ctx),
        ablation_blocklists(ctx),
    ];
    let mut out = String::new();
    for (i, section) in sections.iter().enumerate() {
        if i > 0 {
            out.push_str("\n================================================================\n\n");
        }
        out.push_str(section);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_synthnet::GeneratorConfig;

    fn ctx() -> ExperimentContext {
        ExperimentContext::new(&GeneratorConfig::tiny(4))
    }

    #[test]
    fn every_section_renders_nonempty() {
        let ctx = ctx();
        for (name, text) in [
            ("table3", table3(&ctx)),
            ("table4", table4(&ctx).1),
            ("table5", table5(&ctx).1),
            ("table6", table6(&ctx).1),
            ("figure7", figure7(&ctx)),
            ("table7", table7(&ctx)),
            ("table8", table8(&ctx)),
            ("figure8", figure8(&ctx)),
            ("figure9", figure9(&ctx)),
            ("table9", table9(&ctx)),
        ] {
            assert!(text.len() > 100, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn table6_orders_methods_correctly() {
        let ctx = ctx();
        let (rows, _) = table6(&ctx);
        let theta = |label: &str| {
            rows.iter()
                .find(|(l, _)| l.starts_with(label))
                .map(|(_, t)| *t)
                .unwrap()
        };
        let base = theta("AS2Org");
        let plus = theta("as2org+");
        let borges = theta("Borges");
        assert!(plus > base, "as2org+ must beat AS2Org ({plus} vs {base})");
        assert!(
            borges > plus,
            "Borges must beat as2org+ ({borges} vs {plus})"
        );
    }

    #[test]
    fn table4_accuracy_is_high_with_calibrated_model() {
        let ctx = ctx();
        let (confusion, _) = table4(&ctx);
        assert!(
            confusion.accuracy() > 0.85,
            "IE accuracy collapsed: {confusion:?}"
        );
    }

    #[test]
    fn figure9_shows_the_edgio_consolidation() {
        let ctx = ctx();
        let text = figure9(&ctx);
        let edgecast_line = text
            .lines()
            .find(|l| l.starts_with("EdgeCast"))
            .expect("EdgeCast row");
        // AS2Org sees 1 network; Borges consolidates the Edgio family.
        let cols: Vec<&str> = edgecast_line.split_whitespace().collect();
        let as2org_size: usize = cols[cols.len() - 3].replace(',', "").parse().unwrap();
        let borges_size: usize = cols[cols.len() - 1].replace(',', "").parse().unwrap();
        assert!(borges_size > as2org_size, "{edgecast_line}");
        assert!(
            borges_size >= 10,
            "Edgio family is 11 ASNs: {edgecast_line}"
        );
    }

    #[test]
    fn sample_indices_are_monotone_and_bounded() {
        for n in [1usize, 2, 10, 1000, 111_111] {
            let s = sample_indices(n);
            assert_eq!(*s.first().unwrap(), 1);
            assert_eq!(*s.last().unwrap(), n);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        }
    }
}
