//! The corruption taxonomy: every way a stored artifact can fail to
//! load, as a typed error.
//!
//! The loader's contract is *never panic, always classify*: any byte
//! sequence — truncated, bit-flipped, renamed over, or simply absent —
//! maps to exactly one [`StoreError`] variant, and the variant decides
//! which `borges_store_degraded_<kind>_total` counter the serve
//! fallback bumps. [`StoreError::kind`] is that stable label.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// A typed artifact-store failure.
#[derive(Debug)]
pub enum StoreError {
    /// The artifact file does not exist — including the torn-rename
    /// crash window, where only the hidden sibling tmp file survives
    /// and the destination name was never linked.
    Missing {
        /// The path that was not found.
        path: PathBuf,
    },
    /// An I/O error other than not-found while reading or writing.
    Io {
        /// The path being accessed.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file ends before the structure it promises: a partial
    /// header, a section extending past end-of-file, or trailing
    /// garbage after the footer.
    Truncated {
        /// What was being read when the bytes ran out.
        detail: String,
    },
    /// The leading magic is not `BORGSTOR` — not an artifact at all.
    BadMagic,
    /// The header's own CRC32 does not cover its bytes.
    HeaderCorrupt,
    /// The artifact speaks a different format or world-schema version
    /// than this reader.
    SchemaMismatch {
        /// The version found in the header.
        found: u32,
        /// The version this reader expects.
        expected: u32,
    },
    /// A section's payload CRC32 does not match its bytes.
    SectionChecksum {
        /// The name of the damaged section.
        section: String,
    },
    /// The whole-file SHA-256 footer does not match the preceding
    /// bytes — the content address lies about the content.
    DigestMismatch,
    /// The `BORGDGST` footer is absent or malformed.
    FooterMissing,
    /// A section's bytes passed their checksum but do not decode into
    /// a sane world (bad JSON, unknown inner schema, duplicate
    /// interner slots, out-of-range edges).
    Decode {
        /// The section that failed to decode.
        section: String,
        /// Why it failed.
        detail: String,
    },
}

impl StoreError {
    /// The stable lower-snake label for this corruption class, used as
    /// the `borges_store_degraded_<kind>_total` metric suffix and the
    /// `store verify` output tag.
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::Missing { .. } => "missing",
            StoreError::Io { .. } => "io",
            StoreError::Truncated { .. } => "truncated",
            StoreError::BadMagic => "bad_magic",
            StoreError::HeaderCorrupt => "header_corrupt",
            StoreError::SchemaMismatch { .. } => "schema_mismatch",
            StoreError::SectionChecksum { .. } => "section_checksum",
            StoreError::DigestMismatch => "digest_mismatch",
            StoreError::FooterMissing => "footer_missing",
            StoreError::Decode { .. } => "decode",
        }
    }

    /// Wraps an I/O error, folding not-found into [`StoreError::Missing`].
    pub fn from_io(path: &std::path::Path, source: io::Error) -> Self {
        if source.kind() == io::ErrorKind::NotFound {
            StoreError::Missing {
                path: path.to_path_buf(),
            }
        } else {
            StoreError::Io {
                path: path.to_path_buf(),
                source,
            }
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Missing { path } => write!(f, "artifact missing: {}", path.display()),
            StoreError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            StoreError::Truncated { detail } => write!(f, "artifact truncated: {detail}"),
            StoreError::BadMagic => write!(f, "not a world artifact (bad magic)"),
            StoreError::HeaderCorrupt => write!(f, "artifact header fails its checksum"),
            StoreError::SchemaMismatch { found, expected } => {
                write!(
                    f,
                    "artifact schema {found} but this reader expects {expected}"
                )
            }
            StoreError::SectionChecksum { section } => {
                write!(f, "section {section:?} fails its checksum")
            }
            StoreError::DigestMismatch => write!(f, "whole-file digest mismatch"),
            StoreError::FooterMissing => write!(f, "digest footer missing or malformed"),
            StoreError::Decode { section, detail } => {
                write!(f, "section {section:?} does not decode: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let errors = [
            StoreError::Missing {
                path: PathBuf::from("w"),
            },
            StoreError::Io {
                path: PathBuf::from("w"),
                source: io::Error::new(io::ErrorKind::PermissionDenied, "nope"),
            },
            StoreError::Truncated {
                detail: "header".into(),
            },
            StoreError::BadMagic,
            StoreError::HeaderCorrupt,
            StoreError::SchemaMismatch {
                found: 2,
                expected: 1,
            },
            StoreError::SectionChecksum {
                section: "slots".into(),
            },
            StoreError::DigestMismatch,
            StoreError::FooterMissing,
            StoreError::Decode {
                section: "meta".into(),
                detail: "bad json".into(),
            },
        ];
        let kinds: std::collections::BTreeSet<_> = errors.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errors.len(), "kind labels must be unique");
        for error in &errors {
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn not_found_becomes_missing() {
        let path = std::path::Path::new("/no/such/artifact.world");
        let err = StoreError::from_io(path, io::Error::from(io::ErrorKind::NotFound));
        assert_eq!(err.kind(), "missing");
        let err = StoreError::from_io(path, io::Error::from(io::ErrorKind::PermissionDenied));
        assert_eq!(err.kind(), "io");
    }
}
