//! Seeded artifact corruption, in the spirit of
//! `borges-resilience`'s `FaultInjector`: every mutilation is a pure
//! function of `(seed, draw index)`, so a failing corruption case
//! replays exactly from its seed.
//!
//! The three physical damage classes the store must survive:
//!
//! - **truncation** — a crash mid-write (only reachable under the
//!   destination name if the crash-safe protocol is bypassed) or a
//!   short copy;
//! - **bit/byte flips** — silent media or transfer corruption;
//! - **torn rename** — a crash between staging and rename: the
//!   destination is simply absent, a stray staging sibling remains.

use std::path::{Path, PathBuf};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream of corruption decisions.
#[derive(Debug, Clone)]
pub struct Corruptor {
    state: u64,
}

impl Corruptor {
    /// A corruptor whose every draw is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        Corruptor {
            state: splitmix64(seed),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// A draw in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty draw range");
        (self.next() % bound as u64) as usize
    }

    /// `bytes` cut at a seeded point strictly inside the file.
    pub fn truncate(&mut self, bytes: &[u8]) -> Vec<u8> {
        let cut = self.below(bytes.len());
        bytes[..cut].to_vec()
    }

    /// Flips one seeded bit in place; returns `(byte index, bit)`.
    pub fn flip_bit(&mut self, bytes: &mut [u8]) -> (usize, u8) {
        let index = self.below(bytes.len());
        let bit = self.below(8) as u8;
        bytes[index] ^= 1 << bit;
        (index, bit)
    }

    /// Replaces one seeded byte with a guaranteed-different value;
    /// returns the byte index.
    pub fn flip_byte(&mut self, bytes: &mut [u8]) -> usize {
        let index = self.below(bytes.len());
        let delta = 1 + self.below(255) as u8;
        bytes[index] = bytes[index].wrapping_add(delta);
        index
    }
}

/// Simulates the torn-rename crash window for an artifact that was
/// *about* to land at `dest`: a seeded prefix of `bytes` sits in the
/// crash-safe protocol's staging sibling, and `dest` itself does not
/// exist. Returns the staging path. The loader must classify `dest`
/// as [`crate::StoreError::Missing`] and never read the stray sibling.
pub fn simulate_torn_rename(
    corruptor: &mut Corruptor,
    dest: &Path,
    bytes: &[u8],
) -> std::io::Result<PathBuf> {
    if dest.exists() {
        std::fs::remove_file(dest)?;
    }
    let staging = crate::atomic::staging_path(dest)?;
    let partial = corruptor.truncate(bytes);
    std::fs::write(&staging, partial)?;
    Ok(staging)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let data = vec![0u8; 4096];
        let mut a = Corruptor::new(42);
        let mut b = Corruptor::new(42);
        for _ in 0..64 {
            assert_eq!(a.truncate(&data).len(), b.truncate(&data).len());
        }
        let mut x = data.clone();
        let mut y = data.clone();
        assert_eq!(a.flip_bit(&mut x), b.flip_bit(&mut y));
        assert_eq!(x, y);
    }

    #[test]
    fn flips_always_change_the_bytes() {
        let mut corruptor = Corruptor::new(7);
        let clean = vec![0x5Au8; 257];
        for _ in 0..256 {
            let mut copy = clean.clone();
            corruptor.flip_bit(&mut copy);
            assert_ne!(copy, clean);
            let mut copy = clean.clone();
            corruptor.flip_byte(&mut copy);
            assert_ne!(copy, clean);
        }
    }

    #[test]
    fn truncation_is_strict() {
        let mut corruptor = Corruptor::new(11);
        let data = vec![1u8; 100];
        for _ in 0..256 {
            assert!(corruptor.truncate(&data).len() < data.len());
        }
    }
}
