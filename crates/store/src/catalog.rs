//! The content-addressed catalog: a directory of artifacts named by
//! their own digest (`<hex-sha256>.world`).
//!
//! Content addressing makes the catalog self-verifying — a file whose
//! digest no longer matches its name has been tampered with or damaged
//! even before opening it — and makes `add` idempotent: re-adding the
//! same world is a no-op landing on the same name.

use crate::artifact::{verify_artifact, ArtifactInfo};
use crate::atomic::write_atomic;
use crate::error::StoreError;
use std::path::{Path, PathBuf};

/// File extension for catalog entries.
pub const ARTIFACT_EXT: &str = "world";

/// One catalog entry: the file, and what verification made of it.
#[derive(Debug)]
pub struct CatalogEntry {
    /// File name inside the catalog directory.
    pub file_name: String,
    /// Full verification result — `Err` entries are damaged.
    pub info: Result<ArtifactInfo, StoreError>,
}

impl CatalogEntry {
    /// Whether the file name matches the verified content digest (a
    /// renamed or swapped artifact fails this even when internally
    /// intact).
    pub fn addressed_correctly(&self) -> bool {
        match &self.info {
            Ok(info) => self.file_name == format!("{}.{ARTIFACT_EXT}", info.digest),
            Err(_) => false,
        }
    }
}

/// Copies the artifact at `artifact_path` into `catalog_dir` under its
/// content address, verifying it first. Returns the digest. The copy
/// goes through the crash-safe write protocol, so a crash cannot leave
/// a partial entry under a valid-looking name.
pub fn catalog_add(catalog_dir: &Path, artifact_path: &Path) -> Result<String, StoreError> {
    let info = verify_artifact(artifact_path)?;
    std::fs::create_dir_all(catalog_dir).map_err(|err| StoreError::from_io(catalog_dir, err))?;
    let bytes =
        std::fs::read(artifact_path).map_err(|err| StoreError::from_io(artifact_path, err))?;
    let dest = catalog_path(catalog_dir, &info.digest);
    write_atomic(&dest, &bytes).map_err(|err| StoreError::from_io(&dest, err))?;
    Ok(info.digest)
}

/// The path a digest addresses inside a catalog.
pub fn catalog_path(catalog_dir: &Path, digest: &str) -> PathBuf {
    catalog_dir.join(format!("{digest}.{ARTIFACT_EXT}"))
}

/// Lists and verifies every `*.world` entry in `catalog_dir`, sorted
/// by file name. Hidden staging files (`.‥.tmp-*`) are ignored.
pub fn catalog_ls(catalog_dir: &Path) -> Result<Vec<CatalogEntry>, StoreError> {
    let entries =
        std::fs::read_dir(catalog_dir).map_err(|err| StoreError::from_io(catalog_dir, err))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|err| StoreError::from_io(catalog_dir, err))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || !name.ends_with(&format!(".{ARTIFACT_EXT}")) {
            continue;
        }
        names.push(name);
    }
    names.sort();
    Ok(names
        .into_iter()
        .map(|file_name| {
            let info = verify_artifact(&catalog_dir.join(&file_name));
            CatalogEntry { file_name, info }
        })
        .collect())
}
