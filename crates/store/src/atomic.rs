//! The single crash-safe write protocol every durable artifact in the
//! workspace goes through: write a hidden sibling tmp file, fsync it,
//! atomically rename over the destination, fsync the directory.
//!
//! A crash before the rename leaves the destination untouched (at
//! worst a stray `.name.tmp-<pid>` sibling); a crash after the rename
//! leaves the complete new file. No interleaving exposes a partial
//! write under the destination name — which is what lets the loader
//! treat a half-written file as *impossible* rather than merely
//! unlikely, and classify a missing destination as the torn-rename
//! crash window.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The hidden sibling path a crash-safe write of `path` stages into.
pub fn staging_path(path: &Path) -> io::Result<PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("path has no file name: {}", path.display()),
        )
    })?;
    let tmp_name = format!(".{}.tmp-{}", name.to_string_lossy(), std::process::id());
    Ok(match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.join(tmp_name),
        _ => PathBuf::from(tmp_name),
    })
}

/// Durably replaces `path` with `bytes`: sibling tmp → `write_all` →
/// `sync_all` → atomic rename → best-effort directory fsync. On any
/// failure the staging file is removed and the destination is left
/// exactly as it was.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(path)?;
    let staged = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if staged.is_err() {
        let _ = fs::remove_file(&tmp);
        return staged;
    }
    // Durability of the *name* needs the directory entry flushed too.
    // Best-effort: some filesystems refuse directory fsync, and the
    // rename itself was already atomic.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "borges-store-atomic-{}-{}",
            std::process::id(),
            name
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = scratch("writes");
        let path = dir.join("artifact.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_staging_file_behind() {
        let dir = scratch("staging");
        let path = dir.join("artifact.bin");
        write_atomic(&path, b"payload").unwrap();
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["artifact.bin".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_preserves_destination() {
        let dir = scratch("failure");
        let path = dir.join("artifact.bin");
        write_atomic(&path, b"survives").unwrap();
        // A destination whose parent vanished mid-flight: writing to a
        // non-directory parent must fail without touching the original.
        let bogus = path.join("child-of-a-file");
        assert!(write_atomic(&bogus, b"nope").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bare_file_name_works() {
        let dir = scratch("cwd");
        let path = dir.join("bare.bin");
        write_atomic(&path, b"x").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"x");
        assert!(staging_path(Path::new("bare.bin"))
            .unwrap()
            .to_string_lossy()
            .starts_with(".bare.bin.tmp-"));
        let _ = fs::remove_dir_all(&dir);
    }
}
