//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over byte
//! slices — the per-section checksum of the artifact format.
//!
//! The store cannot pull a checksum crate (the build environment is
//! offline), so this is the classic 256-entry table implementation,
//! pinned by the standard check value `crc32(b"123456789") ==
//! 0xCBF43926`.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let clean = b"the library is unlimited and cyclical".to_vec();
        let reference = crc32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
