//! # borges-store
//!
//! Crash-safe persistence for compiled Borges worlds.
//!
//! `borges serve` used to recompile the world from raw bundle files on
//! every cold start, and `SnapshotState` persisted as unchecksummed
//! JSON that nothing validated beyond serde. This crate closes both
//! gaps with one artifact:
//!
//! - **Format** ([`format`]): a length-prefixed sectioned container —
//!   magic, versioned CRC32-guarded header, named CRC32-guarded
//!   sections, whole-file SHA-256 footer. The digest doubles as the
//!   artifact's *content address* in a catalog directory.
//! - **Write protocol** ([`atomic`]): sibling tmp → fsync → atomic
//!   rename → directory fsync. Every durable artifact the CLI writes
//!   (mapfiles, states, traces, reports — not just world stores) goes
//!   through [`write_atomic`], so a crash can never leave a truncated
//!   file under a real name.
//! - **Corruption taxonomy** ([`error`]): the loader validates before
//!   trusting and classifies every failure — truncation, bad magic,
//!   header corruption, schema mismatch, section checksum, digest
//!   mismatch, missing footer, torn rename, undecodable payload —
//!   into a typed [`StoreError`]. It never panics on arbitrary bytes,
//!   which is what lets `borges serve --store` degrade to a full
//!   bundle recompile with the degradation on the ledger instead of
//!   serving a damaged world or dying.
//! - **Determinism** ([`artifact`]): encoding is canonical, so
//!   [`world_digest`] of a loaded world equals the digest of the file
//!   it came from, and a world loaded from the store is byte-identical
//!   — mapfiles and HTTP responses — to the freshly compiled world
//!   that wrote it.
//! - **Seeded damage** ([`inject`]): a splitmix-seeded [`Corruptor`]
//!   (truncation, bit/byte flips, torn rename) in the style of
//!   `borges-resilience`'s `FaultInjector`, pinning the taxonomy in
//!   tests.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod atomic;
pub mod catalog;
pub mod crc32;
pub mod error;
pub mod format;
pub mod inject;
pub mod sha256;

pub use artifact::{
    decode_world, encode_world, load_artifact, verify_artifact, world_digest, write_artifact,
    ArtifactInfo, LoadedWorld, STORE_SCHEMA_VERSION,
};
pub use atomic::{staging_path, write_atomic};
pub use catalog::{catalog_add, catalog_ls, catalog_path, CatalogEntry, ARTIFACT_EXT};
pub use error::StoreError;
pub use format::{element_offsets, FORMAT_VERSION};
pub use inject::{simulate_torn_rename, Corruptor};

#[cfg(test)]
mod tests {
    use super::*;
    use borges_core::pipeline::Borges;
    use borges_llm::SimLlm;
    use borges_synthnet::{GeneratorConfig, SyntheticInternet};
    use borges_websim::SimWebClient;
    use std::path::PathBuf;

    fn compiled() -> Borges {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(1729));
        let llm = SimLlm::new(1729);
        Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        )
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("borges-store-lib-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn world_round_trip_is_canonical() {
        let borges = compiled();
        let world = borges.to_world();
        let bytes = encode_world(&world);
        let loaded = decode_world(&bytes).unwrap();
        assert_eq!(loaded.schema, STORE_SCHEMA_VERSION);
        assert_eq!(loaded.world, world);
        // Canonical: encode ∘ decode ∘ encode is the identity on bytes,
        // so the digest is a stable content address.
        assert_eq!(encode_world(&loaded.world), bytes);
        assert_eq!(world_digest(&loaded.world), loaded.digest);
    }

    #[test]
    fn loaded_world_rebuilds_identical_pipeline() {
        let borges = compiled();
        let bytes = encode_world(&borges.to_world());
        let loaded = decode_world(&bytes).unwrap();
        for threads in [1usize, 4] {
            let rebuilt = Borges::from_world(&loaded.world, threads).unwrap();
            assert_eq!(
                rebuilt.snapshot_state(),
                borges.snapshot_state(),
                "threads={threads}"
            );
            assert_eq!(
                encode_world(&rebuilt.to_world()),
                bytes,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn file_round_trip_and_verify() {
        let dir = scratch("file");
        let path = dir.join("world.world");
        let borges = compiled();
        let world = borges.to_world();
        let digest = write_artifact(&path, &world).unwrap();
        let loaded = load_artifact(&path).unwrap();
        assert_eq!(loaded.digest, digest);
        assert_eq!(loaded.world, world);

        let info = verify_artifact(&path).unwrap();
        assert_eq!(info.digest, digest);
        assert_eq!(info.format_version, FORMAT_VERSION);
        assert_eq!(info.schema_version, STORE_SCHEMA_VERSION);
        let names: Vec<&str> = info.sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "meta",
                "slots",
                "segments",
                "fingerprints",
                "memos",
                "serving"
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_artifact_is_typed() {
        let dir = scratch("missing");
        let err = load_artifact(&dir.join("nope.world")).unwrap_err();
        assert_eq!(err.kind(), "missing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_is_missing_and_staging_is_ignored() {
        let dir = scratch("torn");
        let path = dir.join("world.world");
        let borges = compiled();
        let bytes = encode_world(&borges.to_world());
        let mut corruptor = Corruptor::new(99);
        let staging = simulate_torn_rename(&mut corruptor, &path, &bytes).unwrap();
        assert!(staging.exists());
        assert_eq!(load_artifact(&path).unwrap_err().kind(), "missing");
        // Recovery: a fresh crash-safe write lands cleanly next to the
        // stray staging file.
        write_artifact(&path, &borges.to_world()).unwrap();
        assert!(load_artifact(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_add_ls_round_trip() {
        let dir = scratch("catalog");
        let artifact = dir.join("out.world");
        let catalog = dir.join("catalog");
        let borges = compiled();
        let digest = write_artifact(&artifact, &borges.to_world()).unwrap();

        let added = catalog_add(&catalog, &artifact).unwrap();
        assert_eq!(added, digest);
        // Idempotent: same world, same address.
        assert_eq!(catalog_add(&catalog, &artifact).unwrap(), digest);

        let entries = catalog_ls(&catalog).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].addressed_correctly());
        assert_eq!(entries[0].file_name, format!("{digest}.world"));

        // A renamed (mis-addressed) but internally intact artifact is
        // flagged.
        let rogue = catalog.join(format!("{}.world", "0".repeat(64)));
        std::fs::copy(catalog_path(&catalog, &digest), &rogue).unwrap();
        let entries = catalog_ls(&catalog).unwrap();
        assert_eq!(entries.len(), 2);
        let flagged: Vec<bool> = entries.iter().map(|e| e.addressed_correctly()).collect();
        assert_eq!(flagged.iter().filter(|ok| **ok).count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn semantic_nonsense_is_a_decode_error_not_a_panic() {
        use borges_core::delta::{EdgeRecord, SegmentRecord};
        let borges = compiled();
        let mut world = borges.to_world();
        // Checksums will be valid — the damage is semantic: an edge
        // pointing outside the universe.
        world.state.oid_w.push(SegmentRecord {
            key: "EVIL-ORG".into(),
            fp: 0,
            edges: vec![EdgeRecord { a: 0, b: u32::MAX }],
        });
        let bytes = encode_world(&world);
        let err = decode_world(&bytes).unwrap_err();
        assert_eq!(err.kind(), "decode");
    }
}
