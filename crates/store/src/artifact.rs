//! World artifacts: a [`CompiledWorld`] serialized into the sectioned
//! container and back, plus the file-level load/store/verify entry
//! points the CLI and server use.
//!
//! The encoding is **canonical**: encoding a decoded world reproduces
//! the artifact byte for byte, so the whole-file SHA-256 is a stable
//! content address — `world_digest` of a freshly compiled pipeline
//! equals the digest of the artifact it was loaded from, which is what
//! lets `/healthz` prove which artifact is live.

use crate::atomic::write_atomic;
use crate::error::StoreError;
use crate::format::{decode_container, encode_container, Section};
use crate::sha256;
use borges_core::delta::{FaviconMemoRecord, KeyFp, NerMemoRecord, SegmentRecord, SlotRecord};
use borges_core::{CompiledWorld, ServingExtras, SnapshotState};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The world payload schema this reader writes and understands.
pub const STORE_SCHEMA_VERSION: u32 = 1;

const SECTION_META: &str = "meta";
const SECTION_SLOTS: &str = "slots";
const SECTION_SEGMENTS: &str = "segments";
const SECTION_FINGERPRINTS: &str = "fingerprints";
const SECTION_MEMOS: &str = "memos";
const SECTION_SERVING: &str = "serving";

#[derive(Serialize, Deserialize)]
struct MetaSection {
    inner_schema: String,
    /// Timeline epoch of the captured world; `0` when the world was
    /// never published to a timeline. `default` keeps pre-epoch
    /// artifacts decodable.
    #[serde(default)]
    epoch: u64,
}

#[derive(Serialize, Deserialize)]
struct SegmentsSection {
    oid_w: Vec<SegmentRecord>,
    oid_p: Vec<SegmentRecord>,
    na: Vec<SegmentRecord>,
    rr: Vec<SegmentRecord>,
    favicons: Vec<SegmentRecord>,
}

#[derive(Serialize, Deserialize)]
struct FingerprintsSection {
    whois_org: Vec<KeyFp>,
    whois_aut: Vec<KeyFp>,
    pdb_org: Vec<KeyFp>,
    pdb_net: Vec<KeyFp>,
    site: Vec<KeyFp>,
}

#[derive(Serialize, Deserialize)]
struct MemosSection {
    ner: Vec<NerMemoRecord>,
    favicon: Vec<FaviconMemoRecord>,
}

/// A validated world fresh off disk (or off a byte slice), with the
/// provenance the server reports.
#[derive(Debug)]
pub struct LoadedWorld {
    /// The decoded, semantically validated world.
    pub world: CompiledWorld,
    /// Hex SHA-256 content address of the artifact bytes.
    pub digest: String,
    /// The artifact's world schema version.
    pub schema: u32,
}

/// What `store verify` prints: provenance and the section table,
/// without keeping the decoded world around.
#[derive(Debug, Clone)]
pub struct ArtifactInfo {
    /// Hex SHA-256 content address.
    pub digest: String,
    /// Container layout version.
    pub format_version: u32,
    /// World payload schema version.
    pub schema_version: u32,
    /// Timeline epoch recorded in the meta section (`0` if the world
    /// was never published to a timeline).
    pub epoch: u64,
    /// `(name, payload bytes)` per section, in file order.
    pub sections: Vec<(String, u64)>,
    /// Total artifact size in bytes.
    pub total_len: u64,
}

/// Serializes a world into complete artifact bytes.
pub fn encode_world(world: &CompiledWorld) -> Vec<u8> {
    fn json<T: Serialize>(value: &T) -> Vec<u8> {
        serde_json::to_string(value)
            .expect("world wire structs always serialize")
            .into_bytes()
    }
    let state = &world.state;
    let sections = [
        Section {
            name: SECTION_META.into(),
            payload: json(&MetaSection {
                inner_schema: state.schema.clone(),
                epoch: world.epoch,
            }),
        },
        Section {
            name: SECTION_SLOTS.into(),
            payload: json(&state.slots),
        },
        Section {
            name: SECTION_SEGMENTS.into(),
            payload: json(&SegmentsSection {
                oid_w: state.oid_w.clone(),
                oid_p: state.oid_p.clone(),
                na: state.na.clone(),
                rr: state.rr.clone(),
                favicons: state.favicons.clone(),
            }),
        },
        Section {
            name: SECTION_FINGERPRINTS.into(),
            payload: json(&FingerprintsSection {
                whois_org: state.whois_org_fps.clone(),
                whois_aut: state.whois_aut_fps.clone(),
                pdb_org: state.pdb_org_fps.clone(),
                pdb_net: state.pdb_net_fps.clone(),
                site: state.site_fps.clone(),
            }),
        },
        Section {
            name: SECTION_MEMOS.into(),
            payload: json(&MemosSection {
                ner: state.ner_memo.clone(),
                favicon: state.favicon_memo.clone(),
            }),
        },
        Section {
            name: SECTION_SERVING.into(),
            payload: json(&world.extras),
        },
    ];
    encode_container(STORE_SCHEMA_VERSION, &sections)
}

/// Hex SHA-256 content address a world *would* have on disk. For a
/// world loaded via [`load_artifact`] this equals the source file's
/// digest, because the encoding is canonical.
pub fn world_digest(world: &CompiledWorld) -> String {
    let bytes = encode_world(world);
    // The footer's last 32 bytes are exactly the digest of the rest.
    sha256::hex(&bytes[bytes.len() - 32..])
}

/// Parses, integrity-checks, and semantically validates artifact
/// bytes. Never panics: every malformed input maps to a typed
/// [`StoreError`].
pub fn decode_world(bytes: &[u8]) -> Result<LoadedWorld, StoreError> {
    let container = decode_container(bytes, STORE_SCHEMA_VERSION)?;

    fn section<'a, T: for<'de> Deserialize<'de>>(
        container: &'a crate::format::Container,
        name: &str,
    ) -> Result<T, StoreError> {
        let section = container
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| StoreError::Decode {
                section: name.to_string(),
                detail: "section absent".into(),
            })?;
        let text = std::str::from_utf8(&section.payload).map_err(|_| StoreError::Decode {
            section: name.to_string(),
            detail: "payload is not UTF-8".into(),
        })?;
        serde_json::from_str(text).map_err(|err| StoreError::Decode {
            section: name.to_string(),
            detail: err.to_string(),
        })
    }

    let meta: MetaSection = section(&container, SECTION_META)?;
    let slots: Vec<SlotRecord> = section(&container, SECTION_SLOTS)?;
    let segments: SegmentsSection = section(&container, SECTION_SEGMENTS)?;
    let fps: FingerprintsSection = section(&container, SECTION_FINGERPRINTS)?;
    let memos: MemosSection = section(&container, SECTION_MEMOS)?;
    let extras: ServingExtras = section(&container, SECTION_SERVING)?;

    let world = CompiledWorld {
        epoch: meta.epoch,
        state: SnapshotState {
            schema: meta.inner_schema,
            slots,
            oid_w: segments.oid_w,
            oid_p: segments.oid_p,
            na: segments.na,
            rr: segments.rr,
            favicons: segments.favicons,
            whois_org_fps: fps.whois_org,
            whois_aut_fps: fps.whois_aut,
            pdb_org_fps: fps.pdb_org,
            pdb_net_fps: fps.pdb_net,
            site_fps: fps.site,
            ner_memo: memos.ner,
            favicon_memo: memos.favicon,
        },
        extras,
    };
    // Checksums prove the bytes are the ones written; validation proves
    // the written world was sane (inner schema tag, unique interner
    // slots, edges inside the universe). A failure here means the
    // *writer* was broken, not the disk — still a typed refusal, never
    // a panic downstream.
    world.validate().map_err(|detail| StoreError::Decode {
        section: "world".into(),
        detail,
    })?;

    Ok(LoadedWorld {
        world,
        digest: sha256::hex(&container.digest),
        schema: container.schema_version,
    })
}

/// Reads and fully validates the artifact at `path`.
pub fn load_artifact(path: &Path) -> Result<LoadedWorld, StoreError> {
    let bytes = std::fs::read(path).map_err(|err| StoreError::from_io(path, err))?;
    decode_world(&bytes)
}

/// Encodes `world` and crash-safely writes it to `path`. Returns the
/// artifact's hex content digest.
pub fn write_artifact(path: &Path, world: &CompiledWorld) -> Result<String, StoreError> {
    let bytes = encode_world(world);
    write_atomic(path, &bytes).map_err(|err| StoreError::from_io(path, err))?;
    Ok(sha256::hex(&bytes[bytes.len() - 32..]))
}

/// Integrity-checks the artifact at `path` without requiring the world
/// to be loadable into this process: structural validation, checksums,
/// digest, and full decode — exactly what the loader would trust.
pub fn verify_artifact(path: &Path) -> Result<ArtifactInfo, StoreError> {
    let bytes = std::fs::read(path).map_err(|err| StoreError::from_io(path, err))?;
    let container = decode_container(&bytes, STORE_SCHEMA_VERSION)?;
    let info = ArtifactInfo {
        digest: sha256::hex(&container.digest),
        format_version: container.format_version,
        schema_version: container.schema_version,
        epoch: 0,
        sections: container
            .sections
            .iter()
            .map(|s| (s.name.clone(), s.payload.len() as u64))
            .collect(),
        total_len: bytes.len() as u64,
    };
    // Also run the semantic decode so `store verify` catches a
    // well-checksummed file whose payload is nonsense.
    let loaded = decode_world(&bytes)?;
    Ok(ArtifactInfo {
        epoch: loaded.world.epoch,
        ..info
    })
}
