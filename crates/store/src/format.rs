//! The length-prefixed sectioned container: magic, versioned header
//! with its own CRC32, named checksummed sections, and a whole-file
//! SHA-256 footer.
//!
//! ```text
//! offset  bytes  field
//! 0       8      magic "BORGSTOR"
//! 8       4      format version (u32 LE)       — container layout
//! 12      4      schema version (u32 LE)       — world payload schema
//! 16      4      section count (u32 LE)
//! 20      4      CRC32 of bytes [0, 20)
//! --- per section, section-count times ---
//!         2      name length (u16 LE)
//!         n      name (UTF-8)
//!         8      payload length (u64 LE)
//!         p      payload
//!         4      CRC32 of payload
//! --- footer ---
//!         8      magic "BORGDGST"
//!         32     SHA-256 of every preceding byte
//! ```
//!
//! Decoding validates outside-in and fails with the *first* structural
//! lie it meets, so every corruption class maps to one
//! [`StoreError`] variant: short/garbled header → [`StoreError::Truncated`] /
//! [`StoreError::BadMagic`] / [`StoreError::HeaderCorrupt`], foreign
//! versions → [`StoreError::SchemaMismatch`], a section running past
//! end-of-file → [`StoreError::Truncated`], a payload flip →
//! [`StoreError::SectionChecksum`], a damaged footer →
//! [`StoreError::FooterMissing`] / [`StoreError::DigestMismatch`].

use crate::error::StoreError;
use crate::{crc32::crc32, sha256::sha256};

/// Leading file magic.
pub const MAGIC: &[u8; 8] = b"BORGSTOR";
/// Footer magic introducing the whole-file digest.
pub const FOOTER_MAGIC: &[u8; 8] = b"BORGDGST";
/// Container layout version this module reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 24;
const FOOTER_LEN: usize = 8 + 32;

/// One named payload inside a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// The section name (ASCII by convention, UTF-8 by contract).
    pub name: String,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// A decoded, fully validated container.
#[derive(Debug)]
pub struct Container {
    /// Container layout version from the header.
    pub format_version: u32,
    /// World payload schema version from the header.
    pub schema_version: u32,
    /// The sections, in file order.
    pub sections: Vec<Section>,
    /// The whole-file SHA-256 from the footer (already verified).
    pub digest: [u8; 32],
}

/// Serializes `sections` into a complete container, footer included.
pub fn encode_container(schema_version: u32, sections: &[Section]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&schema_version.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());

    for section in sections {
        let name = section.name.as_bytes();
        assert!(name.len() <= u16::MAX as usize, "section name too long");
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(section.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&section.payload);
        out.extend_from_slice(&crc32(&section.payload).to_le_bytes());
    }

    let digest = sha256(&out);
    out.extend_from_slice(FOOTER_MAGIC);
    out.extend_from_slice(&digest);
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.bytes.len() - self.pos < n {
            return Err(StoreError::Truncated {
                detail: format!(
                    "{what}: need {n} bytes at offset {}, file has {}",
                    self.pos,
                    self.bytes.len()
                ),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u16_le(&mut self, what: &str) -> Result<u16, StoreError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32_le(&mut self, what: &str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64_le(&mut self, what: &str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Parses and validates a container: header CRC, versions, section
/// bounds and checksums, footer digest. `expected_schema` is the world
/// schema this reader understands.
pub fn decode_container(bytes: &[u8], expected_schema: u32) -> Result<Container, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated {
            detail: format!("file is {} bytes, shorter than the magic", bytes.len()),
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            detail: format!("file is {} bytes, shorter than the header", bytes.len()),
        });
    }
    let stored_header_crc = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    if crc32(&bytes[..20]) != stored_header_crc {
        return Err(StoreError::HeaderCorrupt);
    }
    let format_version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if format_version != FORMAT_VERSION {
        return Err(StoreError::SchemaMismatch {
            found: format_version,
            expected: FORMAT_VERSION,
        });
    }
    let schema_version = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if schema_version != expected_schema {
        return Err(StoreError::SchemaMismatch {
            found: schema_version,
            expected: expected_schema,
        });
    }
    let section_count = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);

    let mut cursor = Cursor {
        bytes,
        pos: HEADER_LEN,
    };
    let mut sections = Vec::with_capacity(section_count as usize);
    for index in 0..section_count {
        let name_len = cursor.u16_le(&format!("section #{index} name length"))? as usize;
        let name_bytes = cursor.take(name_len, &format!("section #{index} name"))?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| StoreError::Decode {
                section: format!("#{index}"),
                detail: "section name is not UTF-8".into(),
            })?
            .to_string();
        let payload_len = cursor.u64_le(&format!("section {name:?} payload length"))?;
        let payload_len = usize::try_from(payload_len).map_err(|_| StoreError::Truncated {
            detail: format!("section {name:?} claims {payload_len} bytes"),
        })?;
        let payload = cursor
            .take(payload_len, &format!("section {name:?} payload"))?
            .to_vec();
        let stored_crc = cursor.u32_le(&format!("section {name:?} checksum"))?;
        if crc32(&payload) != stored_crc {
            return Err(StoreError::SectionChecksum { section: name });
        }
        sections.push(Section { name, payload });
    }

    let body_len = cursor.pos;
    let remaining = bytes.len() - body_len;
    if remaining < FOOTER_LEN {
        return Err(StoreError::FooterMissing);
    }
    if remaining > FOOTER_LEN {
        return Err(StoreError::Truncated {
            detail: format!("{} trailing bytes after the footer", remaining - FOOTER_LEN),
        });
    }
    if &bytes[body_len..body_len + 8] != FOOTER_MAGIC {
        return Err(StoreError::FooterMissing);
    }
    let mut digest = [0u8; 32];
    digest.copy_from_slice(&bytes[body_len + 8..]);
    if sha256(&bytes[..body_len]) != digest {
        return Err(StoreError::DigestMismatch);
    }

    Ok(Container {
        format_version,
        schema_version,
        sections,
        digest,
    })
}

/// The byte offsets at which each structural element of `bytes`
/// begins — header, each section, footer. Truncating at (or inside)
/// any of these is the corruption-matrix test's section-boundary
/// sweep. Assumes `bytes` is a valid container.
pub fn element_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0, 8, HEADER_LEN];
    let section_count = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    let mut pos = HEADER_LEN;
    for _ in 0..section_count {
        offsets.push(pos);
        let name_len = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]) as usize;
        pos += 2 + name_len;
        let payload_len = u64::from_le_bytes([
            bytes[pos],
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]) as usize;
        pos += 8 + payload_len + 4;
    }
    offsets.push(pos); // footer magic
    offsets.push(pos + 8); // digest
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode_container(
            7,
            &[
                Section {
                    name: "meta".into(),
                    payload: br#"{"inner":"v1"}"#.to_vec(),
                },
                Section {
                    name: "slots".into(),
                    payload: vec![0xAB; 300],
                },
                Section {
                    name: "empty".into(),
                    payload: Vec::new(),
                },
            ],
        )
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let container = decode_container(&bytes, 7).unwrap();
        assert_eq!(container.format_version, FORMAT_VERSION);
        assert_eq!(container.schema_version, 7);
        assert_eq!(container.sections.len(), 3);
        assert_eq!(container.sections[0].name, "meta");
        assert_eq!(container.sections[1].payload.len(), 300);
        // Encoding is canonical: re-encoding the decoded sections
        // reproduces the file byte for byte.
        assert_eq!(encode_container(7, &container.sections), bytes);
    }

    #[test]
    fn truncation_at_every_element_boundary() {
        let bytes = sample();
        for &offset in &element_offsets(&bytes) {
            if offset == bytes.len() {
                continue;
            }
            let err = decode_container(&bytes[..offset], 7).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::FooterMissing
                ),
                "cut at {offset}: got {err:?}"
            );
        }
    }

    #[test]
    fn wrong_magic() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_container(&bytes, 7).unwrap_err(),
            StoreError::BadMagic
        ));
    }

    #[test]
    fn header_flip_is_header_corrupt() {
        let mut bytes = sample();
        bytes[16] ^= 0x01; // section count
        assert!(matches!(
            decode_container(&bytes, 7).unwrap_err(),
            StoreError::HeaderCorrupt
        ));
    }

    #[test]
    fn version_mismatches() {
        let other_schema = encode_container(8, &[]);
        assert!(matches!(
            decode_container(&other_schema, 7).unwrap_err(),
            StoreError::SchemaMismatch {
                found: 8,
                expected: 7
            }
        ));
    }

    #[test]
    fn payload_flip_is_section_checksum() {
        let bytes = sample();
        let offsets = element_offsets(&bytes);
        // Flip a byte inside the second section's 300-byte payload.
        let mut flipped = bytes.clone();
        let inside = offsets[4] + 2 + "slots".len() + 8 + 150;
        flipped[inside] ^= 0x40;
        match decode_container(&flipped, 7).unwrap_err() {
            StoreError::SectionChecksum { section } => assert_eq!(section, "slots"),
            other => panic!("expected SectionChecksum, got {other:?}"),
        }
    }

    #[test]
    fn footer_damage() {
        let bytes = sample();
        let mut no_footer = bytes.clone();
        no_footer.truncate(bytes.len() - 35);
        assert!(matches!(
            decode_container(&no_footer, 7).unwrap_err(),
            StoreError::FooterMissing
        ));

        let mut bad_digest = bytes.clone();
        let last = bad_digest.len() - 1;
        bad_digest[last] ^= 0x01;
        assert!(matches!(
            decode_container(&bad_digest, 7).unwrap_err(),
            StoreError::DigestMismatch
        ));

        let mut trailing = bytes.clone();
        trailing.push(0x00);
        assert!(matches!(
            decode_container(&trailing, 7).unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }

    #[test]
    fn empty_input_is_truncated() {
        assert!(matches!(
            decode_container(&[], 7).unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }
}
