//! The corruption matrix: every way to damage an artifact, pinned to
//! its typed [`StoreError`] class.
//!
//! The invariant under test is the loader's contract — *never panic,
//! always classify*: any truncation, any single bit flip, any byte
//! smash anywhere in the file must surface as an `Err` whose kind is
//! determined by the damaged region, never as a decoded-but-wrong
//! world and never as a panic.

use borges_core::pipeline::Borges;
use borges_llm::SimLlm;
use borges_store::{
    decode_world, element_offsets, encode_world, Corruptor, StoreError, FORMAT_VERSION,
    STORE_SCHEMA_VERSION,
};
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;
use proptest::prelude::*;
use std::sync::OnceLock;

fn artifact_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(271828));
        let llm = SimLlm::new(271828);
        let borges = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        );
        encode_world(&borges.to_world())
    })
}

/// Region map of the artifact: which error class a flip at `offset`
/// must produce.
fn expected_flip_kinds(bytes: &[u8], offset: usize) -> Vec<&'static str> {
    let offsets = element_offsets(bytes);
    let footer_magic_start = offsets[offsets.len() - 2];
    let digest_start = offsets[offsets.len() - 1];
    if offset < 8 {
        return vec!["bad_magic"];
    }
    if offset < 24 {
        // Any header flip breaks the header CRC; a flip *in* the CRC
        // field itself also reads as header corruption.
        return vec!["header_corrupt"];
    }
    if offset >= digest_start {
        return vec!["digest_mismatch"];
    }
    if offset >= footer_magic_start {
        return vec!["footer_missing"];
    }
    // Inside the section table. A flip in a payload is a section
    // checksum failure; a flip in a length prefix or name or stored
    // CRC can masquerade as truncation (lengths now point past EOF or
    // carve the file differently), a checksum failure, a missing
    // section (renamed), or a footer that is no longer where the new
    // carving expects it.
    vec![
        "section_checksum",
        "truncated",
        "decode",
        "footer_missing",
        "digest_mismatch",
    ]
}

#[test]
fn truncation_at_every_element_boundary_is_typed() {
    let bytes = artifact_bytes();
    for &offset in &element_offsets(bytes) {
        if offset == bytes.len() {
            continue;
        }
        let err = decode_world(&bytes[..offset]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::FooterMissing
            ),
            "cut at {offset}: {err:?}"
        );
    }
}

#[test]
fn every_single_byte_truncation_fails_closed() {
    // Not just section boundaries: cutting the file after any prefix
    // length must fail with a typed error. Sweep a seeded sample plus
    // the full sub-header range (cheap and exhaustive where it is most
    // structural).
    let bytes = artifact_bytes();
    for cut in 0..24.min(bytes.len()) {
        assert!(decode_world(&bytes[..cut]).is_err(), "cut {cut}");
    }
    let mut corruptor = Corruptor::new(31337);
    for _ in 0..512 {
        let cut = corruptor.below(bytes.len());
        assert!(decode_world(&bytes[..cut]).is_err(), "cut {cut}");
    }
}

#[test]
fn seeded_bit_flip_sweep_maps_to_region_classes() {
    let bytes = artifact_bytes();
    let mut corruptor = Corruptor::new(4242);
    for round in 0..512 {
        let mut damaged = bytes.to_vec();
        let (offset, bit) = corruptor.flip_bit(&mut damaged);
        let err = decode_world(&damaged).expect_err(&format!(
            "round {round}: flip {offset}:{bit} went undetected"
        ));
        let allowed = expected_flip_kinds(bytes, offset);
        assert!(
            allowed.contains(&err.kind()),
            "round {round}: flip at {offset}:{bit} gave {:?} ({}), expected one of {allowed:?}",
            err,
            err.kind()
        );
    }
}

#[test]
fn schema_and_format_version_skew_is_schema_mismatch() {
    let bytes = artifact_bytes();
    // Rewrite the versions and re-stamp the header CRC so the header
    // is self-consistent — the skew must then be caught as a version
    // check, not a checksum failure.
    let restamp = |field_offset: usize, value: u32| -> StoreError {
        let mut doctored = bytes.to_vec();
        doctored[field_offset..field_offset + 4].copy_from_slice(&value.to_le_bytes());
        let crc = borges_store::crc32::crc32(&doctored[..20]);
        doctored[20..24].copy_from_slice(&crc.to_le_bytes());
        decode_world(&doctored).unwrap_err()
    };
    match restamp(8, FORMAT_VERSION + 1) {
        StoreError::SchemaMismatch { found, expected } => {
            assert_eq!((found, expected), (FORMAT_VERSION + 1, FORMAT_VERSION));
        }
        other => panic!("format skew gave {other:?}"),
    }
    match restamp(12, STORE_SCHEMA_VERSION + 7) {
        StoreError::SchemaMismatch { found, expected } => {
            assert_eq!(
                (found, expected),
                (STORE_SCHEMA_VERSION + 7, STORE_SCHEMA_VERSION)
            );
        }
        other => panic!("schema skew gave {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_truncation_never_panics_and_always_errs(cut in 0usize..1_000_000) {
        let bytes = artifact_bytes();
        let cut = cut % bytes.len();
        prop_assert!(decode_world(&bytes[..cut]).is_err());
    }

    #[test]
    fn prop_single_bit_flip_is_always_detected(
        offset in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let bytes = artifact_bytes();
        let offset = offset % bytes.len();
        let mut damaged = bytes.to_vec();
        damaged[offset] ^= 1 << bit;
        let err = decode_world(&damaged)
            .expect_err(&format!("flip at {offset}:{bit} decoded successfully"));
        let allowed = expected_flip_kinds(bytes, offset);
        prop_assert!(
            allowed.contains(&err.kind()),
            "flip at {offset}:{bit} gave {} expected {allowed:?}",
            err.kind()
        );
    }

    #[test]
    fn prop_random_byte_smash_never_panics(seed in 0u64..u64::MAX, smashes in 1usize..64) {
        let bytes = artifact_bytes();
        let mut corruptor = Corruptor::new(seed);
        let mut damaged = bytes.to_vec();
        for _ in 0..smashes {
            corruptor.flip_byte(&mut damaged);
        }
        // Multiple random byte smashes: decoding must return (either
        // result is structurally possible only if flips cancel — the
        // corruptor guarantees each draw changes its byte, but two
        // draws may hit the same byte). The contract under test is
        // purely "no panic, and any Ok is byte-faithful".
        if let Ok(loaded) = decode_world(&damaged) {
            prop_assert_eq!(encode_world(&loaded.world), damaged);
        }
    }

    #[test]
    fn prop_arbitrary_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = decode_world(&garbage);
    }
}
