//! §4.2 — LLM-based information extraction over `notes` and `aka`.
//!
//! The stage has three layers, exactly as the paper describes:
//!
//! 1. **Input filter** — a dropout filter keeps only entries whose free
//!    text contains digits: fields without numbers cannot carry ASN
//!    information, and skipping them saves most of the LLM calls.
//! 2. **Extraction** — the remaining entries are rendered into the
//!    few-shot prompt of Listing 2 and sent to the [`ChatModel`]; the
//!    JSON reply is parsed into candidate sibling ASNs.
//! 3. **Output filter** — to prevent hallucinations, a reply ASN is kept
//!    only if its number sequence literally appears in the entry's
//!    `notes`/`aka` text; non-routable ASNs and the subject's own ASN are
//!    dropped too.

use borges_llm::chat::{ChatModel, ChatRequest};
use borges_llm::ner::all_routable_numbers;
use borges_llm::prompts::{build_ie_prompt, parse_ie_reply};
use borges_peeringdb::PdbSnapshot;
use borges_resilience::ResilienceStats;
use borges_types::Asn;
use std::collections::{BTreeMap, BTreeSet};

/// Counters for the extraction funnel (§5.2's "notes and aka" numbers).
///
/// Stats from disjoint entry batches combine with `+=` — that is how
/// [`extract_parallel`] folds its per-chunk partials. The one
/// non-additive field, `extracted_asns` (a *distinct* count), is summed
/// like the rest and then recomputed over the merged result by the
/// caller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NerStats {
    /// PeeringDB entries in the snapshot.
    pub entries_total: usize,
    /// Entries with non-empty `notes` or `aka`.
    pub entries_with_text: usize,
    /// Entries passing the numeric input filter.
    pub entries_numeric: usize,
    /// … of which the digits are in `aka`.
    pub numeric_in_aka: usize,
    /// … of which the digits are in `notes`.
    pub numeric_in_notes: usize,
    /// LLM calls issued (== `entries_numeric` when nothing is abandoned).
    pub llm_calls: usize,
    /// LLM calls whose transport failed after all recovery was exhausted;
    /// the entry is skipped and the stage proceeds on partial evidence.
    /// Always: `llm_abandoned + replies parsed == llm_calls`.
    pub llm_abandoned: usize,
    /// Reply ASNs rejected by the output hallucination filter.
    pub filtered_out: usize,
    /// Entries with at least one surviving extraction.
    pub entries_with_siblings: usize,
    /// Distinct sibling ASNs extracted (excluding subjects).
    pub extracted_asns: usize,
    /// Token accounting across every LLM call (what a hosted model would
    /// bill for this stage).
    pub usage: borges_llm::chat::Usage,
    /// What the resilient model stack spent on this stage (zero over a
    /// bare model).
    pub resilience: ResilienceStats,
}

impl std::ops::AddAssign for NerStats {
    fn add_assign(&mut self, rhs: Self) {
        // Full destructuring: adding a field to NerStats without
        // deciding how it merges is a compile error here.
        let NerStats {
            entries_total,
            entries_with_text,
            entries_numeric,
            numeric_in_aka,
            numeric_in_notes,
            llm_calls,
            llm_abandoned,
            filtered_out,
            entries_with_siblings,
            extracted_asns,
            usage,
            resilience,
        } = rhs;
        self.entries_total += entries_total;
        self.entries_with_text += entries_with_text;
        self.entries_numeric += entries_numeric;
        self.numeric_in_aka += numeric_in_aka;
        self.numeric_in_notes += numeric_in_notes;
        self.llm_calls += llm_calls;
        self.llm_abandoned += llm_abandoned;
        self.filtered_out += filtered_out;
        self.entries_with_siblings += entries_with_siblings;
        self.extracted_asns += extracted_asns;
        self.usage += usage;
        self.resilience += resilience;
        debug_assert!(self.llm_abandoned <= self.llm_calls);
    }
}

/// One memoized extraction reply: the fingerprint of the subject's
/// `notes`/`aka` text at reply time, and the *parsed, pre-filter*
/// finding ASNs. Replaying the findings through the unchanged output
/// filter reproduces the original extraction exactly, so a memo hit
/// skips the LLM call — the incremental path's main saving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NerMemoEntry {
    /// [`crate::delta::ner_text_fp`] of `(notes, aka)` when the reply
    /// was obtained.
    pub fp: u64,
    /// Parsed reply ASNs, before the output hallucination filter.
    pub findings: Vec<Asn>,
}

/// The result of running the NER stage over a snapshot.
#[derive(Debug, Clone, Default)]
pub struct NerResult {
    /// For each subject ASN, the extracted (filtered) sibling ASNs.
    pub per_entry: BTreeMap<Asn, Vec<Asn>>,
    /// Every reply obtained or replayed this run, keyed by subject —
    /// captured on full runs too, so any run can seed a later `remap`.
    pub memo: BTreeMap<Asn, NerMemoEntry>,
    /// Entries answered from a prior memo instead of an LLM call.
    pub memo_hits: usize,
    /// Funnel counters.
    pub stats: NerStats,
}

impl NerResult {
    /// All sibling edges `(subject, extracted)` in deterministic order —
    /// the merge evidence this feature feeds the pipeline.
    pub fn edges(&self) -> Vec<(Asn, Asn)> {
        self.per_entry
            .iter()
            .flat_map(|(s, sibs)| sibs.iter().map(move |x| (*s, *x)))
            .collect()
    }

    /// Every ASN this feature touches (subjects with extractions plus the
    /// extracted siblings) — the "1,436 ASNs" universe of Table 3.
    pub fn touched_asns(&self) -> BTreeSet<Asn> {
        let mut set = BTreeSet::new();
        for (subject, siblings) in &self.per_entry {
            set.insert(*subject);
            set.extend(siblings.iter().copied());
        }
        set
    }
}

/// Configuration of the NER stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NerConfig {
    /// Apply the numeric input dropout filter (§4.2). Disabling it is an
    /// ablation: every entry with any text goes to the model.
    pub input_filter: bool,
    /// Apply the output hallucination filter (§4.2). Disabling it is an
    /// ablation: every parsed reply ASN is trusted.
    pub output_filter: bool,
}

impl Default for NerConfig {
    fn default() -> Self {
        NerConfig {
            input_filter: true,
            output_filter: true,
        }
    }
}

/// Runs the extraction stage over every network in the snapshot.
pub fn extract(pdb: &PdbSnapshot, model: &dyn ChatModel, config: NerConfig) -> NerResult {
    extract_with_memo(pdb, model, config, &BTreeMap::new())
}

/// Like [`extract`], but consults `memo` before each LLM call: when the
/// subject's `notes`/`aka` fingerprint matches a memoized reply, the
/// stored findings are replayed through the identical downstream
/// filters and no call is issued. `stats.llm_calls` counts physical
/// calls only, so the funnel invariant
/// `llm_abandoned + parsed == llm_calls` still holds.
pub fn extract_with_memo(
    pdb: &PdbSnapshot,
    model: &dyn ChatModel,
    config: NerConfig,
    memo: &BTreeMap<Asn, NerMemoEntry>,
) -> NerResult {
    let mut result = extract_over(pdb.nets(), model, config, memo);
    finalize(&mut result);
    result
}

/// Like [`extract`], issuing LLM calls from `threads` worker threads.
///
/// Entries are independent and the result maps are ASN-keyed, so the
/// output is identical to the sequential run — this is how a production
/// deployment keeps thousands of API calls off the critical path.
pub fn extract_parallel(
    pdb: &PdbSnapshot,
    model: &(dyn ChatModel + Sync),
    config: NerConfig,
    threads: usize,
) -> NerResult {
    let nets: Vec<&borges_peeringdb::PdbNetwork> = pdb.nets().collect();
    let empty = BTreeMap::new();
    let partials = borges_parallel::map_chunks(&nets, threads, |chunk| {
        extract_over(chunk.iter().copied(), model, config, &empty)
    });
    let mut result = NerResult::default();
    for partial in partials {
        result.stats += partial.stats;
        result.per_entry.extend(partial.per_entry);
        result.memo.extend(partial.memo);
        result.memo_hits += partial.memo_hits;
    }
    // `+=` summed the per-chunk distinct counts; recompute the true
    // cross-chunk distinct count.
    finalize(&mut result);
    result
}

/// Computes the cross-entry aggregate (distinct extracted ASNs).
fn finalize(result: &mut NerResult) {
    let distinct: BTreeSet<Asn> = result
        .per_entry
        .values()
        .flat_map(|v| v.iter().copied())
        .collect();
    result.stats.extracted_asns = distinct.len();
}

/// The per-entry extraction loop (no cross-entry aggregates).
fn extract_over<'a>(
    nets: impl Iterator<Item = &'a borges_peeringdb::PdbNetwork>,
    model: &dyn ChatModel,
    config: NerConfig,
    memo: &BTreeMap<Asn, NerMemoEntry>,
) -> NerResult {
    let mut result = NerResult::default();
    for net in nets {
        result.stats.entries_total += 1;
        if !net.has_text() {
            continue;
        }
        result.stats.entries_with_text += 1;
        let numeric = net.has_numeric_text();
        if numeric {
            result.stats.entries_numeric += 1;
            if net.aka_has_digit() {
                result.stats.numeric_in_aka += 1;
            }
            if net.notes_has_digit() {
                result.stats.numeric_in_notes += 1;
            }
        }
        if config.input_filter && !numeric {
            continue;
        }

        let fp = crate::delta::ner_text_fp(&net.notes, &net.aka);
        let findings: Vec<Asn> = match memo.get(&net.asn) {
            // A memoized reply for unchanged text: replay the parsed
            // findings through the identical filters below, no call.
            Some(entry) if entry.fp == fp => {
                result.memo_hits += 1;
                entry.findings.clone()
            }
            _ => {
                let prompt = build_ie_prompt(net.asn, &net.notes, &net.aka);
                // The call is counted before it is made: an abandoned call
                // is still an attempted call, so
                // `llm_abandoned + parsed == llm_calls` holds by construction.
                result.stats.llm_calls += 1;
                let reply = match model.complete(&ChatRequest::user(prompt)) {
                    Ok(reply) => reply,
                    Err(_transport) => {
                        // Budgets exhausted (or a hard block): record the
                        // loss and degrade gracefully — the other entries
                        // still extract. Failures are never memoized.
                        result.stats.llm_abandoned += 1;
                        continue;
                    }
                };
                result.stats.usage += reply.usage;
                parse_ie_reply(&reply.text)
                    .into_iter()
                    .map(|f| f.asn)
                    .collect()
            }
        };
        // Memoize every answered entry (empty findings included) so any
        // run's state can seed a later incremental remap.
        result.memo.insert(
            net.asn,
            NerMemoEntry {
                fp,
                findings: findings.clone(),
            },
        );
        if findings.is_empty() {
            continue;
        }

        // Output filter: the reply may only name numbers present in the
        // source text.
        let allowed: BTreeSet<u32> = if config.output_filter {
            all_routable_numbers(&format!("{}\n{}", net.notes, net.aka))
                .into_iter()
                .collect()
        } else {
            BTreeSet::new()
        };

        let mut siblings: Vec<Asn> = Vec::new();
        for asn in findings {
            if asn == net.asn {
                continue;
            }
            if config.output_filter && (!allowed.contains(&asn.value()) || !asn.is_routable()) {
                result.stats.filtered_out += 1;
                continue;
            }
            siblings.push(asn);
        }
        siblings.sort_unstable();
        siblings.dedup();
        if !siblings.is_empty() {
            result.stats.entries_with_siblings += 1;
            result.per_entry.insert(net.asn, siblings);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_llm::chat::ChatResponse;
    use borges_llm::SimLlm;
    use borges_peeringdb::{PdbNetwork, PdbOrganization};
    use borges_types::PdbOrgId;

    fn snapshot(entries: &[(u32, &str, &str)]) -> PdbSnapshot {
        let mut b = PdbSnapshot::builder().org(PdbOrganization {
            id: PdbOrgId::new(1),
            name: "org".into(),
            website: String::new(),
            country: "US".into(),
        });
        for (i, (asn, notes, aka)) in entries.iter().enumerate() {
            b = b.net(PdbNetwork {
                id: i as u64 + 1,
                org_id: PdbOrgId::new(1),
                asn: Asn::new(*asn),
                name: format!("net{asn}"),
                aka: aka.to_string(),
                notes: notes.to_string(),
                website: String::new(),
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_extraction() {
        let pdb = snapshot(&[
            (3320, "Our subsidiaries: AS6855 and AS5391.", ""),
            (100, "Leading regional provider.", ""), // no digits → filtered
            (200, "", ""),
        ]);
        let llm = SimLlm::flawless();
        let r = extract(&pdb, &llm, NerConfig::default());
        assert_eq!(r.stats.entries_total, 3);
        assert_eq!(r.stats.entries_with_text, 2);
        assert_eq!(r.stats.entries_numeric, 1);
        assert_eq!(r.stats.llm_calls, 1, "input filter saves the second call");
        assert_eq!(
            r.per_entry.get(&Asn::new(3320)).unwrap(),
            &vec![Asn::new(5391), Asn::new(6855)]
        );
        assert_eq!(r.stats.extracted_asns, 2);
        assert_eq!(r.edges().len(), 2);
    }

    #[test]
    fn input_filter_ablation_calls_on_all_text() {
        let pdb = snapshot(&[(1, "digit-free boilerplate", ""), (2, "sibling AS100", "")]);
        let llm = SimLlm::flawless();
        let with = extract(&pdb, &llm, NerConfig::default());
        let without = extract(
            &pdb,
            &llm,
            NerConfig {
                input_filter: false,
                output_filter: true,
            },
        );
        assert_eq!(with.stats.llm_calls, 1);
        assert_eq!(without.stats.llm_calls, 2);
        // Same extractions either way — the filter only saves calls.
        assert_eq!(with.per_entry, without.per_entry);
    }

    /// A model that hallucinates an ASN never present in the text.
    struct Hallucinator;
    impl ChatModel for Hallucinator {
        fn complete(
            &self,
            _request: &ChatRequest,
        ) -> Result<ChatResponse, borges_resilience::TransportError> {
            Ok(ChatResponse {
                text: r#"[{"asn": 65000, "reason": "made up"}, {"asn": 7018, "reason": "also made up"}]"#.into(),
                usage: Default::default(),
            })
        }
        fn model_id(&self) -> &str {
            "hallucinator"
        }
    }

    #[test]
    fn output_filter_blocks_hallucinations() {
        let pdb = snapshot(&[(1, "We mention 42 once.", "")]);
        let r = extract(&pdb, &Hallucinator, NerConfig::default());
        assert!(r.per_entry.is_empty(), "hallucinated ASNs must not survive");
        assert_eq!(r.stats.filtered_out, 2);

        let unfiltered = extract(
            &pdb,
            &Hallucinator,
            NerConfig {
                input_filter: true,
                output_filter: false,
            },
        );
        assert_eq!(unfiltered.per_entry.get(&Asn::new(1)).unwrap().len(), 2);
    }

    #[test]
    fn subject_asn_is_never_its_own_sibling() {
        let pdb = snapshot(&[(3320, "Sibling networks: AS3320, AS5483.", "")]);
        let llm = SimLlm::flawless();
        let r = extract(&pdb, &llm, NerConfig::default());
        assert_eq!(
            r.per_entry.get(&Asn::new(3320)).unwrap(),
            &vec![Asn::new(5483)]
        );
    }

    #[test]
    fn aka_and_notes_funnel_counters() {
        let pdb = snapshot(&[
            (1, "phone 555", "Edgecast, AS15133"),
            (2, "max prefixes 100", ""),
            (3, "", "former name only"),
        ]);
        let llm = SimLlm::flawless();
        let r = extract(&pdb, &llm, NerConfig::default());
        assert_eq!(r.stats.entries_numeric, 2);
        assert_eq!(r.stats.numeric_in_aka, 1);
        assert_eq!(r.stats.numeric_in_notes, 2);
        assert_eq!(
            r.per_entry.get(&Asn::new(1)).unwrap(),
            &vec![Asn::new(15133)]
        );
    }

    #[test]
    fn parallel_extraction_is_identical_to_sequential() {
        let entries: Vec<(u32, String, String)> = (1..60)
            .map(|i| {
                (
                    i,
                    format!("Our subsidiaries: AS{} and AS{}.", 1000 + i, 2000 + i),
                    String::new(),
                )
            })
            .collect();
        let borrowed: Vec<(u32, &str, &str)> = entries
            .iter()
            .map(|(a, n, k)| (*a, n.as_str(), k.as_str()))
            .collect();
        let pdb = snapshot(&borrowed);
        let llm = SimLlm::new(5);
        let sequential = extract(&pdb, &llm, NerConfig::default());
        for threads in [1, 2, 3, 7] {
            let parallel = extract_parallel(&pdb, &llm, NerConfig::default(), threads);
            assert_eq!(parallel.per_entry, sequential.per_entry);
            assert_eq!(parallel.stats, sequential.stats, "{threads} threads");
        }
    }

    #[test]
    fn memo_replay_skips_calls_and_reproduces_output() {
        let pdb = snapshot(&[
            (3320, "Our subsidiaries: AS6855 and AS5391.", ""),
            (100, "Leading regional provider.", ""),
        ]);
        let llm = SimLlm::flawless();
        let first = extract(&pdb, &llm, NerConfig::default());
        assert_eq!(first.memo.len(), 1, "answered entries are memoized");
        assert_eq!(first.memo_hits, 0);

        // Re-run over the same snapshot seeded with the memo: identical
        // extraction, zero physical calls.
        let replay = extract_with_memo(&pdb, &llm, NerConfig::default(), &first.memo);
        assert_eq!(replay.per_entry, first.per_entry);
        assert_eq!(replay.memo, first.memo);
        assert_eq!(replay.memo_hits, 1);
        assert_eq!(replay.stats.llm_calls, 0, "memo hit issues no call");
        assert_eq!(replay.stats.extracted_asns, first.stats.extracted_asns);
    }

    #[test]
    fn memo_is_guarded_by_text_fingerprint() {
        let pdb_t0 = snapshot(&[(3320, "Our subsidiaries: AS6855.", "")]);
        let pdb_t1 = snapshot(&[(3320, "Our subsidiaries: AS5391.", "")]);
        let llm = SimLlm::flawless();
        let first = extract(&pdb_t0, &llm, NerConfig::default());
        let second = extract_with_memo(&pdb_t1, &llm, NerConfig::default(), &first.memo);
        assert_eq!(second.memo_hits, 0, "changed text must not replay");
        assert_eq!(second.stats.llm_calls, 1);
        assert_eq!(
            second.per_entry.get(&Asn::new(3320)).unwrap(),
            &vec![Asn::new(5391)]
        );
    }

    #[test]
    fn stats_sum_with_add_assign() {
        let pdb_a = snapshot(&[(3320, "Our subsidiaries: AS6855 and AS5391.", "")]);
        let pdb_b = snapshot(&[(100, "Leading regional provider.", ""), (200, "", "")]);
        let llm = SimLlm::flawless();
        let a = extract(&pdb_a, &llm, NerConfig::default());
        let b = extract(&pdb_b, &llm, NerConfig::default());
        let mut summed = a.stats;
        summed += b.stats;
        assert_eq!(summed.entries_total, 3);
        assert_eq!(summed.entries_with_text, 2);
        assert_eq!(summed.llm_calls, 1);
        assert_eq!(summed.usage, a.stats.usage + b.stats.usage);
    }

    /// A backend that fails transport for even-numbered subjects.
    struct HalfDead;
    impl ChatModel for HalfDead {
        fn complete(
            &self,
            request: &ChatRequest,
        ) -> Result<ChatResponse, borges_resilience::TransportError> {
            let text = request.full_text();
            let even = text
                .split_once("for the ASN ")
                .and_then(|(_, rest)| {
                    rest.split(|c: char| !c.is_ascii_digit())
                        .next()
                        .and_then(|d| d.parse::<u32>().ok())
                })
                .is_some_and(|asn| asn % 2 == 0);
            if even {
                Err(borges_resilience::TransportError::Timeout)
            } else {
                SimLlm::flawless().complete(request)
            }
        }
        fn model_id(&self) -> &str {
            "half-dead"
        }
    }

    #[test]
    fn chaos_transport_failures_degrade_not_panic() {
        let pdb = snapshot(&[
            (1, "Our subsidiaries: AS100.", ""),
            (2, "Our subsidiaries: AS200.", ""),
            (3, "Our subsidiaries: AS300.", ""),
            (4, "Our subsidiaries: AS400.", ""),
        ]);
        let r = extract(&pdb, &HalfDead, NerConfig::default());
        // Every call is accounted: attempted == abandoned + answered.
        assert_eq!(r.stats.llm_calls, 4);
        assert_eq!(r.stats.llm_abandoned, 2);
        assert_eq!(r.per_entry.len(), 2, "odd subjects still extract");
        assert!(r.per_entry.contains_key(&Asn::new(1)));
        assert!(r.per_entry.contains_key(&Asn::new(3)));
        // The surviving extractions are exactly the flawless ones.
        let flawless = extract(&pdb, &SimLlm::flawless(), NerConfig::default());
        for (asn, sibs) in &r.per_entry {
            assert_eq!(flawless.per_entry.get(asn), Some(sibs));
        }
    }

    #[test]
    fn upstream_listings_produce_no_edges() {
        let pdb = snapshot(&[(
            262287,
            "We connect directly with the following ISPs,\n- Algar (AS16735)\n- Cogent (AS174)",
            "",
        )]);
        let llm = SimLlm::flawless();
        let r = extract(&pdb, &llm, NerConfig::default());
        assert!(
            r.per_entry.is_empty(),
            "Listing 1 upstreams must be ignored"
        );
        assert_eq!(r.stats.llm_calls, 1);
    }
}
