//! §5.4 — The Organization Factor (θ).
//!
//! θ measures how much of the network universe a mapping concentrates
//! into multi-network organizations. Build the cumulative curve of
//! organization sizes (sorted descending, padded with zeros to the
//! universe size `n`), and integrate its excess over the all-singletons
//! diagonal, normalized by `n²` (Eq. 1):
//!
//! ```text
//! θ = (1/n²) Σᵢ (Cᵢ − i)      where Cᵢ = Σ_{j≤i} sⱼ
//! ```
//!
//! θ = 0 when every organization manages one network; θ grows toward its
//! supremum as networks concentrate (a single all-encompassing
//! organization approaches `(n−1)/2n → 0.5` under Eq. 1 — the paper
//! describes this curve-area construction in Fig. 7).
//!
//! As the paper stresses, θ is *not* an accuracy metric: merging
//! everything blindly maximizes it. It must be read alongside the
//! ground-truth precision checks in [`crate::evalsets`].

use crate::mapping::AsOrgMapping;

/// Computes θ for `mapping` over a universe of `n` networks.
///
/// ASNs of the universe missing from the mapping are counted as
/// singleton organizations (delegation is compulsory: every network has
/// at least its WHOIS organization).
///
/// # Panics
/// If the mapping contains more ASNs than `n`.
pub fn organization_factor(mapping: &AsOrgMapping, n: usize) -> f64 {
    assert!(
        mapping.asn_count() <= n,
        "universe smaller than the mapping ({} < {})",
        n,
        mapping.asn_count()
    );
    if n == 0 {
        return 0.0;
    }
    let mut acc: i128 = 0;
    let mut cum: i128 = 0;
    let mut i: i128 = 0;
    for size in padded_sizes(mapping, n) {
        i += 1;
        cum += size as i128;
        acc += cum - i;
    }
    acc as f64 / (n as f64 * n as f64)
}

/// θ normalized by its supremum for the universe size — rescaling Eq. 1
/// to `[0, 1]` so that 1 means "every network under one organization",
/// matching the paper's *verbal* definition of the metric's range.
///
/// Eq. 1's literal supremum is `(n−1)/2n` (see [`organization_factor`]);
/// the published absolute values (0.3343–0.3576) are not reachable from
/// the paper's own ASN/org counts under the literal reading, suggesting
/// the authors normalized — this variant is the natural candidate and is
/// reported alongside the literal value in Table 6's output.
pub fn organization_factor_normalized(mapping: &AsOrgMapping, n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let supremum = (n as f64 - 1.0) / (2.0 * n as f64);
    organization_factor(mapping, n) / supremum
}

/// The cumulative organization-size curve `C_i` (Fig. 7's y-axis),
/// padded with zero-size organizations to length `n`.
pub fn cumulative_curve(mapping: &AsOrgMapping, n: usize) -> Vec<u64> {
    let mut cum = 0u64;
    padded_sizes(mapping, n)
        .map(|s| {
            cum += s as u64;
            cum
        })
        .collect()
}

/// Sizes sorted descending, with implicit singletons for uncovered ASNs
/// and zero padding to exactly `n` entries.
fn padded_sizes(mapping: &AsOrgMapping, n: usize) -> impl Iterator<Item = usize> {
    let mut sizes = mapping.sizes_desc();
    let uncovered = n - mapping.asn_count();
    // Descending order is preserved: singletons go after every size ≥ 1.
    sizes.extend(std::iter::repeat(1).take(uncovered));
    let pad = n.saturating_sub(sizes.len());
    sizes.into_iter().chain(std::iter::repeat(0).take(pad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_types::Asn;

    fn mapping(groups: &[&[u32]]) -> AsOrgMapping {
        AsOrgMapping::from_groups(
            groups
                .iter()
                .map(|g| g.iter().map(|&x| Asn::new(x)).collect()),
        )
    }

    #[test]
    fn all_singletons_is_zero() {
        let m = mapping(&[&[1], &[2], &[3], &[4]]);
        assert_eq!(organization_factor(&m, 4), 0.0);
    }

    #[test]
    fn one_big_org_approaches_half() {
        let ids: Vec<u32> = (1..=1000).collect();
        let m = mapping(&[&ids]);
        let theta = organization_factor(&m, 1000);
        // Exact: (1/n²) Σ (n − i) = (n−1)/2n.
        let expected = (1000.0 - 1.0) / (2.0 * 1000.0);
        assert!((theta - expected).abs() < 1e-12, "{theta} vs {expected}");
    }

    #[test]
    fn theta_is_monotone_under_merging() {
        let split = mapping(&[&[1, 2], &[3, 4], &[5], &[6]]);
        let merged = mapping(&[&[1, 2, 3, 4], &[5], &[6]]);
        let a = organization_factor(&split, 6);
        let b = organization_factor(&merged, 6);
        assert!(b > a, "merging must increase θ ({a} → {b})");
    }

    #[test]
    fn uncovered_asns_count_as_singletons() {
        let m = mapping(&[&[1, 2]]);
        // Universe of 4: sizes (2, 1, 1, 0): C = 2,3,4,4 → Σ(C−i) = 1+1+1+0.
        let theta = organization_factor(&m, 4);
        assert!((theta - 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn known_hand_computed_value() {
        // sizes (3, 1): n = 4 → C = 3,4,4,4 → Σ(C−i) = 2+2+1+0 = 5.
        let m = mapping(&[&[1, 2, 3], &[4]]);
        let theta = organization_factor(&m, 4);
        assert!((theta - 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn curve_matches_theta() {
        let m = mapping(&[&[1, 2, 3], &[4], &[5]]);
        let n = 6;
        let curve = cumulative_curve(&m, n);
        assert_eq!(curve.len(), n);
        // The uncovered 6th ASN pads in as a singleton, so the curve tops
        // out at the universe size.
        assert_eq!(*curve.last().unwrap() as usize, 6);
        let manual: i128 = curve
            .iter()
            .enumerate()
            .map(|(i, &c)| c as i128 - (i as i128 + 1))
            .sum();
        let theta = organization_factor(&m, n);
        assert!((theta - manual as f64 / (n * n) as f64).abs() < 1e-12);
    }

    #[test]
    fn normalized_theta_reaches_one_at_total_consolidation() {
        let ids: Vec<u32> = (1..=500).collect();
        let m = mapping(&[&ids]);
        let t = organization_factor_normalized(&m, 500);
        assert!((t - 1.0).abs() < 1e-12, "{t}");
        let singletons = AsOrgMapping::from_groups((1..=500).map(|i| vec![Asn::new(i)]));
        assert_eq!(organization_factor_normalized(&singletons, 500), 0.0);
    }

    #[test]
    fn normalized_theta_preserves_ordering() {
        let split = mapping(&[&[1, 2], &[3, 4], &[5], &[6]]);
        let merged = mapping(&[&[1, 2, 3, 4], &[5], &[6]]);
        assert!(
            organization_factor_normalized(&merged, 6) > organization_factor_normalized(&split, 6)
        );
    }

    #[test]
    #[should_panic(expected = "universe smaller")]
    fn undersized_universe_panics() {
        let m = mapping(&[&[1, 2, 3]]);
        organization_factor(&m, 2);
    }

    #[test]
    fn empty_universe() {
        let m = AsOrgMapping::default();
        assert_eq!(organization_factor(&m, 0), 0.0);
    }
}
