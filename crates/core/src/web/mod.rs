//! §4.3 — The web as a source of sibling inferences.
//!
//! Two sub-stages consume the scraper's observations:
//!
//! * [`rr`] — final-URL matching: networks whose reported websites lead
//!   (directly or through refreshes and redirects) to the same final URL
//!   are siblings (§4.3.2);
//! * [`favicon`] — the favicon decision tree with LLM reclassification
//!   (§4.3.3).

pub mod favicon;
pub mod rr;

pub use favicon::{favicon_inference, FaviconInference, FaviconStats};
pub use rr::{rr_inference, RrInference, RrStats};
