//! §4.3.2 — Final-URL matching ("Refresh and Redirect").
//!
//! Two networks registered under different PeeringDB organizations whose
//! websites settle on the same final URL — directly (the Edgio case) or
//! after redirect chains (the Clearwire case) — are inferred siblings.
//! URLs whose brand label sits on the Appendix D.1 blocklist never count:
//! a Facebook page shared by two rural ISPs is evidence of nothing.

use crate::blocklists::blocked_for_rr;
use borges_types::{Asn, Url};
use borges_websim::ScrapeReport;
use std::collections::BTreeMap;

/// Counters for the final-URL matcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RrStats {
    /// Networks with a resolved final URL.
    pub networks_with_final_url: usize,
    /// Networks dropped because their final URL is blocklisted.
    pub blocked_networks: usize,
    /// Distinct (non-blocked) final URLs.
    pub distinct_final_urls: usize,
    /// Final URLs shared by more than one network.
    pub shared_final_urls: usize,
}

/// The output of final-URL matching.
#[derive(Debug, Clone, Default)]
pub struct RrInference {
    /// One group per final URL: every ASN that landed there. Includes
    /// singleton groups (they still assert "this ASN maps to this
    /// website's organization" — the 22,523-network mapping of Table 3).
    pub groups: Vec<Vec<Asn>>,
    /// The final URL behind each group (parallel to `groups`).
    pub final_urls: Vec<Url>,
    /// Counters.
    pub stats: RrStats,
}

impl RrInference {
    /// Only the groups that actually merge ≥2 ASNs (the new sibling
    /// evidence this feature contributes beyond identity).
    pub fn merging_groups(&self) -> impl Iterator<Item = &Vec<Asn>> {
        self.groups.iter().filter(|g| g.len() > 1)
    }
}

/// Runs final-URL matching over a scrape report.
pub fn rr_inference(report: &ScrapeReport) -> RrInference {
    rr_inference_with(report, true)
}

/// Like [`rr_inference`], with the Appendix D.1 blocklist optionally
/// disabled — the ablation that shows why it exists: without it, every
/// network pointing at `facebook.com` fuses into one "organization",
/// inflating θ while collapsing precision (the §5.4 caveat).
pub fn rr_inference_with(report: &ScrapeReport, apply_blocklist: bool) -> RrInference {
    let mut by_final: BTreeMap<String, (Url, Vec<Asn>)> = BTreeMap::new();
    let mut stats = RrStats::default();

    for (asn, site) in &report.sites {
        let final_url = match &site.final_url {
            Some(u) => u,
            None => continue,
        };
        stats.networks_with_final_url += 1;
        if apply_blocklist && blocked_for_rr(final_url) {
            stats.blocked_networks += 1;
            continue;
        }
        by_final
            .entry(final_url.canonical())
            .or_insert_with(|| (final_url.clone(), Vec::new()))
            .1
            .push(*asn);
    }

    stats.distinct_final_urls = by_final.len();
    stats.shared_final_urls = by_final.values().filter(|(_, g)| g.len() > 1).count();

    let mut groups = Vec::with_capacity(by_final.len());
    let mut final_urls = Vec::with_capacity(by_final.len());
    for (_, (url, mut group)) in by_final {
        group.sort_unstable();
        groups.push(group);
        final_urls.push(url);
    }
    RrInference {
        groups,
        final_urls,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_types::FaviconHash;
    use borges_websim::{RedirectKind, Scraper, SimWeb, SimWebClient};

    fn world() -> SimWeb {
        SimWeb::builder()
            .page("www.edg.io", Some(FaviconHash::of_bytes(b"edgio")))
            .redirect(
                "www.limelight.com",
                "https://www.edg.io/",
                RedirectKind::Http,
            )
            .redirect(
                "www.edgecast.com",
                "https://www.edg.io/",
                RedirectKind::JavaScript,
            )
            .page("www.solo.example", None)
            .page("facebook.com", Some(FaviconHash::of_bytes(b"fb")))
            .build()
    }

    fn scrape(entries: Vec<(u32, &str)>) -> ScrapeReport {
        let web = world();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let owned: Vec<(Asn, &str)> = entries.into_iter().map(|(a, s)| (Asn::new(a), s)).collect();
        scraper.crawl(owned)
    }

    #[test]
    fn edgio_merger_is_recovered() {
        let report = scrape(vec![
            (22822, "www.limelight.com"),
            (15133, "www.edgecast.com"),
            (7, "www.solo.example"),
        ]);
        let inf = rr_inference(&report);
        assert_eq!(inf.stats.networks_with_final_url, 3);
        assert_eq!(inf.stats.distinct_final_urls, 2);
        assert_eq!(inf.stats.shared_final_urls, 1);
        let merged: Vec<_> = inf.merging_groups().collect();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], &vec![Asn::new(15133), Asn::new(22822)]);
    }

    #[test]
    fn facebook_pages_never_merge() {
        let report = scrape(vec![(1, "facebook.com"), (2, "facebook.com")]);
        let inf = rr_inference(&report);
        assert_eq!(inf.stats.blocked_networks, 2);
        assert_eq!(inf.merging_groups().count(), 0);
    }

    #[test]
    fn dead_sites_contribute_nothing() {
        let report = scrape(vec![(1, "nxdomain.example")]);
        let inf = rr_inference(&report);
        assert_eq!(inf.stats.networks_with_final_url, 0);
        assert!(inf.groups.is_empty());
    }

    #[test]
    fn singleton_groups_are_kept_for_the_mapping() {
        let report = scrape(vec![(7, "www.solo.example")]);
        let inf = rr_inference(&report);
        assert_eq!(inf.groups.len(), 1);
        assert_eq!(inf.groups[0], vec![Asn::new(7)]);
        assert_eq!(inf.final_urls[0].host().as_str(), "www.solo.example");
    }

    #[test]
    fn groups_align_with_final_urls() {
        let report = scrape(vec![(22822, "www.limelight.com"), (7, "www.solo.example")]);
        let inf = rr_inference(&report);
        assert_eq!(inf.groups.len(), inf.final_urls.len());
        for (group, url) in inf.groups.iter().zip(&inf.final_urls) {
            assert!(!group.is_empty());
            assert!(!blocked_for_rr(url));
        }
    }
}
