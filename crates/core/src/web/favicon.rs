//! §4.3.3 — Favicon grouping with LLM reclassification.
//!
//! The decision tree of Fig. 6:
//!
//! 1. **Blocklist** — final URLs on the Appendix D.2 list (mainstream
//!    platforms) are excluded.
//! 2. **Step 1: same favicon + same brand label** — URL groups sharing a
//!    favicon *and* a brand label (`www.orange.es` / `www.orange.pl`)
//!    merge without consulting the model.
//! 3. **Step 2: LLM reclassification** — favicon groups spanning multiple
//!    brand labels (the `clarochile.cl` / `claropr.com` family, but also
//!    every Bootstrap-default-favicon coincidence) are sent to the chat
//!    model with the favicon image and the URL list. A company-name reply
//!    merges the whole group; a technology name or "I don't know" rejects
//!    it.

use crate::blocklists::blocked_for_favicon;
use borges_llm::chat::{ChatModel, ChatRequest, Content, DecodingParams, Message, Role};
use borges_llm::classifier::KNOWN_FRAMEWORKS;
use borges_llm::prompts::{build_classifier_prompt, parse_classifier_reply, ClassifierReply};
use borges_types::{Asn, FaviconHash, Url};
use borges_websim::ScrapeReport;
use std::collections::BTreeMap;

/// Counters for the favicon stage (§5.2's favicon funnel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaviconStats {
    /// Distinct favicons observed across final URLs.
    pub favicons_total: usize,
    /// Favicons shared by more than one final URL (after blocklist).
    pub favicons_shared: usize,
    /// Final URLs involved in shared favicons.
    pub urls_in_shared: usize,
    /// Shared favicons containing a same-brand-label pair (step 1 hits).
    pub same_label_groups: usize,
    /// Groups merged by step 1 (no LLM).
    pub merged_by_step1: usize,
    /// LLM calls issued in step 2.
    pub llm_calls: usize,
    /// Step-2 calls abandoned because the transport failed (budgets
    /// exhausted or no retry layer installed). The group is recorded as
    /// [`GroupOutcome::Abandoned`] and contributes no merge evidence.
    ///
    /// Always: `llm_abandoned + replies parsed == llm_calls`.
    pub llm_abandoned: usize,
    /// Groups merged by the LLM (company verdict).
    pub merged_by_llm: usize,
    /// Groups rejected as web-technology default icons.
    pub framework_rejections: usize,
    /// Groups the model declined to name.
    pub dont_know: usize,
    /// Token accounting across the step-2 LLM calls.
    pub usage: borges_llm::chat::Usage,
    /// Retry/breaker accounting when the stage ran behind a
    /// [`RetryingModel`](borges_llm::RetryingModel) (stamped by
    /// [`Borges::run_resilient`](crate::pipeline::Borges::run_resilient);
    /// zero otherwise).
    pub resilience: borges_resilience::ResilienceStats,
}

/// How a favicon group was resolved — the audit trail the Table 5
/// evaluation scores against ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupOutcome {
    /// Step 1 merged the whole group (same favicon + same brand label).
    MergedByStep1,
    /// Step 2's LLM named a company and the group merged.
    MergedByLlm,
    /// Step 2's LLM named a web technology; rejected.
    RejectedFramework,
    /// Step 2's LLM declined; rejected.
    RejectedUnknown,
    /// Step 2's transport failed after every retry (or none were
    /// configured): no verdict exists. The group merges nothing —
    /// degradation removes evidence, it never invents any.
    Abandoned,
}

/// The decision record for one shared-favicon group.
#[derive(Debug, Clone)]
pub struct GroupDecision {
    /// The shared favicon.
    pub favicon: FaviconHash,
    /// The distinct (non-blocklisted) final URLs in the group.
    pub urls: Vec<Url>,
    /// Every ASN behind those URLs.
    pub asns: Vec<Asn>,
    /// Whether step 1 alone merged the *entire* group.
    pub step1_merged_all: bool,
    /// The final outcome.
    pub outcome: GroupOutcome,
}

/// One memoized step-2 classifier reply: the fingerprint of the URL
/// list that was sent, and the parsed verdict (`named: None` is the
/// model's "I don't know"). A memo hit replays the verdict through the
/// unchanged framework check and skips the multimodal LLM call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaviconMemo {
    /// [`crate::delta::favicon_urls_fp`] of the ordered canonical URL
    /// list when the reply was obtained.
    pub fp: u64,
    /// The company/technology name replied, or `None` for "I don't know".
    pub named: Option<String>,
}

/// The output of the favicon stage.
#[derive(Debug, Clone, Default)]
pub struct FaviconInference {
    /// Merge-evidence groups (each: ASNs inferred to share a company).
    pub groups: Vec<Vec<Asn>>,
    /// The favicon behind each entry of `groups` (parallel vector) —
    /// the segmentation key incremental recompilation partitions by.
    pub group_favicons: Vec<FaviconHash>,
    /// Per-shared-favicon decision records (for Table 5 scoring).
    pub decisions: Vec<GroupDecision>,
    /// Every step-2 verdict obtained or replayed this run, keyed by
    /// favicon — captured on full runs too, so any run can seed `remap`.
    pub memo: BTreeMap<FaviconHash, FaviconMemo>,
    /// Step-2 groups answered from a prior memo instead of an LLM call.
    pub memo_hits: usize,
    /// Counters.
    pub stats: FaviconStats,
}

/// Runs the favicon decision tree over a scrape report.
pub fn favicon_inference(report: &ScrapeReport, model: &dyn ChatModel) -> FaviconInference {
    favicon_inference_with(report, model, true)
}

/// Like [`favicon_inference`], with the Appendix D.2 blocklist optionally
/// disabled (the ablation companion of
/// [`rr_inference_with`](crate::web::rr::rr_inference_with)).
pub fn favicon_inference_with(
    report: &ScrapeReport,
    model: &dyn ChatModel,
    apply_blocklist: bool,
) -> FaviconInference {
    favicon_inference_memo(report, model, apply_blocklist, &BTreeMap::new())
}

/// Like [`favicon_inference_with`], consulting `memo` before each step-2
/// call: when a favicon's URL-list fingerprint matches a memoized
/// verdict, the verdict is replayed and no call is issued.
/// `stats.llm_calls` counts physical calls only.
pub fn favicon_inference_memo(
    report: &ScrapeReport,
    model: &dyn ChatModel,
    apply_blocklist: bool,
    memo: &BTreeMap<FaviconHash, FaviconMemo>,
) -> FaviconInference {
    let mut out = FaviconInference::default();
    let by_favicon = report.asns_by_favicon();
    out.stats.favicons_total = by_favicon.len();

    for (favicon, entries) in by_favicon {
        // Blocklist, then collapse to distinct final URLs (a URL may carry
        // several ASNs when several networks landed on it).
        let mut by_url: BTreeMap<String, (Url, Vec<Asn>)> = BTreeMap::new();
        for (url, asn) in entries {
            if apply_blocklist && blocked_for_favicon(&url) {
                continue;
            }
            by_url
                .entry(url.canonical())
                .or_insert_with(|| (url.clone(), Vec::new()))
                .1
                .push(asn);
        }
        if by_url.len() < 2 {
            continue; // favicon grouping needs at least two distinct URLs
        }
        out.stats.favicons_shared += 1;
        out.stats.urls_in_shared += by_url.len();

        // Step 1: partition by brand label.
        let mut by_label: BTreeMap<&str, Vec<&(Url, Vec<Asn>)>> = BTreeMap::new();
        let mut unlabeled = 0usize;
        for entry in by_url.values() {
            match entry.0.brand_label() {
                Some(label) => by_label.entry(label).or_default().push(entry),
                None => unlabeled += 1,
            }
        }
        let mut step1_merged_everything = false;
        let mut any_step1 = false;
        for group in by_label.values() {
            if group.len() >= 2 {
                any_step1 = true;
                let asns: Vec<Asn> = group
                    .iter()
                    .flat_map(|(_, asns)| asns.iter().copied())
                    .collect();
                out.groups.push(asns);
                out.group_favicons.push(favicon);
                out.stats.merged_by_step1 += 1;
                if group.len() == by_url.len() {
                    step1_merged_everything = true;
                }
            }
        }
        if any_step1 {
            out.stats.same_label_groups += 1;
        }

        let group_urls: Vec<Url> = by_url.values().map(|(u, _)| u.clone()).collect();
        let mut group_asns: Vec<Asn> = by_url
            .values()
            .flat_map(|(_, asns)| asns.iter().copied())
            .collect();
        group_asns.sort_unstable();
        group_asns.dedup();

        if step1_merged_everything && unlabeled == 0 {
            out.decisions.push(GroupDecision {
                favicon,
                urls: group_urls,
                asns: group_asns,
                step1_merged_all: true,
                outcome: GroupOutcome::MergedByStep1,
            });
            continue;
        }

        // Step 2: one LLM call for the whole favicon group — unless a
        // memoized verdict for the identical URL list can be replayed.
        let urls: Vec<String> = by_url.values().map(|(u, _)| u.canonical()).collect();
        let fp = crate::delta::favicon_urls_fp(&urls);
        let verdict = match memo.get(&favicon) {
            Some(entry) if entry.fp == fp => {
                out.memo_hits += 1;
                match &entry.named {
                    Some(name) => ClassifierReply::Name(name.clone()),
                    None => ClassifierReply::DontKnow,
                }
            }
            _ => {
                let request = ChatRequest {
                    messages: vec![Message {
                        role: Role::User,
                        parts: vec![
                            Content::Text(build_classifier_prompt(&urls)),
                            Content::Image { favicon },
                        ],
                    }],
                    params: DecodingParams::deterministic(),
                };
                // Count the call before issuing it, so the funnel stays
                // exact (`llm_abandoned + parsed == llm_calls`) on every
                // path out.
                out.stats.llm_calls += 1;
                let reply = match model.complete(&request) {
                    Ok(reply) => reply,
                    Err(_transport) => {
                        // Failures are never memoized: the next run
                        // retries the call.
                        out.stats.llm_abandoned += 1;
                        out.decisions.push(GroupDecision {
                            favicon,
                            urls: group_urls,
                            asns: group_asns,
                            step1_merged_all: false,
                            outcome: GroupOutcome::Abandoned,
                        });
                        continue;
                    }
                };
                out.stats.usage += reply.usage;
                parse_classifier_reply(&reply.text)
            }
        };
        out.memo.insert(
            favicon,
            FaviconMemo {
                fp,
                named: match &verdict {
                    ClassifierReply::Name(name) => Some(name.clone()),
                    ClassifierReply::DontKnow => None,
                },
            },
        );
        let outcome = match verdict {
            ClassifierReply::Name(name) => {
                if is_framework_name(&name) {
                    out.stats.framework_rejections += 1;
                    GroupOutcome::RejectedFramework
                } else {
                    out.groups.push(group_asns.clone());
                    out.group_favicons.push(favicon);
                    out.stats.merged_by_llm += 1;
                    GroupOutcome::MergedByLlm
                }
            }
            ClassifierReply::DontKnow => {
                out.stats.dont_know += 1;
                GroupOutcome::RejectedUnknown
            }
        };
        out.decisions.push(GroupDecision {
            favicon,
            urls: group_urls,
            asns: group_asns,
            step1_merged_all: false,
            outcome,
        });
    }

    for g in &mut out.groups {
        g.sort_unstable();
        g.dedup();
    }
    out
}

/// Is a classifier reply the name of a web technology rather than a
/// company? (Case-insensitive match against the known-framework table the
/// multimodal model recognizes.)
fn is_framework_name(name: &str) -> bool {
    let folded = name.to_ascii_lowercase();
    KNOWN_FRAMEWORKS.iter().any(|f| *f == folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_llm::classifier::framework_favicon;
    use borges_llm::SimLlm;
    use borges_websim::{Scraper, SimWeb, SimWebClient};

    fn icon(name: &str) -> FaviconHash {
        FaviconHash::of_bytes(format!("brand:{name}").as_bytes())
    }

    fn world() -> SimWeb {
        SimWeb::builder()
            // Orange: shared favicon + shared label → step 1.
            .page("www.orange.es", Some(icon("orange")))
            .page("www.orange.pl", Some(icon("orange")))
            // Claro: shared favicon, different labels → step 2, company.
            .page_at(
                "www.clarochile.cl",
                "https://www.clarochile.cl/personas/",
                Some(icon("claro")),
            )
            .page_at(
                "www.claropr.com",
                "https://www.claropr.com/personas/",
                Some(icon("claro")),
            )
            // Bootstrap defaults on unrelated sites → step 2, framework.
            .page("www.anosbd.com", Some(framework_favicon("bootstrap")))
            .page("www.rptechzone.in", Some(framework_favicon("bootstrap")))
            // DE-CIX: shared favicon, unrelated names → step 2, don't know.
            .page("www.de-cix.net", Some(icon("decix")))
            .page("www.aqaba-ix.net", Some(icon("decix")))
            // A unique favicon (not shared) → ignored.
            .page("www.lumen.com", Some(icon("lumen")))
            .build()
    }

    fn report() -> ScrapeReport {
        let web = world();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        scraper.crawl(vec![
            (Asn::new(1), "www.orange.es"),
            (Asn::new(2), "www.orange.pl"),
            (Asn::new(3), "www.clarochile.cl"),
            (Asn::new(4), "www.claropr.com"),
            (Asn::new(5), "www.anosbd.com"),
            (Asn::new(6), "www.rptechzone.in"),
            (Asn::new(7), "www.de-cix.net"),
            (Asn::new(8), "www.aqaba-ix.net"),
            (Asn::new(9), "www.lumen.com"),
        ])
    }

    #[test]
    fn decision_tree_resolves_all_four_families() {
        let llm = SimLlm::flawless();
        let inf = favicon_inference(&report(), &llm);

        // Orange merged in step 1.
        assert!(inf
            .groups
            .iter()
            .any(|g| g == &vec![Asn::new(1), Asn::new(2)]));
        assert_eq!(inf.stats.merged_by_step1, 1);

        // Claro merged by the LLM.
        assert!(inf
            .groups
            .iter()
            .any(|g| g == &vec![Asn::new(3), Asn::new(4)]));
        assert_eq!(inf.stats.merged_by_llm, 1);

        // Bootstrap rejected as a framework.
        assert_eq!(inf.stats.framework_rejections, 1);
        assert!(!inf
            .groups
            .iter()
            .any(|g| g.contains(&Asn::new(5)) || g.contains(&Asn::new(6))));

        // DE-CIX declined — the paper's reported miss.
        assert_eq!(inf.stats.dont_know, 1);
        assert!(!inf.groups.iter().any(|g| g.contains(&Asn::new(7))));
    }

    #[test]
    fn funnel_counters_are_consistent() {
        let llm = SimLlm::flawless();
        let inf = favicon_inference(&report(), &llm);
        assert_eq!(inf.stats.favicons_total, 5);
        assert_eq!(inf.stats.favicons_shared, 4, "lumen's icon is unique");
        assert_eq!(inf.stats.urls_in_shared, 8);
        // Orange merged fully by step 1 → no LLM call for it.
        assert_eq!(inf.stats.llm_calls, 3);
    }

    #[test]
    fn blocklisted_urls_are_invisible_to_the_stage() {
        let web = SimWeb::builder()
            .page("facebook.com", Some(icon("fb")))
            .page("www.acme.com", Some(icon("fb"))) // same icon as facebook
            .build();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let report = scraper.crawl(vec![
            (Asn::new(1), "facebook.com"),
            (Asn::new(2), "facebook.com"),
            (Asn::new(3), "www.acme.com"),
        ]);
        let llm = SimLlm::flawless();
        let inf = favicon_inference(&report, &llm);
        // facebook.com is blocked, leaving one distinct URL — not shared.
        assert_eq!(inf.stats.favicons_shared, 0);
        assert!(inf.groups.is_empty());
    }

    #[test]
    fn framework_name_detection() {
        assert!(is_framework_name("Bootstrap"));
        assert!(is_framework_name("wordpress"));
        assert!(!is_framework_name("Claro"));
    }

    /// Delegates to [`SimLlm`] except for one favicon, whose step-2 call
    /// dies on the wire — the "budgets exhausted" endpoint of the retry
    /// stack, seen from the decision tree's side.
    struct DeadIcon {
        inner: SimLlm,
        dead: FaviconHash,
    }

    impl ChatModel for DeadIcon {
        fn model_id(&self) -> &str {
            self.inner.model_id()
        }

        fn complete(
            &self,
            request: &ChatRequest,
        ) -> Result<borges_llm::chat::ChatResponse, borges_resilience::TransportError> {
            let hits_dead_icon = request.messages.iter().any(|m| {
                m.parts
                    .iter()
                    .any(|p| matches!(p, Content::Image { favicon } if *favicon == self.dead))
            });
            if hits_dead_icon {
                Err(borges_resilience::TransportError::Timeout)
            } else {
                self.inner.complete(request)
            }
        }
    }

    #[test]
    fn chaos_abandoned_group_degrades_without_inventing_merges() {
        let flawless = favicon_inference(&report(), &SimLlm::flawless());
        let dead = DeadIcon {
            inner: SimLlm::flawless(),
            dead: icon("claro"),
        };
        let inf = favicon_inference(&report(), &dead);

        // Accounting: every call is either parsed or abandoned.
        assert_eq!(inf.stats.llm_calls, 3);
        assert_eq!(inf.stats.llm_abandoned, 1);
        assert_eq!(
            inf.stats.llm_abandoned
                + inf.stats.merged_by_llm
                + inf.stats.framework_rejections
                + inf.stats.dont_know,
            inf.stats.llm_calls
        );

        // The dead group is recorded, not silently dropped.
        let abandoned: Vec<_> = inf
            .decisions
            .iter()
            .filter(|d| d.outcome == GroupOutcome::Abandoned)
            .collect();
        assert_eq!(abandoned.len(), 1);
        assert_eq!(abandoned[0].favicon, icon("claro"));
        assert_eq!(inf.decisions.len(), flawless.decisions.len());

        // Degradation removes evidence but never invents any: the merge
        // groups are a strict subset of the flawless run's.
        assert!(inf.groups.iter().all(|g| flawless.groups.contains(g)));
        assert!(!inf
            .groups
            .iter()
            .any(|g| g.contains(&Asn::new(3)) || g.contains(&Asn::new(4))));
        // Unaffected groups are untouched.
        assert_eq!(inf.stats.merged_by_step1, 1);
        assert_eq!(inf.stats.framework_rejections, 1);
        assert_eq!(inf.stats.dont_know, 1);
    }

    #[test]
    fn memo_replay_skips_calls_and_reproduces_groups() {
        let llm = SimLlm::flawless();
        let first = favicon_inference(&report(), &llm);
        assert_eq!(first.memo.len(), 3, "every step-2 verdict is memoized");
        assert_eq!(first.memo_hits, 0);
        assert_eq!(first.groups.len(), first.group_favicons.len());

        let replay = favicon_inference_memo(&report(), &llm, true, &first.memo);
        assert_eq!(replay.groups, first.groups);
        assert_eq!(replay.group_favicons, first.group_favicons);
        assert_eq!(replay.memo, first.memo);
        assert_eq!(replay.memo_hits, 3);
        assert_eq!(replay.stats.llm_calls, 0, "memo hits issue no calls");
        // The decision trail is reproduced verbatim, framework
        // rejections and declines included.
        assert_eq!(replay.stats.framework_rejections, 1);
        assert_eq!(replay.stats.dont_know, 1);
        assert_eq!(replay.decisions.len(), first.decisions.len());
    }

    #[test]
    fn memo_is_guarded_by_url_list_fingerprint() {
        let llm = SimLlm::flawless();
        let first = favicon_inference(&report(), &llm);

        // Same favicon, but the Claro group gains a third URL → its
        // memoized verdict must not be replayed.
        let web = SimWeb::builder()
            .page_at(
                "www.clarochile.cl",
                "https://www.clarochile.cl/personas/",
                Some(icon("claro")),
            )
            .page_at(
                "www.claropr.com",
                "https://www.claropr.com/personas/",
                Some(icon("claro")),
            )
            .page_at(
                "www.clarobr.com",
                "https://www.clarobr.com/personas/",
                Some(icon("claro")),
            )
            .build();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let report = scraper.crawl(vec![
            (Asn::new(3), "www.clarochile.cl"),
            (Asn::new(4), "www.claropr.com"),
            (Asn::new(10), "www.clarobr.com"),
        ]);
        let inf = favicon_inference_memo(&report, &llm, true, &first.memo);
        assert_eq!(inf.memo_hits, 0, "grown URL list must not replay");
        assert_eq!(inf.stats.llm_calls, 1);
        assert_eq!(
            inf.groups,
            vec![vec![Asn::new(3), Asn::new(4), Asn::new(10)]]
        );
    }

    #[test]
    fn multiple_asns_on_one_final_url_travel_together() {
        let web = SimWeb::builder()
            .page("www.claroa.com", Some(icon("claro")))
            .page("www.clarob.com", Some(icon("claro")))
            .build();
        let scraper = Scraper::new(SimWebClient::browser(&web));
        let report = scraper.crawl(vec![
            (Asn::new(1), "www.claroa.com"),
            (Asn::new(2), "www.claroa.com"),
            (Asn::new(3), "www.clarob.com"),
        ]);
        let llm = SimLlm::flawless();
        let inf = favicon_inference(&report, &llm);
        assert_eq!(inf.groups.len(), 1);
        assert_eq!(inf.groups[0], vec![Asn::new(1), Asn::new(2), Asn::new(3)]);
    }
}
